//! # scaddar-experiments — regenerating the paper's tables and figures
//!
//! One binary per experiment (see `DESIGN.md` §4 for the index, and
//! `EXPERIMENTS.md` for paper-vs-measured records):
//!
//! | binary | experiment | paper source |
//! |--------|------------|--------------|
//! | `exp_fig1_naive` | E1/E2 | §4.1 Figure 1 + RO2-violation census |
//! | `exp_worked_examples` | E3 | §4.2.1 removal walkthroughs |
//! | `exp_rule_of_thumb` | E4 | §4.3 rule-of-thumb table |
//! | `exp_cov` | E5/E12 | §5 CoV-vs-operations figure |
//! | `exp_movement` | E6 | RO1: moved fraction vs optimal `z_j` |
//! | `exp_unfairness` | E7 | §4.3 bound vs measured unfairness |
//! | `exp_online` | E9 | online scaling: hiccups & drain time |
//! | `exp_mirroring` | E10 | §6 mirroring fault tolerance |
//! | `exp_baselines` | E11 | modern comparators ablation |
//! | `exp_storage` | Appendix A | directory vs scaling-log metadata |
//!
//! Every binary prints its tables to stdout and writes CSV series under
//! `target/experiments/` (see [`scaddar_analysis::experiment_dir`]).
//!
//! This library crate holds the shared setup: the paper's §5 catalog,
//! standard schedules, and strategy construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scaddar_analysis::Csv;
use scaddar_baselines::BlockKey;
use scaddar_core::{Catalog, ScalingOp};
use scaddar_prng::{Bits, RngKind};
use std::path::PathBuf;

/// The paper's §5 experimental setup: "eight scaling operations performed
/// on 20 different objects", `b = 32`, disks hovering around 8.
pub struct PaperSetup;

impl PaperSetup {
    /// Number of objects (§5: 20).
    pub const OBJECTS: u32 = 20;
    /// Blocks per object. The paper says "tens of thousands of blocks"
    /// per object for real servers (Appendix A); we default to 5 000 per
    /// object (100k total) to keep every experiment under a second while
    /// keeping binomial noise ~0.3%.
    pub const BLOCKS_PER_OBJECT: u64 = 5_000;
    /// Initial disks (§5: average of 8).
    pub const INITIAL_DISKS: u32 = 8;
    /// Bit width (§5: 32).
    pub const BITS: Bits = Bits::B32;
    /// Fairness tolerance (§5: 5%).
    pub const EPSILON: f64 = 0.05;

    /// Builds the 20-object catalog.
    pub fn catalog(seed: u64) -> Catalog {
        let mut c = Catalog::new(RngKind::SplitMix64, Self::BITS, seed);
        for _ in 0..Self::OBJECTS {
            c.add_object(Self::BLOCKS_PER_OBJECT);
        }
        c
    }

    /// The catalog flattened into harness keys.
    pub fn population(seed: u64) -> Vec<BlockKey> {
        catalog_population(&Self::catalog(seed))
    }
}

/// Flattens any catalog into harness block keys (ordinal = catalog
/// order, id = `X_0`).
pub fn catalog_population(catalog: &Catalog) -> Vec<BlockKey> {
    catalog
        .iter_x0()
        .enumerate()
        .map(|(ordinal, (_, x0))| BlockKey {
            ordinal: ordinal as u64,
            id: x0,
        })
        .collect()
}

/// A schedule of `n` successive single-disk additions (the §5 shape:
/// "successive scaling operations").
pub fn additions(n: usize) -> Vec<ScalingOp> {
    (0..n).map(|_| ScalingOp::Add { count: 1 }).collect()
}

/// A schedule alternating remove-disk-0 / add-one, hovering around the
/// starting disk count — the worst case for range shrinkage.
pub fn churn(n: usize) -> Vec<ScalingOp> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                ScalingOp::remove_one(0)
            } else {
                ScalingOp::Add { count: 1 }
            }
        })
        .collect()
}

/// Writes a CSV into the conventional experiment directory and returns
/// the path (also printed by callers for discoverability).
pub fn write_csv(name: &str, csv: &Csv) -> PathBuf {
    let path = scaddar_analysis::experiment_dir().join(name);
    csv.write_to(&path)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

/// Prints the standard experiment header.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("=== {id}: {title}");
    println!("    paper: {paper_ref}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_population_size() {
        let pop = PaperSetup::population(1);
        assert_eq!(pop.len(), 100_000);
        // 32-bit ids.
        assert!(pop.iter().all(|k| k.id <= u64::from(u32::MAX)));
        // Ordinals are dense.
        assert!(pop.iter().enumerate().all(|(i, k)| k.ordinal == i as u64));
    }

    #[test]
    fn schedules_have_expected_shape() {
        assert_eq!(additions(3).len(), 3);
        let c = churn(4);
        assert_eq!(c[0], ScalingOp::remove_one(0));
        assert_eq!(c[1], ScalingOp::Add { count: 1 });
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn write_csv_lands_in_experiment_dir() {
        std::env::set_var(
            "SCADDAR_EXPERIMENT_DIR",
            std::env::temp_dir().join("scaddar-exp-test"),
        );
        let mut csv = Csv::new(["a"]);
        csv.row(["1"]);
        let path = write_csv("unit_test.csv", &csv);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
        std::env::remove_var("SCADDAR_EXPERIMENT_DIR");
    }
}
