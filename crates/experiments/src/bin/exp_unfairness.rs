//! E7 — §4.3: the unfairness coefficient, measured against Lemma 4.2's
//! analytic bound, operation by operation.
//!
//! Two series per operation count `k`:
//! * the **bound** `1 / (R_0 div sigma_k)` (Lemmas 4.2/4.3) — by the
//!   paper's identity `(x div a) div b = x div (ab)`, the guaranteed
//!   per-disk cycle count is exactly `R_0 div sigma_k`, so the bound is
//!   tight for the worst-case surviving range;
//! * the **empirical census unfairness** `max/min - 1` of an actual
//!   placement (binomial sampling noise on top of the systematic range
//!   effect — it dominates until the range gets very thin).
//!
//! Shape: the bound decays from astronomically-safe toward the eps
//! threshold as sigma_k eats the random range; b = 64 buys roughly twice
//! the operations of b = 32 at the same disk count.

use scaddar_analysis::{fmt_f64, Csv, Summary, Table};
use scaddar_baselines::{run_schedule, OpStats, ScaddarStrategy};
use scaddar_core::FairnessTracker;
use scaddar_experiments::{banner, catalog_population, churn, write_csv};
use scaddar_prng::{Bits, RngKind};

const OPS: usize = 12;
const DISKS: u32 = 8;

fn main() {
    banner(
        "E7",
        "unfairness coefficient vs the Lemma 4.2 bound",
        "§4.3 (unfairness coefficient, Lemmas 4.2/4.3)",
    );

    let mut csv = Csv::new([
        "bits",
        "op",
        "sigma",
        "guaranteed_cycles",
        "bound",
        "empirical_census",
    ]);

    for bits in [Bits::B32, Bits::B64] {
        println!(
            "b = {} random bits, {DISKS} disks, churn schedule:",
            bits.get()
        );
        // Empirical placement under this bit width.
        let mut catalog = scaddar_core::Catalog::new(RngKind::SplitMix64, bits, 5);
        for _ in 0..20 {
            catalog.add_object(5_000);
        }
        let keys = catalog_population(&catalog);
        let mut strategy = ScaddarStrategy::new(DISKS).unwrap();
        let stats: Vec<OpStats> =
            run_schedule(&mut strategy, &keys, &churn(OPS)).expect("valid schedule");

        let mut tracker = FairnessTracker::new(bits, DISKS);
        let mut table = Table::new([
            "op",
            "sigma_k",
            "guaranteed cycles",
            "bound 1/(R div sigma)",
            "empirical census",
        ]);
        let mut prev_bound = 0.0f64;
        for s in &stats {
            tracker.record_op(s.disks_after);
            let report = tracker.report();
            let empirical = Summary::of_counts(&s.load_census).empirical_unfairness();
            table.row([
                s.op_index.to_string(),
                report.sigma.to_string(),
                report.guaranteed_range.to_string(),
                fmt_f64(report.unfairness_bound, 6),
                fmt_f64(empirical, 4),
            ]);
            csv.row([
                bits.get().to_string(),
                s.op_index.to_string(),
                report.sigma.to_string(),
                report.guaranteed_range.to_string(),
                fmt_f64(report.unfairness_bound, 8),
                fmt_f64(empirical, 6),
            ]);
            // Invariant: the bound decays monotonically as sigma grows.
            assert!(
                report.unfairness_bound >= prev_bound,
                "bound must be monotone in k"
            );
            prev_bound = report.unfairness_bound;
        }
        println!("{table}");
    }

    println!("reading: b=64 keeps the bound negligible for every schedule length shown,");
    println!("while b=32 approaches the eps=5% threshold around k=8-9 — the paper's");
    println!("motivation for tracking sigma_k and redistributing in full at the threshold.");
    let path = write_csv("e7_unfairness.csv", &csv);
    println!("csv: {}", path.display());
}
