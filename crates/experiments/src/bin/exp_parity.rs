//! E13 — §6's future work, built: parity groups vs mirroring.
//!
//! Three axes, as a storage designer would weigh them:
//! * **storage overhead** — parity `g/(g-1)` vs mirroring's 2x;
//! * **single-failure availability** — mirroring is perfect; parity
//!   loses the (measured) fraction of groups with two members
//!   co-resident on the failed disk, bounded by the birthday hazard
//!   `1 - prod(1 - i/N)`;
//! * **read amplification under failure** — mirroring redirects 1 read
//!   to 1 disk; parity reconstruction costs `g-1` reads.

use cmsim::parity::{colocation_hazard, parity_availability_census};
use cmsim::{availability_census, CmServer, ServerConfig};
use scaddar_analysis::{fmt_f64, fmt_pct, Csv, Table};
use scaddar_core::DiskIndex;
use scaddar_experiments::{banner, write_csv};

const DISKS: u32 = 12;
const BLOCKS: u64 = 24_000;

fn main() {
    banner(
        "E13",
        "parity groups vs mirroring (storage / availability / read cost)",
        "§6 (mirroring sketch + 'data parity bits' future work)",
    );
    let mut server = CmServer::new(ServerConfig::new(DISKS).with_catalog_seed(77)).unwrap();
    server.add_object(BLOCKS).unwrap();

    let mut table = Table::new([
        "scheme",
        "storage overhead",
        "worst single-failure loss",
        "mean single-failure loss",
        "hazard bound",
        "reads to serve a failed block",
    ]);
    let mut csv = Csv::new([
        "scheme",
        "overhead",
        "worst_loss_frac",
        "mean_loss_frac",
        "hazard_bound",
        "repair_reads",
    ]);

    // Mirroring row.
    let mut worst = 0u64;
    let mut total_lost = 0u64;
    for d in 0..DISKS {
        let (_, lost) = availability_census(&server, &[DiskIndex(d)]).unwrap();
        worst = worst.max(lost);
        total_lost += lost;
    }
    table.row([
        "mirror (offset N/2)".to_string(),
        "2.00x".to_string(),
        fmt_pct(worst as f64 / BLOCKS as f64),
        fmt_pct(total_lost as f64 / (BLOCKS * u64::from(DISKS)) as f64),
        "0".to_string(),
        "1".to_string(),
    ]);
    csv.row([
        "mirror".to_string(),
        "2.0".to_string(),
        fmt_f64(worst as f64 / BLOCKS as f64, 6),
        fmt_f64(total_lost as f64 / (BLOCKS * u64::from(DISKS)) as f64, 6),
        "0".to_string(),
        "1".to_string(),
    ]);
    assert_eq!(worst, 0, "mirroring must survive any single failure");

    // Parity rows.
    for g in [3u32, 4, 6, 8] {
        let mut worst = 0u64;
        let mut total_lost = 0u64;
        for d in 0..DISKS {
            let (_, _, lost) = parity_availability_census(&server, g, &[DiskIndex(d)]).unwrap();
            worst = worst.max(lost);
            total_lost += lost;
        }
        let overhead = f64::from(g) / f64::from(g - 1);
        let mean_loss = total_lost as f64 / (BLOCKS * u64::from(DISKS)) as f64;
        let hazard = colocation_hazard(g, DISKS);
        table.row([
            format!("parity g={g}"),
            format!("{overhead:.2}x"),
            fmt_pct(worst as f64 / BLOCKS as f64),
            fmt_pct(mean_loss),
            fmt_pct(hazard),
            (g - 1).to_string(),
        ]);
        csv.row([
            format!("parity{g}"),
            fmt_f64(overhead, 4),
            fmt_f64(worst as f64 / BLOCKS as f64, 6),
            fmt_f64(mean_loss, 6),
            fmt_f64(hazard, 6),
            (g - 1).to_string(),
        ]);
        assert!(
            mean_loss <= hazard,
            "g={g}: measured loss {mean_loss} above the hazard bound {hazard}"
        );
    }
    println!("{table}");
    println!("reading: parity cuts storage overhead toward 1x as g grows, but (a) repair");
    println!("reads scale with g and (b) without declustering, random placement puts two");
    println!("group members on one disk with probability ~g^2/2N — the measured losses");
    println!("track the birthday hazard. This is exactly why §6 stops at mirroring and");
    println!("leaves parity as 'future research': parity over SCADDAR needs re-grouping");
    println!("after scaling, which re-introduces movement the algorithm exists to avoid.");
    let path = write_csv("e13_parity.csv", &csv);
    println!("csv: {}", path.display());
}
