//! E5/E12 — the §5 experiment: coefficient of variation of per-disk load
//! across successive scaling operations.
//!
//! Paper setup: 20 objects, b = 32, eps = 5%, disks averaging 8 — the
//! rule of thumb gives k = 8 operations before a full redistribution is
//! recommended. Paper findings (prose; the TR omits the figures):
//!
//! * "As the number of scaling operations increases, the load on each
//!   disk remains fairly equivalent. We observe that there is a slight
//!   increase in the variation ... due to the shrinking range of random
//!   numbers after each operation."
//! * "this curve is growing at a higher rate than the curve representing
//!   redistributions of all blocks" (complete redistribution).
//!
//! This binary regenerates both curves (plus the naive scheme as a
//! control), and adds a chi-square uniformity verdict per operation
//! (E12). Runs the schedule over several catalog seeds and reports the
//! mean CoV, exactly as a figure would average repeated simulations.

use scaddar_analysis::{chi_square_uniform, fmt_f64, mean, Csv, Table};
use scaddar_baselines::{
    run_schedule, FullRedistStrategy, NaiveStrategy, OpStats, ScaddarStrategy,
};
use scaddar_core::rule_of_thumb_max_ops;
use scaddar_experiments::{banner, churn, write_csv, PaperSetup};

const SEEDS: [u64; 3] = [11, 22, 33];
const OPS: usize = 16;

fn cov_series<F>(make: F) -> (Vec<f64>, Vec<f64>)
where
    F: Fn() -> Box<dyn scaddar_baselines::PlacementStrategy>,
{
    // Per-op mean CoV across seeds, plus mean chi-square p-value.
    let mut covs = vec![Vec::new(); OPS];
    let mut pvalues = vec![Vec::new(); OPS];
    for &seed in &SEEDS {
        let keys = PaperSetup::population(seed);
        let mut strategy = make();
        let stats: Vec<OpStats> =
            run_schedule(strategy.as_mut(), &keys, &churn(OPS)).expect("valid schedule");
        for (i, s) in stats.iter().enumerate() {
            covs[i].push(s.load_cov());
            pvalues[i].push(chi_square_uniform(&s.load_census).p_value);
        }
    }
    (
        covs.iter().map(|v| mean(v)).collect(),
        pvalues.iter().map(|v| mean(v)).collect(),
    )
}

fn main() {
    banner(
        "E5/E12",
        "load CoV across successive scaling operations",
        "§5 (20 objects, b=32, eps=5%, ~8 disks; threshold k=8)",
    );
    let k = rule_of_thumb_max_ops(
        PaperSetup::BITS,
        f64::from(PaperSetup::INITIAL_DISKS),
        PaperSetup::EPSILON,
    );
    println!("rule-of-thumb threshold: k = {k} operations (paper: k = 8)\n");

    let (scaddar_cov, scaddar_p) =
        cov_series(|| Box::new(ScaddarStrategy::new(PaperSetup::INITIAL_DISKS).unwrap()));
    let (full_cov, _) =
        cov_series(|| Box::new(FullRedistStrategy::new(PaperSetup::INITIAL_DISKS).unwrap()));
    let (naive_cov, _) =
        cov_series(|| Box::new(NaiveStrategy::new(PaperSetup::INITIAL_DISKS).unwrap()));

    let mut table = Table::new([
        "op j",
        "CoV scaddar",
        "CoV full-redist",
        "CoV naive",
        "chi2 p (scaddar)",
        "note",
    ]);
    let mut csv = Csv::new(["op", "cov_scaddar", "cov_full", "cov_naive", "p_scaddar"]);
    for j in 0..OPS {
        let note = if j + 1 == k as usize {
            "<- k: redistribute-all recommended"
        } else {
            ""
        };
        table.row([
            (j + 1).to_string(),
            fmt_f64(scaddar_cov[j], 4),
            fmt_f64(full_cov[j], 4),
            fmt_f64(naive_cov[j], 4),
            fmt_f64(scaddar_p[j], 3),
            note.to_string(),
        ]);
        csv.row([
            (j + 1).to_string(),
            fmt_f64(scaddar_cov[j], 6),
            fmt_f64(full_cov[j], 6),
            fmt_f64(naive_cov[j], 6),
            fmt_f64(scaddar_p[j], 6),
        ]);
    }
    println!("{table}");

    // The two qualitative claims, asserted.
    let early = mean(&scaddar_cov[..4]);
    let late = mean(&scaddar_cov[OPS - 4..]);
    println!("scaddar CoV, ops 1-4 mean: {}", fmt_f64(early, 4));
    println!("scaddar CoV, ops 13-16 mean: {}", fmt_f64(late, 4));
    assert!(
        late > early,
        "expected the paper's 'slight increase in variation'"
    );
    let full_late = mean(&full_cov[OPS - 4..]);
    assert!(
        late > full_late,
        "SCADDAR's curve must grow above the full-redistribution baseline"
    );
    println!(
        "full-redistribution CoV stays at binomial noise ({}), SCADDAR grows above it: reproduced.",
        fmt_f64(full_late, 4)
    );

    // Quantify the growth: an exponential fit to the post-threshold tail
    // (range thinning compounds multiplicatively, so log-CoV is linear).
    let tail: Vec<(f64, f64)> = (k as usize..OPS)
        .map(|j| ((j + 1) as f64, scaddar_cov[j]))
        .collect();
    let (a, b, r2) = scaddar_analysis::fit_exponential(&tail);
    println!(
        "post-threshold growth fit: CoV ~= {} * e^({} j)  (R^2 {})",
        fmt_f64(a, 6),
        fmt_f64(b, 3),
        fmt_f64(r2, 3),
    );
    assert!(b > 0.0, "post-threshold CoV must grow");
    let flat_fit = scaddar_analysis::fit_line(
        &(0..OPS)
            .map(|j| ((j + 1) as f64, full_cov[j]))
            .collect::<Vec<_>>(),
    );
    println!(
        "full-redistribution trend: slope {} per op (statistically flat)",
        fmt_f64(flat_fit.slope, 6),
    );
    assert!(
        flat_fit.slope.abs() < 1e-3,
        "the baseline curve should not trend"
    );

    // Within the first k ops the load should still pass uniformity at 1%.
    let early_p = mean(&scaddar_p[..k as usize]);
    println!(
        "mean chi-square p over the first k ops: {} (uniformity holds within budget)",
        fmt_f64(early_p, 3)
    );

    let path = write_csv("e5_cov_vs_ops.csv", &csv);
    println!("csv: {}", path.display());
}
