//! E10 — §6 fault tolerance by mirroring at offset `f(N_j) = N_j/2`.
//!
//! Measures block availability under every single-disk failure and every
//! disk-pair failure, before and after scaling operations (the offset is
//! a pure function of `N_j`, so mirrors stay locatable with no directory).
//!
//! Shape: single failures lose nothing; exactly the `N/2` "opposite"
//! pairs are fatal for the blocks they share (~`2/N` of all blocks);
//! the property is preserved across scaling.

use cmsim::{availability_census, mirror_offset, CmServer, ServerConfig};
use scaddar_analysis::{fmt_pct, Csv, Table};
use scaddar_core::{DiskIndex, ScalingOp};
use scaddar_experiments::{banner, write_csv};

fn pair_survey(server: &CmServer, total_blocks: u64, csv: &mut Csv, phase: &str) {
    let n = server.disks().disks();
    let mut fatal_pairs = 0u32;
    let mut worst_loss = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            let (_, lost) = availability_census(server, &[DiskIndex(a), DiskIndex(b)]).unwrap();
            if lost > 0 {
                fatal_pairs += 1;
                worst_loss = worst_loss.max(lost);
            }
            csv.row([
                phase.to_string(),
                format!("{a}+{b}"),
                lost.to_string(),
                fmt_pct(lost as f64 / total_blocks as f64),
            ]);
        }
    }
    // Fatal pairs are {d, d+offset}: when the offset is self-inverse
    // (2*offset = 0 mod N, i.e. even N with offset N/2) the pairs pair
    // up and there are N/2 of them; otherwise each d yields a distinct
    // unordered pair, giving N (one side of each pair loses its blocks).
    let off = mirror_offset(n);
    let expected_fatal = if (2 * off).is_multiple_of(n) {
        n / 2
    } else {
        n
    };
    println!(
        "{phase}: N={n}, offset={}, fatal pairs {fatal_pairs}/{} (expected {expected_fatal}), worst pair loses {} blocks ({})",
        mirror_offset(n),
        n * (n - 1) / 2,
        worst_loss,
        fmt_pct(worst_loss as f64 / total_blocks as f64),
    );
    assert_eq!(fatal_pairs, expected_fatal, "fatal-pair count diverged");
}

fn main() {
    banner(
        "E10",
        "mirroring at offset f(N) = N/2: availability under failures",
        "§6 (fault tolerance by data mirroring)",
    );
    const BLOCKS: u64 = 30_000;
    let mut server = CmServer::new(ServerConfig::new(6).with_catalog_seed(8)).unwrap();
    server.add_object(BLOCKS).unwrap();

    // Single failures: never lose data.
    let mut table = Table::new(["failed disk", "readable", "lost"]);
    for d in 0..6 {
        let (readable, lost) = availability_census(&server, &[DiskIndex(d)]).unwrap();
        table.row([d.to_string(), readable.to_string(), lost.to_string()]);
        assert_eq!(lost, 0, "single failure lost data");
    }
    println!("single-disk failures (N=6):");
    println!("{table}");

    let mut csv = Csv::new(["phase", "failed_pair", "lost_blocks", "lost_fraction"]);
    pair_survey(&server, BLOCKS, &mut csv, "before scaling (N=6)");

    // Scale and re-survey: the offset function tracks N automatically.
    server.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
    pair_survey(&server, BLOCKS, &mut csv, "after adding 2 (N=8)");
    server.scale_offline(ScalingOp::remove_one(3)).unwrap();
    pair_survey(&server, BLOCKS, &mut csv, "after removing 1 (N=7)");

    println!();
    println!(
        "storage overhead: mirroring {}x vs parity group of 5: {:.2}x (§6's future work)",
        cmsim::faults::mirroring_overhead(),
        cmsim::faults::parity_group_overhead(5)
    );
    let path = write_csv("e10_mirroring.csv", &csv);
    println!("csv: {}", path.display());
}
