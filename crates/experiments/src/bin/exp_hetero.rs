//! E16 — §6's second future-work item, built: SCADDAR over a
//! heterogeneous array via weighted logical disks (following the paper's
//! reference \[18\]).
//!
//! A physical disk of weight `w` backs `w` logical disks, so it receives
//! `w/Σw` of the blocks and of the expected demand. Attaching/detaching
//! a physical disk is a logical *group* operation, which SCADDAR already
//! handles with optimal movement. Measured: per-physical-disk load share
//! vs the weight-proportional target, and movement on detach.

use cmsim::HeteroMap;
use scaddar_analysis::{fmt_f64, fmt_pct, Csv, Table};
use scaddar_core::{Scaddar, ScaddarConfig, ScalingOp};
use scaddar_experiments::{banner, write_csv};

fn main() {
    banner(
        "E16",
        "heterogeneous arrays via weighted logical disks",
        "§6 future work; Zimmermann & Ghandeharizadeh [18]",
    );

    // Build a mixed-generation array: weights model relative bandwidth.
    //   2x old disks (weight 1), 2x mid (weight 2), 1x new (weight 4).
    let mut hetero = HeteroMap::new();
    let (_, first_op) = hetero.attach(1).unwrap();
    let n0 = match first_op {
        ScalingOp::Add { count } => count,
        _ => unreachable!(),
    };
    let mut engine = Scaddar::new(ScaddarConfig::new(n0).with_catalog_seed(31)).unwrap();
    for _ in 0..20 {
        engine.add_object(5_000);
    }
    let attach = |engine: &mut Scaddar, hetero: &mut HeteroMap, w: u32| {
        let (id, op) = hetero.attach(w).unwrap();
        engine.scale(op).unwrap();
        id
    };
    attach(&mut engine, &mut hetero, 1);
    attach(&mut engine, &mut hetero, 2);
    attach(&mut engine, &mut hetero, 2);
    let fat = attach(&mut engine, &mut hetero, 4);

    let logical = engine.load_distribution();
    let physical = hetero.aggregate_census(&logical);
    let shares = hetero.expected_shares();
    let total: u64 = physical.iter().sum();

    let mut table = Table::new(["physical disk", "weight", "blocks", "share", "target share"]);
    let mut csv = Csv::new(["disk", "weight", "blocks", "share", "target"]);
    for (i, (&(id, w), (&blocks, &target))) in hetero
        .physicals()
        .iter()
        .zip(physical.iter().zip(&shares))
        .enumerate()
    {
        let share = blocks as f64 / total as f64;
        table.row([
            format!("disk {} (id {})", i, id.0),
            w.to_string(),
            blocks.to_string(),
            fmt_pct(share),
            fmt_pct(target),
        ]);
        csv.row([
            id.0.to_string(),
            w.to_string(),
            blocks.to_string(),
            fmt_f64(share, 6),
            fmt_f64(target, 6),
        ]);
        assert!(
            (share - target).abs() < 0.02,
            "disk {i}: share {share} vs target {target}"
        );
    }
    println!("{table}");

    // Detach the weight-4 disk: its 40% share moves, no more.
    let op = hetero.detach(fat).unwrap();
    let plan = engine.scale(op).unwrap();
    println!(
        "detaching the weight-4 disk moved {} of blocks (optimal {}), to survivors only",
        fmt_pct(plan.moved_fraction()),
        fmt_pct(plan.optimal_fraction),
    );
    assert!((plan.moved_fraction() - 0.4).abs() < 0.02);

    // Post-detach shares still weight-proportional.
    let physical = hetero.aggregate_census(&engine.load_distribution());
    let shares = hetero.expected_shares();
    let total: u64 = physical.iter().sum();
    for (i, (&blocks, &target)) in physical.iter().zip(&shares).enumerate() {
        let share = blocks as f64 / total as f64;
        assert!(
            (share - target).abs() < 0.02,
            "post-detach disk {i}: {share} vs {target}"
        );
    }
    println!("post-detach shares re-verified weight-proportional across the 4 survivors.");
    let path = write_csv("e16_hetero.csv", &csv);
    println!("csv: {}", path.display());
}
