//! E19 — grounding "blocks per round": the drive-physics provisioning
//! table behind the simulator's bandwidth abstraction.
//!
//! CM-server papers (the paper's refs \[2\], \[16\], \[18\]) size service
//! rounds from seek/rotation/transfer budgets. This experiment prints
//! the provisioning table for two period drive generations and verifies
//! the two classic shapes: streams-per-disk grows with block size
//! (seek amortization) and saturates toward the transfer-rate bound;
//! heterogeneity (fast vs slow drive) motivates the §6 weighted-logical
//! mapping, with the measured weight ratio printed.

use cmsim::{provisioning_table, DiskModel};
use scaddar_analysis::{fmt_f64, Csv, Table};
use scaddar_experiments::{banner, write_csv};

fn main() {
    banner(
        "E19",
        "drive-physics provisioning: block size vs streams per disk",
        "refs [2],[16],[18] service-round model; grounds cmsim bandwidth",
    );
    let consume = 0.5e6; // 4 Mbit/s MPEG-2

    let drives = [
        ("cheetah-15k (2001 enterprise)", DiskModel::cheetah_2001()),
        (
            "barracuda-7k2 (2001 commodity)",
            DiskModel::barracuda_2001(),
        ),
    ];
    let mut csv = Csv::new(["drive", "block_kib", "round_s", "streams_per_disk"]);
    let mut streams_at_256 = Vec::new();
    for (name, model) in &drives {
        println!("{name}:");
        let mut table = Table::new(["block", "round (s)", "streams/disk", "payload MB/s"]);
        let mut prev_streams = 0;
        for (bytes, round_s, streams) in provisioning_table(model, consume) {
            let payload = streams as f64 * bytes as f64 / round_s / 1e6;
            table.row([
                format!("{} KiB", bytes / 1024),
                fmt_f64(round_s, 3),
                streams.to_string(),
                fmt_f64(payload, 1),
            ]);
            csv.row([
                name.to_string(),
                (bytes / 1024).to_string(),
                fmt_f64(round_s, 4),
                streams.to_string(),
            ]);
            assert!(
                streams >= prev_streams,
                "seek amortization must not regress"
            );
            assert!(
                payload < model.transfer_bps / 1e6,
                "payload exceeded the physical transfer bound"
            );
            if bytes == 256 * 1024 {
                streams_at_256.push(streams);
            }
            prev_streams = streams;
        }
        println!("{table}");
    }
    let ratio = f64::from(streams_at_256[0]) / f64::from(streams_at_256[1]);
    println!(
        "at 256 KiB blocks, the fast drive sustains {:.2}x the slow drive's streams —",
        ratio
    );
    println!("the weight ratio a §6 heterogeneous deployment would feed `HeteroMap::attach`");
    println!("(see E16 for the placement side of that story).");
    assert!(ratio > 1.2, "generational gap vanished?");
    let path = write_csv("e19_provisioning.csv", &csv);
    println!("csv: {}", path.display());
}
