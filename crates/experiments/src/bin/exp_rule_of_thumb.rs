//! E4 — the §4.3 rule-of-thumb table:
//! `k + 1 <= (b - log2(1/eps)) / log2(avg_disks)`.
//!
//! The paper works two instances in prose:
//! * b=64, avg=16, eps=1%  -> "a total of 13 disk addition/removal
//!   operations can be supported";
//! * b=32, avg=8,  eps=5%  -> "we find k = 8" (the §5 threshold).
//!
//! This binary regenerates those two numbers, sweeps the three
//! parameters, and cross-checks the closed form against the *explicit
//! sigma tracking* the paper recommends for implementations
//! ([`FairnessTracker`]).

use scaddar_analysis::{fmt_f64, Csv, Table};
use scaddar_core::{rule_of_thumb_max_ops, FairnessTracker};
use scaddar_experiments::{banner, write_csv};
use scaddar_prng::Bits;

/// Max safe operations by explicit sigma tracking: disks hover at `avg`
/// (each op "costs" a factor of `avg` in sigma).
fn max_ops_by_tracking(bits: Bits, avg: u32, eps: f64) -> u32 {
    let mut t = FairnessTracker::new(bits, avg);
    let mut ops = 0;
    while t.next_op_is_safe(avg, eps) && ops < 1_000 {
        t.record_op(avg);
        ops += 1;
    }
    ops
}

fn main() {
    banner(
        "E4",
        "rule of thumb: how many operations before full redistribution",
        "§4.3 (Lemma 4.3 and the closing examples)",
    );

    // The paper's two worked instances.
    let k1 = rule_of_thumb_max_ops(Bits::B64, 16.0, 0.01);
    let k2 = rule_of_thumb_max_ops(Bits::B32, 8.0, 0.05);
    println!("paper instance 1: b=64, avg=16, eps=1%  -> paper k=13, measured k={k1}");
    println!("paper instance 2: b=32, avg=8,  eps=5%  -> paper k~8, measured k={k2}");
    assert_eq!(k1, 13, "paper instance 1 diverged");
    assert_eq!(k2, 8, "paper instance 2 diverged");
    println!();

    let mut table = Table::new([
        "b".to_string(),
        "avg disks".into(),
        "eps".into(),
        "k (rule of thumb)".into(),
        "k (sigma tracking)".into(),
    ]);
    let mut csv = Csv::new(["bits", "avg_disks", "eps", "k_rule", "k_tracking"]);
    for bits in [Bits::B32, Bits::B64] {
        for avg in [4u32, 8, 16, 32, 64] {
            for eps in [0.01, 0.05, 0.10] {
                let k_rule = rule_of_thumb_max_ops(bits, f64::from(avg), eps);
                let k_track = max_ops_by_tracking(bits, avg, eps);
                table.row([
                    bits.get().to_string(),
                    avg.to_string(),
                    fmt_f64(eps, 2),
                    k_rule.to_string(),
                    k_track.to_string(),
                ]);
                csv.row([
                    bits.get().to_string(),
                    avg.to_string(),
                    fmt_f64(eps, 2),
                    k_rule.to_string(),
                    k_track.to_string(),
                ]);
                // The rule of thumb drops the (1+eps) and R = 2^b - 1
                // corrections, so exact sigma tracking is equal or at
                // most one operation more conservative.
                assert!(
                    k_track <= k_rule && k_track + 1 >= k_rule,
                    "closed form and tracking disagree: rule={k_rule} track={k_track}"
                );
            }
        }
    }
    println!("{table}");
    println!("note: exact sigma tracking (the paper's recommended implementation check)");
    println!("      can be one operation stricter — the rule of thumb drops the (1+eps)");
    println!("      correction of Lemma 4.3.");
    let path = write_csv("e4_rule_of_thumb.csv", &csv);
    println!("csv: {}", path.display());
}
