//! E6 — RO1: blocks moved per operation versus the optimal `z_j`
//! (Def. 3.4), for every strategy, across additions, removals, and disk
//! *group* sizes.
//!
//! Expected shape (the paper's core claim):
//! * SCADDAR, naive, directory, jump-hash (growth): moved fraction
//!   ~= `z_j` (overhead ratio ~1.0);
//! * consistent hashing: near-optimal with arc-variance noise;
//! * complete redistribution & round-robin restriping: ~all blocks move.

use scaddar_analysis::{fmt_f64, fmt_pct, Csv, Table};
use scaddar_baselines::{
    run_schedule, BlockKey, ConsistentHashStrategy, DirectoryStrategy, FullRedistStrategy,
    JumpHashStrategy, NaiveStrategy, PlacementStrategy, RoundRobinStrategy, ScaddarStrategy,
};
use scaddar_core::ScalingOp;
use scaddar_experiments::{banner, write_csv, PaperSetup};

fn strategies(disks: u32, keys: &[BlockKey]) -> Vec<Box<dyn PlacementStrategy>> {
    let mut dir = DirectoryStrategy::new(disks, 7).unwrap();
    dir.register(keys);
    vec![
        Box::new(ScaddarStrategy::new(disks).unwrap()),
        Box::new(NaiveStrategy::new(disks).unwrap()),
        Box::new(dir),
        Box::new(JumpHashStrategy::new(disks).unwrap()),
        Box::new(ConsistentHashStrategy::new(disks, 256).unwrap()),
        Box::new(FullRedistStrategy::new(disks).unwrap()),
        Box::new(RoundRobinStrategy::new(disks).unwrap()),
    ]
}

fn main() {
    banner(
        "E6",
        "movement per operation vs optimal z_j",
        "Def. 3.4 RO1; §1's motivation against constrained placement",
    );
    let keys = PaperSetup::population(77);

    let schedules: Vec<(&str, Vec<ScalingOp>)> = vec![
        ("add 1 disk (8->9)", vec![ScalingOp::Add { count: 1 }]),
        ("add group of 4 (8->12)", vec![ScalingOp::Add { count: 4 }]),
        ("remove 1 disk (8->7)", vec![ScalingOp::remove_one(3)]),
        (
            "remove group of 3 (8->5)",
            vec![ScalingOp::Remove {
                disks: vec![1, 4, 6],
            }],
        ),
        (
            "mixed: add 2 then remove 2",
            vec![
                ScalingOp::Add { count: 2 },
                ScalingOp::Remove { disks: vec![0, 9] },
            ],
        ),
    ];

    let mut csv = Csv::new([
        "schedule",
        "strategy",
        "op",
        "moved_fraction",
        "optimal",
        "overhead",
    ]);
    for (label, schedule) in &schedules {
        println!("schedule: {label}");
        let mut table = Table::new(["strategy", "op", "moved", "optimal z_j", "overhead ratio"]);
        for mut strategy in strategies(PaperSetup::INITIAL_DISKS, &keys) {
            let stats = run_schedule(strategy.as_mut(), &keys, schedule).expect("valid schedule");
            for s in &stats {
                let overhead = s.moved_fraction() / s.optimal_fraction;
                table.row([
                    s.strategy.to_string(),
                    s.op_index.to_string(),
                    fmt_pct(s.moved_fraction()),
                    fmt_pct(s.optimal_fraction),
                    fmt_f64(overhead, 3),
                ]);
                csv.row([
                    (*label).to_string(),
                    s.strategy.to_string(),
                    s.op_index.to_string(),
                    fmt_f64(s.moved_fraction(), 6),
                    fmt_f64(s.optimal_fraction, 6),
                    fmt_f64(overhead, 4),
                ]);
                // Assert the published ordering on the single-op rows.
                if schedule.len() == 1 {
                    match s.strategy {
                        "scaddar" | "directory" => assert!(
                            (overhead - 1.0).abs() < 0.05,
                            "{} overhead {overhead}",
                            s.strategy
                        ),
                        // Single-disk ops: overhead ~7-8x. Group ops
                        // amortize (z_j is larger), but stay >= ~2x.
                        "full-redistribution" | "round-robin" => assert!(
                            overhead > 1.8,
                            "{} should move far more than optimal, got {overhead}",
                            s.strategy
                        ),
                        _ => {}
                    }
                }
            }
        }
        println!("{table}");
    }
    let path = write_csv("e6_movement.csv", &csv);
    println!("csv: {}", path.display());
}
