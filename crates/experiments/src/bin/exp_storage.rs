//! Appendix A — metadata: the directory a CM server would need versus
//! SCADDAR's scaling log.
//!
//! The appendix argues a directory "can potentially expand to millions of
//! entries" (thousands of objects x tens of thousands of blocks) while
//! SCADDAR stores only the scaling operations. This binary measures both,
//! as the catalog grows and as operations accumulate.

use scaddar_analysis::{Csv, Table};
use scaddar_baselines::{synthetic_population, DirectoryStrategy, PlacementStrategy};
use scaddar_core::{ScalingLog, ScalingOp};
use scaddar_experiments::{banner, write_csv};

fn main() {
    banner(
        "A1",
        "metadata: per-block directory vs scaling log",
        "Appendix A (initial approaches)",
    );

    // Directory grows with the number of blocks...
    let mut table = Table::new(["blocks stored", "directory bytes", "scaling-log bytes"]);
    let mut csv = Csv::new(["blocks", "directory_bytes", "log_bytes"]);
    let mut log = ScalingLog::new(8).unwrap();
    for ops in [
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(1),
        ScalingOp::Add { count: 1 },
    ] {
        log.push(&ops).unwrap();
    }
    for blocks in [1_000u64, 10_000, 100_000, 1_000_000] {
        let keys = synthetic_population(blocks, 1);
        let mut dir = DirectoryStrategy::new(8, 1).unwrap();
        dir.register(&keys);
        for op in [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(1),
            ScalingOp::Add { count: 1 },
        ] {
            dir.apply(&op).unwrap();
        }
        table.row([
            blocks.to_string(),
            dir.directory_bytes().to_string(),
            log.metadata_bytes().to_string(),
        ]);
        csv.row([
            blocks.to_string(),
            dir.directory_bytes().to_string(),
            log.metadata_bytes().to_string(),
        ]);
        assert!(dir.directory_bytes() as u64 >= blocks * 12);
        assert!(log.metadata_bytes() < 100);
    }
    println!("{table}");

    // ...while the log grows only with operations (and stays tiny).
    let mut table = Table::new(["scaling operations", "scaling-log bytes"]);
    let mut log = ScalingLog::new(8).unwrap();
    println!("log growth with operations (independent of block count):");
    let mut csv2 = Csv::new(["ops", "log_bytes"]);
    for i in 0..64u32 {
        if i % 2 == 0 {
            log.push(&ScalingOp::Add { count: 1 }).unwrap();
        } else {
            log.push(&ScalingOp::remove_one(0)).unwrap();
        }
        if (i + 1).is_power_of_two() {
            table.row([(i + 1).to_string(), log.metadata_bytes().to_string()]);
            csv2.row([(i + 1).to_string(), log.metadata_bytes().to_string()]);
        }
    }
    println!("{table}");
    println!(
        "a 1M-block server needs a ~12 MB directory; SCADDAR's log after 64 ops is {} bytes.",
        log.metadata_bytes()
    );
    let p1 = write_csv("a1_storage_directory.csv", &csv);
    let p2 = write_csv("a1_storage_log.csv", &csv2);
    println!("csv: {} and {}", p1.display(), p2.display());
}
