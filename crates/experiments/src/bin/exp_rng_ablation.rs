//! E14 (ablation) — placement quality across PRNG families.
//!
//! The paper assumes an abstract `p_r(s)`; this ablation verifies the
//! assumption is safe: SCADDAR's balance (CoV) and movement optimality
//! are statistically identical across four generator families with very
//! different internals (counter-based avalanche, 64-bit LCG, 128-bit
//! PCG, xorshift*). What differs is only the *cost model* of indexed
//! access (benched in `x0_indexed_access`).

use scaddar_analysis::{fmt_f64, mean, Csv, Table};
use scaddar_baselines::{run_schedule, ScaddarStrategy};
use scaddar_core::Catalog;
use scaddar_experiments::{banner, catalog_population, churn, write_csv};
use scaddar_prng::{Bits, RngKind};

const OPS: usize = 8;

fn main() {
    banner(
        "E14",
        "ablation: generator family vs placement quality",
        "§3 (the p_r(s) abstraction) / DESIGN.md ablation list",
    );

    let mut table = Table::new([
        "rng",
        "mean CoV (8 ops)",
        "max CoV",
        "mean movement overhead",
        "runs-test p",
        "lag-1 corr",
    ]);
    let mut csv = Csv::new([
        "rng",
        "mean_cov",
        "max_cov",
        "mean_overhead",
        "runs_p",
        "serial_corr",
    ]);
    let mut mean_covs = Vec::new();
    for kind in RngKind::ALL {
        let mut covs = Vec::new();
        let mut overheads = Vec::new();
        for seed in [1u64, 2, 3] {
            let mut catalog = Catalog::new(kind, Bits::B32, seed);
            for _ in 0..20 {
                catalog.add_object(5_000);
            }
            let keys = catalog_population(&catalog);
            let mut strategy = ScaddarStrategy::new(8).unwrap();
            let stats = run_schedule(&mut strategy, &keys, &churn(OPS)).unwrap();
            for s in &stats {
                covs.push(s.load_cov());
                overheads.push(s.moved_fraction() / s.optimal_fraction);
            }
        }
        let mean_cov = mean(&covs);
        let max_cov = covs.iter().copied().fold(0.0f64, f64::max);
        let mean_overhead = mean(&overheads);
        // Raw-stream quality: Knuth-style tests over the family's output.
        let stream = scaddar_prng::BlockRandoms::new(kind, 0xBEEF, Bits::B64).take_values(20_000);
        let runs = scaddar_analysis::runs_test(&stream);
        let corr = scaddar_analysis::serial_correlation(&stream);
        table.row([
            kind.to_string(),
            fmt_f64(mean_cov, 4),
            fmt_f64(max_cov, 4),
            fmt_f64(mean_overhead, 3),
            fmt_f64(runs.p_value, 3),
            fmt_f64(corr, 4),
        ]);
        csv.row([
            kind.to_string(),
            fmt_f64(mean_cov, 6),
            fmt_f64(max_cov, 6),
            fmt_f64(mean_overhead, 5),
            fmt_f64(runs.p_value, 5),
            fmt_f64(corr, 6),
        ]);
        assert!(runs.p_value > 0.001, "{kind} failed the runs test");
        assert!(corr.abs() < 0.05, "{kind} serially correlated: {corr}");
        mean_covs.push(mean_cov);
        assert!(
            (mean_overhead - 1.0).abs() < 0.03,
            "{kind}: movement depends on the generator?!"
        );
    }
    println!("{table}");

    let spread = mean_covs.iter().copied().fold(0.0f64, f64::max)
        / mean_covs.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "max/min of mean CoV across families: {} — placement quality is generator-insensitive.",
        fmt_f64(spread, 3)
    );
    assert!(
        spread < 1.5,
        "a generator family is an outlier: {mean_covs:?}"
    );
    let path = write_csv("e14_rng_ablation.csv", &csv);
    println!("csv: {}", path.display());
}
