//! E15 (ablation) — disk-group size vs the fairness budget.
//!
//! §4.3's sigma product charges *one factor of N per operation*, however
//! many disks the operation touches. So growing 8 -> 16 disks as eight
//! single-disk operations multiplies sigma by ~9·10·…·16, while one
//! 8-disk group operation multiplies it by 16 only — the budget strongly
//! rewards batching. This ablation quantifies that: remaining safe
//! operations and the unfairness bound after reaching 16 disks by
//! different group sizes, plus the measured CoV at arrival.

use scaddar_analysis::{fmt_f64, Csv, Table};
use scaddar_baselines::{run_schedule, ScaddarStrategy};
use scaddar_core::{FairnessTracker, ScalingOp};
use scaddar_experiments::{banner, write_csv, PaperSetup};
use scaddar_prng::Bits;

fn main() {
    banner(
        "E15",
        "ablation: group size vs the §4.3 fairness budget",
        "§4.3 (sigma_k charges per operation, not per disk)",
    );
    let keys = PaperSetup::population(55);

    let mut table = Table::new([
        "path 8 -> 16 disks",
        "operations",
        "sigma_k",
        "unfairness bound",
        "CoV at 16 disks",
        "further safe ops (eps=5%)",
    ]);
    let mut csv = Csv::new(["group", "ops", "sigma", "bound", "cov", "headroom"]);

    for group in [1u32, 2, 4, 8] {
        let ops_needed = 8 / group as usize;
        let schedule: Vec<ScalingOp> = (0..ops_needed)
            .map(|_| ScalingOp::Add { count: group })
            .collect();

        let mut tracker = FairnessTracker::new(Bits::B32, 8);
        let mut disks = 8u32;
        for _ in 0..ops_needed {
            disks += group;
            tracker.record_op(disks);
        }
        let report = tracker.report();

        let mut strategy = ScaddarStrategy::new(8).unwrap();
        let stats = run_schedule(&mut strategy, &keys, &schedule).unwrap();
        let cov = stats.last().unwrap().load_cov();

        // Headroom: how many more hover-at-16 operations stay safe.
        let mut probe = tracker.clone();
        let mut headroom = 0;
        while probe.next_op_is_safe(16, 0.05) && headroom < 99 {
            probe.record_op(16);
            headroom += 1;
        }

        table.row([
            format!("{} x add {group}", ops_needed),
            ops_needed.to_string(),
            report.sigma.to_string(),
            fmt_f64(report.unfairness_bound, 8),
            fmt_f64(cov, 4),
            headroom.to_string(),
        ]);
        csv.row([
            group.to_string(),
            ops_needed.to_string(),
            report.sigma.to_string(),
            fmt_f64(report.unfairness_bound, 10),
            fmt_f64(cov, 6),
            headroom.to_string(),
        ]);
    }
    println!("{table}");
    println!("reading: reaching the same 16-disk array in one group operation leaves a");
    println!("~6 orders of magnitude smaller sigma — and correspondingly more future");
    println!("scaling headroom — than eight single-disk operations. Batch your disks.");
    let path = write_csv("e15_group_size.csv", &csv);
    println!("csv: {}", path.display());
}
