//! E18 — declustered parity: buying back E13's losses with repair
//! traffic.
//!
//! Static consecutive parity groups lose blocks on single failures
//! (E13); declustering guarantees distinct-disk groups but must repair
//! its membership after every scaling operation. This experiment runs
//! the same schedule over both and tabulates, per operation:
//!
//! * data movement (identical — SCADDAR's z_j, shared by both schemes);
//! * the static scheme's expected single-failure loss after the op;
//! * the declustered scheme's conflicts, repair traffic (regrouped
//!   blocks + parity rewrites) and post-repair loss (always 0).
//!
//! Note on modelling: declustered availability treats parity disks as
//! distinct-by-construction (the same probe rule the static scheme uses
//! for its parity), so the comparison isolates the *data-member*
//! co-location effect that declustering actually addresses.

use cmsim::parity::parity_availability_census;
use cmsim::{CmServer, DeclusteredParity, ServerConfig};
use scaddar_analysis::{fmt_pct, Csv, Table};
use scaddar_core::{DiskIndex, ScalingOp};
use scaddar_experiments::{banner, write_csv};

const GROUP: u32 = 5;
const BLOCKS: u64 = 20_000;

/// Mean single-failure loss fraction over all current disks.
fn static_loss(server: &CmServer) -> f64 {
    let n = server.disks().disks();
    let mut lost_total = 0u64;
    for d in 0..n {
        let (_, _, lost) = parity_availability_census(server, GROUP, &[DiskIndex(d)]).unwrap();
        lost_total += lost;
    }
    lost_total as f64 / (BLOCKS * u64::from(n)) as f64
}

fn declustered_loss(server: &CmServer, layer: &DeclusteredParity) -> f64 {
    let n = server.disks().disks();
    let mut lost_total = 0u64;
    for d in 0..n {
        let (_, lost) = layer.availability(server, &[DiskIndex(d)]).unwrap();
        lost_total += lost;
    }
    lost_total as f64 / (BLOCKS * u64::from(n)) as f64
}

fn main() {
    banner(
        "E18",
        "declustered parity: repair traffic vs the static scheme's losses",
        "§6 future work, carried one step further than E13",
    );
    let mut server = CmServer::new(ServerConfig::new(10).with_catalog_seed(5)).unwrap();
    server.add_object(BLOCKS).unwrap();
    let mut layer = DeclusteredParity::build(&server, GROUP).unwrap();

    let schedule = [
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(4),
        ScalingOp::Add { count: 1 },
        ScalingOp::Remove { disks: vec![0, 7] },
    ];

    let mut table = Table::new([
        "op",
        "data moved",
        "static: mean 1-failure loss",
        "declustered: conflicts",
        "declustered: regrouped",
        "parity rewrites",
        "declustered: loss after repair",
    ]);
    let mut csv = Csv::new([
        "op",
        "moved",
        "static_loss",
        "conflicts",
        "regrouped",
        "parity_rewrites",
        "declustered_loss",
    ]);

    println!(
        "initial: static loss {} vs declustered {} (both schemes share SCADDAR data movement)\n",
        fmt_pct(static_loss(&server)),
        fmt_pct(declustered_loss(&server, &layer)),
    );

    for (i, op) in schedule.iter().enumerate() {
        let moved = server.scale_offline(op.clone()).unwrap();
        let conflicts = layer.conflicted_groups(&server).unwrap();
        let stats = layer.repair(&server).unwrap();
        let s_loss = static_loss(&server);
        let d_loss = declustered_loss(&server, &layer);
        table.row([
            format!("{} ({op:?})", i + 1),
            moved.to_string(),
            fmt_pct(s_loss),
            conflicts.to_string(),
            stats.regrouped_blocks.to_string(),
            stats.parity_rewrites.to_string(),
            fmt_pct(d_loss),
        ]);
        csv.row([
            (i + 1).to_string(),
            moved.to_string(),
            format!("{s_loss:.6}"),
            conflicts.to_string(),
            stats.regrouped_blocks.to_string(),
            stats.parity_rewrites.to_string(),
            format!("{d_loss:.6}"),
        ]);
        assert_eq!(d_loss, 0.0, "declustering must restore 1-failure safety");
        assert!(s_loss > 0.0, "static scheme should keep losing blocks");
        assert!(
            stats.regrouped_blocks <= moved,
            "repair traffic exceeded data movement"
        );
    }
    println!("{table}");
    println!(
        "storage: declustered overhead {:.3}x (static {:.3}x), membership table {} KiB",
        layer.storage_overhead(&server),
        f64::from(GROUP) / f64::from(GROUP - 1),
        layer.table_bytes() / 1024,
    );
    println!("reading: declustering converts E13's permanent loss exposure into a bounded,");
    println!("per-operation repair cost (regrouped <= moved blocks) — at the price of the");
    println!("one thing SCADDAR was designed to avoid: per-block state.");
    let path = write_csv("e18_decluster.csv", &csv);
    println!("csv: {}", path.display());
}
