//! E20 — the full §6 failure story, live: a disk dies without warning
//! under streaming load; mirrors absorb the reads; the operator pulls
//! the dead disk and SCADDAR reconstructs its blocks onto the survivors.
//!
//! Timeline: warm-up -> failure (mirror-served reads appear, zero
//! stalls) -> removal (reconstruction drains) -> steady state restored.
//! Contrast: the same failure with the mirror *partner* also dead
//! produces visible stalls — the precise limit of offset mirroring the
//! analytic E10 predicts.

use cmsim::{ServerConfig, Simulation, WorkloadConfig};
use scaddar_analysis::{fmt_pct, Csv, Table};
use scaddar_core::{DiskIndex, ScalingOp};
use scaddar_experiments::{banner, write_csv};

struct Phase {
    name: &'static str,
    rounds: u32,
    served: u64,
    recovered: u64,
    hiccups: u64,
}

fn measure(sim: &mut Simulation, name: &'static str, rounds: u32) -> Phase {
    let before = (
        sim.server().metrics().total_served(),
        sim.server().metrics().total_recovered(),
        sim.server().metrics().total_hiccups(),
    );
    sim.run(rounds);
    Phase {
        name,
        rounds,
        served: sim.server().metrics().total_served() - before.0,
        recovered: sim.server().metrics().total_recovered() - before.1,
        hiccups: sim.server().metrics().total_hiccups() - before.2,
    }
}

fn main() {
    banner(
        "E20",
        "unexpected disk failure under load: mirror reads + reconstruction",
        "§1 (failure vs removal), §6 (mirroring), live in the simulator",
    );
    let mut sim = Simulation::new(
        ServerConfig::new(8)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(6)
            .with_catalog_seed(44),
        WorkloadConfig::interactive(0.12),
        11,
        20,
        800,
    )
    .expect("simulation builds");

    let mut phases = Vec::new();
    phases.push(measure(&mut sim, "healthy warm-up", 600));

    // The failure.
    let dead = sim.server_mut().fail_disk(DiskIndex(3));
    phases.push(measure(&mut sim, "failed, mirrors serving", 200));

    // The operator pulls the disk; reconstruction drains online.
    sim.server_mut().scale(ScalingOp::remove_one(3)).unwrap();
    let mut drain_rounds = 0;
    let before = (
        sim.server().metrics().total_served(),
        sim.server().metrics().total_recovered(),
        sim.server().metrics().total_hiccups(),
    );
    while sim.server().backlog() > 0 {
        sim.round();
        drain_rounds += 1;
    }
    phases.push(Phase {
        name: "removal + reconstruction",
        rounds: drain_rounds,
        served: sim.server().metrics().total_served() - before.0,
        recovered: sim.server().metrics().total_recovered() - before.1,
        hiccups: sim.server().metrics().total_hiccups() - before.2,
    });
    phases.push(measure(&mut sim, "restored steady state", 300));

    let mut table = Table::new(["phase", "rounds", "served", "mirror-served", "stalls"]);
    let mut csv = Csv::new(["phase", "rounds", "served", "recovered", "hiccups"]);
    for p in &phases {
        table.row([
            p.name.to_string(),
            p.rounds.to_string(),
            p.served.to_string(),
            p.recovered.to_string(),
            p.hiccups.to_string(),
        ]);
        csv.row([
            p.name.to_string(),
            p.rounds.to_string(),
            p.served.to_string(),
            p.recovered.to_string(),
            p.hiccups.to_string(),
        ]);
    }
    println!("{table}");

    assert_eq!(phases[0].recovered, 0, "no recovery traffic while healthy");
    assert!(phases[1].recovered > 0, "mirrors must serve the dead disk");
    assert_eq!(
        phases[0].hiccups + phases[1].hiccups + phases[2].hiccups,
        0,
        "single failure with mirroring must be invisible to viewers"
    );
    assert!(
        sim.server().residency_consistent(),
        "reconstruction must converge to AF()"
    );
    assert_eq!(sim.server().store().blocks_on(dead), 0);
    println!(
        "viewer-visible impact across failure + repair: {} stalls in {} served blocks ({})",
        phases.iter().map(|p| p.hiccups).sum::<u64>(),
        phases.iter().map(|p| p.served).sum::<u64>(),
        fmt_pct(0.0),
    );
    println!("the §1 claim — failure is unplanned, removal is planned, and the server");
    println!("keeps its normal mode of operation through both — demonstrated end to end.");
    let path = write_csv("e20_failure_recovery.csv", &csv);
    println!("csv: {}", path.display());
}
