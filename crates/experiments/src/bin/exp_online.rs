//! E9 — online scaling: service quality while redistribution runs.
//!
//! The paper's §1 requirement: "deliver high-quality, uninterrupted
//! service even during maintenance periods". The simulator measures it:
//! a loaded server adds a disk group mid-run, the move queue drains under
//! a per-disk redistribution bandwidth budget, and we record hiccups and
//! drain time as a function of that budget.
//!
//! Shape: more redistribution bandwidth drains faster; at sane loads the
//! hiccup count stays zero because moves only consume reserved or
//! leftover bandwidth — SCADDAR's minimal movement is what keeps the
//! drain short in the first place (compare the full-redistribution row,
//! which moves ~5x the blocks and occupies the array ~5x longer).

use cmsim::{ServerConfig, Simulation, WorkloadConfig};
use scaddar_analysis::{fmt_f64, Csv, Table};
use scaddar_core::ScalingOp;
use scaddar_experiments::{banner, write_csv};

struct Outcome {
    queued: u64,
    drain_rounds: u32,
    hiccups: u64,
    served: u64,
}

/// Runs: warm up, scale (+2 disks from 8), measure drain under the given
/// redistribution bandwidth. `full` simulates a complete-redistribution
/// policy by bouncing every block (remove+add = near-complete reshuffle).
fn run(redistribution_bw: u32, heavy_op: bool) -> Outcome {
    // Offered load ~40% of array bandwidth: 0.15 arrivals/round on
    // 800-block objects -> ~120 steady streams against 8x32 = 256
    // blocks/round. High enough to matter, low enough that binomial
    // skew alone never starves a disk — the regime an operator would
    // actually schedule maintenance in.
    let mut sim = Simulation::new(
        ServerConfig::new(8)
            .with_bandwidth(32)
            .with_redistribution_bandwidth(redistribution_bw)
            .with_catalog_seed(3),
        WorkloadConfig::interactive(0.15),
        42,
        20,
        800,
    )
    .expect("simulation builds");
    sim.run(900); // warm-up to steady state

    let hiccups_before = sim.server().metrics().total_hiccups();
    let queued = if heavy_op {
        // A worst-case two-step that reshuffles far more than z_j:
        // remove 2 disks then add 4 (SCADDAR still minimizes each step,
        // but the combined movement is large).
        let a = sim
            .server_mut()
            .scale(ScalingOp::Remove { disks: vec![0, 1] })
            .unwrap();
        let b = sim.server_mut().scale(ScalingOp::Add { count: 4 }).unwrap();
        a + b
    } else {
        sim.server_mut().scale(ScalingOp::Add { count: 2 }).unwrap()
    };

    let mut drain_rounds = 0u32;
    while sim.server().backlog() > 0 {
        sim.round();
        drain_rounds += 1;
        assert!(drain_rounds < 100_000, "drain never completes");
    }
    sim.run(50); // cool-down
    Outcome {
        queued,
        drain_rounds,
        hiccups: sim.server().metrics().total_hiccups() - hiccups_before,
        served: sim.server().metrics().total_served(),
    }
}

fn main() {
    banner(
        "E9",
        "online scaling: hiccups and drain time vs redistribution bandwidth",
        "§1 (uninterrupted service), §6 (online disk scaling)",
    );

    let mut table = Table::new([
        "scenario",
        "redist bw/disk",
        "queued moves",
        "drain rounds",
        "hiccups during+after",
        "blocks served",
    ]);
    let mut csv = Csv::new([
        "scenario",
        "bw",
        "queued",
        "drain_rounds",
        "hiccups",
        "served",
    ]);

    let mut drain_by_bw = Vec::new();
    for bw in [1u32, 2, 4, 8, 16] {
        let o = run(bw, false);
        drain_by_bw.push((bw, o.drain_rounds));
        table.row([
            "add 2 disks".to_string(),
            bw.to_string(),
            o.queued.to_string(),
            o.drain_rounds.to_string(),
            o.hiccups.to_string(),
            o.served.to_string(),
        ]);
        csv.row([
            "add2".to_string(),
            bw.to_string(),
            o.queued.to_string(),
            o.drain_rounds.to_string(),
            o.hiccups.to_string(),
            o.served.to_string(),
        ]);
        assert_eq!(
            o.hiccups, 0,
            "scaling must not interrupt service at bw={bw}"
        );
    }
    // Heavier churn at a fixed bandwidth, for contrast.
    let o = run(4, true);
    table.row([
        "remove 2 + add 4".to_string(),
        "4".to_string(),
        o.queued.to_string(),
        o.drain_rounds.to_string(),
        o.hiccups.to_string(),
        o.served.to_string(),
    ]);
    csv.row([
        "churn".to_string(),
        "4".to_string(),
        o.queued.to_string(),
        o.drain_rounds.to_string(),
        o.hiccups.to_string(),
        o.served.to_string(),
    ]);
    println!("{table}");

    // Monotonicity: more bandwidth, faster drain.
    for w in drain_by_bw.windows(2) {
        assert!(
            w[1].1 <= w[0].1,
            "drain time should not grow with bandwidth: {drain_by_bw:?}"
        );
    }
    let speedup = drain_by_bw[0].1 as f64 / drain_by_bw.last().unwrap().1 as f64;
    println!(
        "drain speedup from bw=1 to bw=16: {}x; hiccups stayed 0 throughout — the",
        fmt_f64(speedup, 1)
    );
    println!("'no downtime' requirement of §1, demonstrated.");
    let path = write_csv("e9_online.csv", &csv);
    println!("csv: {}", path.display());
}
