//! E1/E2 — Figure 1 of the paper, regenerated exactly, plus the census
//! that demonstrates the naive scheme's RO2 violation.
//!
//! Setup (§4.1): `X_0 = 0..=43` placed on `N_0 = 4` disks, followed by
//! two single-disk additions under the naive remap (Eq. 2). The paper's
//! claim: after the second addition "only certain blocks from disks 1, 3
//! and 4 are moved onto disk 5 while disk 0 and disk 2 are ignored".

use scaddar_analysis::{Csv, Table};
use scaddar_baselines::{
    BlockKey, NaiveStrategy, PlacementStrategy, PlacementStrategyExt, ScaddarStrategy,
};
use scaddar_core::ScalingOp;
use scaddar_experiments::{banner, write_csv};

fn layout_table(title: &str, placements: &[u32], disks: u32) {
    println!("{title}");
    let mut per_disk: Vec<Vec<u64>> = vec![Vec::new(); disks as usize];
    for (x0, &d) in placements.iter().enumerate() {
        per_disk[d as usize].push(x0 as u64);
    }
    let mut t = Table::new((0..disks).map(|d| format!("Disk {d}")));
    let height = per_disk.iter().map(Vec::len).max().unwrap_or(0);
    for row in 0..height {
        t.row((0..disks as usize).map(|d| {
            per_disk[d]
                .get(row)
                .map_or(String::new(), |x| x.to_string())
        }));
    }
    println!("{t}");
}

fn main() {
    banner(
        "E1/E2",
        "Figure 1 — the naive approach violates RO2",
        "§4.1, Fig. 1 (a,b,c)",
    );

    let keys: Vec<BlockKey> = (0..44).map(|i| BlockKey { ordinal: i, id: i }).collect();
    let mut naive = NaiveStrategy::new(4).unwrap();

    let a = naive.place_all(&keys);
    layout_table("(a) initial state, 4 disks:", &a, 4);

    naive.apply(&ScalingOp::add_one()).unwrap();
    let b = naive.place_all(&keys);
    layout_table("(b) after 1st 1-disk addition:", &b, 5);

    naive.apply(&ScalingOp::add_one()).unwrap();
    let c = naive.place_all(&keys);
    layout_table("(c) after 2nd 1-disk addition:", &c, 6);

    // The RO2-violation census: which *old* disks supplied disk 5?
    let mut census_naive = [0u64; 5];
    for k in &keys {
        if c[k.ordinal as usize] == 5 {
            census_naive[b[k.ordinal as usize] as usize] += 1;
        }
    }
    println!("source census of blocks moved onto disk 5 (naive, Eq. 2):");
    let mut t = Table::new(["source disk", "blocks moved to disk 5"]);
    for (d, &n) in census_naive.iter().enumerate() {
        t.row([format!("{d}"), n.to_string()]);
    }
    println!("{t}");
    println!(
        "paper's claim: disks 0 and 2 contribute nothing -> measured: disk0={}, disk2={}",
        census_naive[0], census_naive[2]
    );
    assert_eq!(census_naive[0], 0, "Figure 1 reproduction diverged");
    assert_eq!(census_naive[2], 0, "Figure 1 reproduction diverged");

    // Contrast: SCADDAR on a *large uniform* population sources the new
    // disk's blocks from every old disk evenly (tiny 44-block toy
    // populations are too noisy to show a census on).
    let big: Vec<BlockKey> = scaddar_baselines::synthetic_population(60_000, 42);
    let mut scad = ScaddarStrategy::new(4).unwrap();
    scad.apply(&ScalingOp::add_one()).unwrap();
    let before = scad.place_all(&big);
    scad.apply(&ScalingOp::add_one()).unwrap();
    let after = scad.place_all(&big);
    let mut census_scad = [0u64; 5];
    for (i, (&x, &y)) in before.iter().zip(&after).enumerate() {
        if y == 5 {
            census_scad[x as usize] += 1;
            let _ = i;
        }
    }
    println!("same census under SCADDAR (60k uniform blocks):");
    let mut t = Table::new(["source disk", "blocks moved to disk 5"]);
    for (d, &n) in census_scad.iter().enumerate() {
        t.row([format!("{d}"), n.to_string()]);
    }
    println!("{t}");

    let mut csv = Csv::new(["scheme", "source_disk", "moved_to_disk5"]);
    for (d, &n) in census_naive.iter().enumerate() {
        csv.row(["naive".into(), d.to_string(), n.to_string()]);
    }
    for (d, &n) in census_scad.iter().enumerate() {
        csv.row(["scaddar".into(), d.to_string(), n.to_string()]);
    }
    let path = write_csv("e1_fig1_source_census.csv", &csv);
    println!("csv: {}", path.display());
}
