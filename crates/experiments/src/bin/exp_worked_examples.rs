//! E3 — the §4.2.1 worked examples, traced through the real access
//! function.
//!
//! Case 1: disks 0..=5, remove disk 4; a block with `X_{j-1} = 28` sits
//! on the removed disk and must move — the paper derives `X_j = 4`,
//! landing on the 4th surviving disk (physical "Disk 5").
//! Case 2: a block with `X_{j-1} = 41` sits on surviving disk 5 and must
//! stay — the paper derives `X_j = 34` (`q·N_j + new(5) = 6·5 + 4`).

use scaddar_analysis::Table;
use scaddar_core::{trace, ScalingLog, ScalingOp};
use scaddar_experiments::banner;

fn print_trace(label: &str, x0: u64, log: &ScalingLog) {
    println!("{label}");
    let mut t = Table::new(["epoch", "X_j", "N_j", "D_j = X_j mod N_j", "moved?"]);
    for step in trace(x0, log) {
        t.row([
            step.epoch.to_string(),
            step.x.to_string(),
            step.disks.to_string(),
            step.disk.0.to_string(),
            if step.moved {
                "yes".into()
            } else {
                String::from("no")
            },
        ]);
    }
    println!("{t}");
}

fn main() {
    banner(
        "E3",
        "§4.2.1 worked examples through AF()",
        "§4.2.1 'Example of disk removal'",
    );

    let mut log = ScalingLog::new(6).unwrap();
    log.push(&ScalingOp::remove_one(4)).unwrap();

    print_trace("case 1: X = 28 on removed disk 4 (must move):", 28, &log);
    let steps = trace(28, &log);
    assert_eq!(steps[1].x, 4, "paper derives X_j = 4");
    assert_eq!(steps[1].disk.0, 4, "paper derives the 4th surviving disk");
    assert!(steps[1].moved);
    println!("paper: X_j = q_(j-1) = 4; D_j = 4 -> the old physical Disk 5. reproduced.\n");

    print_trace("case 2: X = 41 on surviving disk 5 (must stay):", 41, &log);
    let steps = trace(41, &log);
    assert_eq!(steps[1].x, 34, "paper derives X_j = 34");
    assert_eq!(steps[1].disk.0, 4, "new(5) = 4");
    assert!(!steps[1].moved);
    println!("paper: X_j = q*N_j + new(5) = 6*5 + 4 = 34; block stays on its disk. reproduced.\n");

    // Bonus: the same block followed through a longer mixed history, to
    // show AF() chaining (AO1: a handful of mod/div per op).
    let mut log = ScalingLog::new(4).unwrap();
    for op in [
        ScalingOp::Add { count: 2 },
        ScalingOp::remove_one(1),
        ScalingOp::Add { count: 1 },
        ScalingOp::remove_one(0),
    ] {
        log.push(&op).unwrap();
    }
    print_trace(
        "bonus: X_0 = 123456789 through 4 mixed operations:",
        123_456_789,
        &log,
    );
}
