//! E17 (ablation) — the hidden cost of the §6 mirroring sketch: mirror
//! copies break RO1.
//!
//! The mirror of a block on disk `d` lives at `(d + f(N)) mod N` with
//! `f(N) = N/2`. The offset is a function of `N`, so *every scaling
//! operation changes it* — and then almost every mirror copy is on the
//! "wrong" disk and must move, even though SCADDAR moved only `z_j` of
//! the primaries. This ablation measures primary vs mirror movement per
//! operation, and compares against an alternative the paper could have
//! chosen: a **fixed** offset (`f = 1`), which keeps mirrors glued to
//! their primaries' movement at the cost of pairing adjacent disks
//! (worse failure correlation under correlated-by-position failures,
//! e.g. a shared power rail or shelf).

use scaddar_analysis::{fmt_pct, Csv, Table};
use scaddar_core::{locate, Catalog, DiskIndex, ScalingLog, ScalingOp};
use scaddar_experiments::{banner, write_csv, PaperSetup};

fn mirror_with_offset(primary: DiskIndex, disks: u32, offset: u32) -> DiskIndex {
    DiskIndex((primary.0 + offset) % disks)
}

fn main() {
    banner(
        "E17",
        "mirror copies under scaling: f(N)=N/2 vs a fixed offset",
        "§6 (the mirroring sketch, cost the paper leaves implicit)",
    );
    let catalog = Catalog::new(scaddar_prng::RngKind::SplitMix64, PaperSetup::BITS, 21);
    let mut catalog = catalog;
    for _ in 0..PaperSetup::OBJECTS {
        catalog.add_object(PaperSetup::BLOCKS_PER_OBJECT);
    }
    let x0s: Vec<u64> = catalog.iter_x0().map(|(_, x)| x).collect();
    let total = x0s.len() as f64;

    let schedule = [
        ScalingOp::Add { count: 1 }, // 8 -> 9 (offset 4 -> 4)
        ScalingOp::Add { count: 1 }, // 9 -> 10 (offset 4 -> 5)
        ScalingOp::remove_one(3),    // 10 -> 9 (offset 5 -> 4)
        ScalingOp::Add { count: 3 }, // 9 -> 12 (offset 4 -> 6)
    ];

    let mut log = ScalingLog::new(PaperSetup::INITIAL_DISKS).unwrap();
    let mut table = Table::new([
        "op",
        "disks",
        "primaries moved (z_j)",
        "mirrors moved, f=N/2",
        "mirrors moved, f=1",
    ]);
    let mut csv = Csv::new([
        "op",
        "disks",
        "primary_frac",
        "mirror_half_frac",
        "mirror_fixed_frac",
    ]);

    // Track previous physical placements. Removals renumber logical
    // indices; for movement accounting we track physical identity the
    // same way the harness does, via a running logical->physical map.
    let mut physical = scaddar_baselines::PhysicalMap::new(PaperSetup::INITIAL_DISKS);
    let place_all = |log: &ScalingLog, physical: &scaddar_baselines::PhysicalMap, x0s: &[u64]| {
        let n = log.current_disks();
        let offset_half = (n / 2).max(1);
        x0s.iter()
            .map(|&x| {
                let p = locate(x, log);
                (
                    physical.physical(p.0),
                    physical.physical(mirror_with_offset(p, n, offset_half).0),
                    physical.physical(mirror_with_offset(p, n, 1).0),
                )
            })
            .collect::<Vec<_>>()
    };

    let mut prev = place_all(&log, &physical, &x0s);
    for (i, op) in schedule.iter().enumerate() {
        let (z, n_before, n_after) = {
            let record = log.push(op).unwrap();
            (
                record.optimal_move_fraction(),
                record.disks_before(),
                record.disks_after(),
            )
        };
        physical.apply(op).unwrap();
        let now = place_all(&log, &physical, &x0s);
        let mut moved = [0u64; 3];
        for (a, b) in prev.iter().zip(&now) {
            if a.0 != b.0 {
                moved[0] += 1;
            }
            if a.1 != b.1 {
                moved[1] += 1;
            }
            if a.2 != b.2 {
                moved[2] += 1;
            }
        }
        table.row([
            format!("{} ({op:?})", i + 1),
            log.current_disks().to_string(),
            format!("{} (z={})", fmt_pct(moved[0] as f64 / total), fmt_pct(z)),
            fmt_pct(moved[1] as f64 / total),
            fmt_pct(moved[2] as f64 / total),
        ]);
        csv.row([
            (i + 1).to_string(),
            log.current_disks().to_string(),
            format!("{:.6}", moved[0] as f64 / total),
            format!("{:.6}", moved[1] as f64 / total),
            format!("{:.6}", moved[2] as f64 / total),
        ]);
        // The headline claim of this ablation: when the offset changes,
        // nearly all N/2-mirrors move while primaries move only z_j.
        if (n_before / 2).max(1) != (n_after / 2).max(1) {
            assert!(
                moved[1] as f64 / total > 0.5,
                "offset changed but mirrors did not mass-migrate?"
            );
        }
        // Fixed offset mirrors track primary movement closely.
        assert!(
            (moved[2] as f64 - moved[0] as f64).abs() / total < 0.35,
            "fixed-offset mirrors should move roughly like primaries"
        );
        prev = now;
    }
    println!("{table}");
    println!("reading: with f(N)=N/2, the mirror address (d + N/2) mod N depends on N");
    println!("twice over — via the offset and via the wrap — so even a +1-disk operation");
    println!("relocates ~half of all *mirror* copies, and an offset change relocates");
    println!("nearly all of them: the replication layer silently forfeits RO1.");
    println!("A fixed offset keeps mirror movement at ~z_j but pairs fixed neighbours.");
    println!("Production systems solve this with placement-independent replica choices");
    println!("(cf. CRUSH); for SCADDAR it is a concrete, quantified future-work gap.");
    let path = write_csv("e17_mirror_movement.csv", &csv);
    println!("csv: {}", path.display());
}
