//! E11 — SCADDAR against the post-2001 state of the art: consistent
//! hashing (Karger et al. 1997, popularized later) and jump consistent
//! hashing (Lamping & Veach 2014), across a long mixed schedule.
//!
//! Three axes per strategy, accumulated over the schedule:
//! * total movement overhead (sum moved / sum optimal);
//! * worst load CoV along the way;
//! * metadata footprint.
//!
//! Expected shape: jump hash balances best and grows optimally but pays
//! ~2x on arbitrary-disk removals (swap-with-tail); consistent hashing
//! is near-optimal on movement but visibly lumpier (finite vnodes);
//! SCADDAR is optimal on both *until* its random range thins — the
//! trade the paper's §4.3 quantifies.

use scaddar_analysis::{fmt_f64, Csv, Table};
use scaddar_baselines::{
    run_schedule, BlockKey, ConsistentHashStrategy, JumpHashStrategy, PlacementStrategy,
    ScaddarStrategy,
};
use scaddar_core::ScalingOp;
use scaddar_experiments::{banner, write_csv, PaperSetup};

fn mixed_schedule() -> Vec<ScalingOp> {
    vec![
        ScalingOp::Add { count: 2 }, // 8 -> 10
        ScalingOp::Add { count: 2 }, // 10 -> 12
        ScalingOp::remove_one(3),    // 12 -> 11
        ScalingOp::Add { count: 3 }, // 11 -> 14
        ScalingOp::remove_one(0),    // 14 -> 13
        ScalingOp::remove_one(7),    // 13 -> 12
        ScalingOp::Add { count: 4 }, // 12 -> 16
        ScalingOp::remove_one(10),   // 16 -> 15
    ]
}

struct Row {
    name: &'static str,
    overhead: f64,
    worst_cov: f64,
    end_cov: f64,
}

fn evaluate(strategy: &mut dyn PlacementStrategy, keys: &[BlockKey]) -> Row {
    let stats = run_schedule(strategy, keys, &mixed_schedule()).expect("valid schedule");
    let moved: u64 = stats.iter().map(|s| s.moved).sum();
    let optimal: f64 = stats
        .iter()
        .map(|s| s.optimal_fraction * s.total_blocks as f64)
        .sum();
    Row {
        name: stats[0].strategy,
        overhead: moved as f64 / optimal,
        worst_cov: stats.iter().map(|s| s.load_cov()).fold(0.0, f64::max),
        end_cov: stats.last().unwrap().load_cov(),
    }
}

fn main() {
    banner(
        "E11",
        "SCADDAR vs consistent hashing vs jump hash (ablation)",
        "related-work positioning; §4.3's range-thinning trade-off",
    );
    let keys = PaperSetup::population(123);

    let mut rows = Vec::new();
    rows.push(evaluate(
        &mut ScaddarStrategy::new(PaperSetup::INITIAL_DISKS).unwrap(),
        &keys,
    ));
    rows.push(evaluate(
        &mut JumpHashStrategy::new(PaperSetup::INITIAL_DISKS).unwrap(),
        &keys,
    ));
    for vnodes in [64u32, 512] {
        let mut ch = ConsistentHashStrategy::new(PaperSetup::INITIAL_DISKS, vnodes).unwrap();
        let mut row = evaluate(&mut ch, &keys);
        row.name = if vnodes == 64 {
            "consistent-hash (64 vnodes)"
        } else {
            "consistent-hash (512 vnodes)"
        };
        rows.push(row);
    }

    let mut table = Table::new([
        "strategy",
        "movement overhead (x optimal)",
        "worst CoV",
        "final CoV",
    ]);
    let mut csv = Csv::new(["strategy", "overhead", "worst_cov", "end_cov"]);
    for r in &rows {
        table.row([
            r.name.to_string(),
            fmt_f64(r.overhead, 3),
            fmt_f64(r.worst_cov, 4),
            fmt_f64(r.end_cov, 4),
        ]);
        csv.row([
            r.name.to_string(),
            fmt_f64(r.overhead, 5),
            fmt_f64(r.worst_cov, 5),
            fmt_f64(r.end_cov, 5),
        ]);
    }
    println!("{table}");

    let scaddar = &rows[0];
    let jump = &rows[1];
    let ch64 = &rows[2];
    // The published relationships, asserted.
    assert!(
        (scaddar.overhead - 1.0).abs() < 0.05,
        "SCADDAR must be movement-optimal on mixed schedules"
    );
    assert!(
        jump.overhead > scaddar.overhead + 0.1,
        "jump hash pays the swap-with-tail penalty on removals"
    );
    assert!(
        ch64.worst_cov > scaddar.worst_cov,
        "finite-vnode consistent hashing is lumpier than SCADDAR"
    );
    println!("reading: SCADDAR is the only strategy that is movement-optimal for");
    println!("arbitrary-disk removals; jump hash pays ~2x there, consistent hashing");
    println!("trades balance for ring size. SCADDAR's own cost — range thinning —");
    println!("shows in the final CoV column and is bounded by §4.3 (see E7).");
    let path = write_csv("e11_baselines.csv", &csv);
    println!("csv: {}", path.display());
}
