//! Observability-federation smoke: boots a 3-shard loopback cluster,
//! drives a seeded **traced** locate workload, then pulls every
//! shard's registry through one [`FleetAggregator`] round and gates
//! on the federation invariants end to end:
//!
//! * **zero unreachable shards** — the aggregator must reach every
//!   live shard in its round;
//! * **federated == direct sums** — every serving request counter in
//!   the fleet registry equals the sum of direct per-shard scrapes
//!   (and the merged latency histogram preserves the total count),
//!   excluding the `scrape-stats` endpoint the scraping itself
//!   perturbs;
//! * **burn-rate alarm fires** — the fleet SLO runs with a planted
//!   100 ns latency objective no loopback request can beat, so the
//!   federated scrape deltas must trip the latency burn rule (WARN or
//!   worse) and capture the span flight recorder into the event log;
//! * **traces stitch** — the last lookup's trace must hold the client
//!   root plus at least one serving hop from a shard's recorder.
//!
//! Artifacts: the fleet-wide Prometheus exposition (`--prom-out`) and
//! the JSONL event log with the captured spans (`--traces-out`).
//!
//! ```text
//! cargo run --release -p scaddar-cluster --bin federation_smoke -- \
//!     [--seed N] [--objects N] [--requests N] [--prom-out PATH] [--traces-out PATH]
//! ```

use scaddar_cluster::{Cluster, ClusterConfig, FleetAggregator};
use scaddar_monitor::{Severity, SloRules};
use scaddar_net::{ClusterClient, NetClient};
use scaddar_obs::slo::SloConfig;
use scaddar_obs::{render_trace_dump, EventLog, RegistrySnapshot, Tracer};
use scaddar_prng::{Pcg64, SeededRng};

const BLOCKS_PER_OBJECT: u64 = 1_000;

/// Serving series only: the aggregator's own polling increments the
/// `scrape-stats` endpoint, so it is excluded from agreement checks.
fn serving(name: &str, prefix: &str) -> bool {
    name.starts_with(prefix) && !name.contains("scrape-stats")
}

fn serving_requests(snapshot: &RegistrySnapshot) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|c| serving(&c.name, "net_server_requests_total{"))
        .map(|c| c.value)
        .sum()
}

fn serving_histogram_count(snapshot: &RegistrySnapshot) -> u64 {
    snapshot
        .histograms
        .iter()
        .filter(|h| serving(&h.name, "net_server_request_ns{"))
        .map(|h| h.snapshot.count)
        .sum()
}

fn main() {
    let mut seed: u64 = std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x000F_ED5C_ADDA);
    let mut objects: u64 = 48;
    let mut requests: u64 = 400;
    let mut prom_path = "target/federation_smoke_fleet.prom".to_string();
    let mut traces_path = "target/federation_smoke_traces.jsonl".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--objects" => objects = value("--objects").parse().expect("numeric --objects"),
            "--requests" => requests = value("--requests").parse().expect("numeric --requests"),
            "--prom-out" => prom_path = value("--prom-out"),
            "--traces-out" => traces_path = value("--traces-out"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!("federation_smoke: seed={seed} objects={objects} requests={requests}");

    let mut cluster = Cluster::boot(ClusterConfig {
        shards: 3,
        blocks_per_object: BLOCKS_PER_OBJECT,
        catalog_seed: seed,
        ..ClusterConfig::default()
    })
    .expect("cluster boot");
    cluster.populate(objects).expect("populate");

    let mut client = ClusterClient::connect(&cluster.seeds()).expect("client connect");
    client.enable_tracing(Tracer::new(cluster.clock().clone(), 4096), seed);
    let mut rng = Pcg64::from_seed(seed ^ 0xFED0_0FED);
    let mut served: u64 = 0;
    let mut routing_errors: u64 = 0;
    for _ in 0..requests {
        let gid = rng.next_u64() % objects;
        let block = rng.next_u64() % BLOCKS_PER_OBJECT;
        match client.locate(gid, block) {
            Ok(answer) if Some(answer.shard) == cluster.map().route(gid) => served += 1,
            Ok(answer) => {
                eprintln!(
                    "federation_smoke: object {gid} served by shard {} off the map",
                    answer.shard
                );
                routing_errors += 1;
            }
            Err(e) => {
                eprintln!("federation_smoke: locate {gid}/{block} failed: {e}");
                routing_errors += 1;
            }
        }
    }
    println!("federation_smoke: served={served}");

    // One federation round, with the fleet SLO on a planted 100 ns
    // latency objective: no loopback request beats it, so the scrape
    // deltas must trip the latency burn rule.
    let log = EventLog::new(cluster.clock().clone());
    let mut aggregator = FleetAggregator::new(cluster.clock().clone());
    aggregator.enable_slo(
        SloConfig {
            latency_objective_ns: 100,
            ..SloConfig::default()
        },
        SloRules::default(),
        log.clone(),
    );
    let targets = cluster.scrape_targets();
    let fleet = aggregator.scrape(&targets);
    let unreachable = fleet.unreachable_shards();
    let fleet_snapshot = fleet.fleet_registry().snapshot();

    // Direct per-shard scrapes (after the round, on a quiesced
    // cluster): serving sums must agree with the federated registry.
    let mut direct_requests: u64 = 0;
    let mut direct_histogram: u64 = 0;
    for (shard, addr) in &targets {
        let (_, _, snap) = NetClient::connect(*addr)
            .scrape_stats()
            .unwrap_or_else(|e| panic!("direct scrape of shard {shard}: {e}"));
        direct_requests += serving_requests(&snap);
        direct_histogram += serving_histogram_count(&snap);
    }
    let fed_requests = serving_requests(&fleet_snapshot);
    let fed_histogram = serving_histogram_count(&fleet_snapshot);
    println!(
        "federation_smoke: federated requests={fed_requests} (direct {direct_requests}), \
         histogram count={fed_histogram} (direct {direct_histogram})"
    );

    // The planted objective must raise the latency burn alarm; a CRIT
    // transition also captures the flight recorder into the log.
    let events = aggregator.evaluate_slo(client.tracer());
    let mut burn_tripped = false;
    for e in &events {
        println!(
            "federation_smoke: slo event [{}] {} — {}",
            e.severity.label(),
            e.kind,
            e.detail
        );
        if e.kind == "latency-p999-burn" && e.severity >= Severity::Warn {
            burn_tripped = true;
        }
    }

    // Trace stitching: the last lookup renders as one tree with the
    // client root plus at least one serving hop.
    let tracer = client.tracer().expect("tracing enabled");
    let root = tracer.recent(1).pop().expect("at least one root span");
    let mut spans = tracer.spans_for_trace(root.trace_id);
    for id in cluster.shard_ids() {
        if let Some(t) = cluster.shard_tracer(id) {
            spans.extend(t.spans_for_trace(root.trace_id));
        }
    }
    let stitched = spans.len() >= 2;
    println!(
        "federation_smoke: trace {:016x} has {} span(s):\n{}",
        root.trace_id,
        spans.len(),
        render_trace_dump(&spans, root.trace_id)
    );

    for (path, contents) in [
        (&prom_path, fleet.render_prometheus()),
        (&traces_path, String::new()),
    ] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        if !contents.is_empty() {
            std::fs::write(path, &contents).expect("write artifact");
        }
    }
    log.write_to(std::path::Path::new(&traces_path))
        .expect("write traces");
    println!("federation_smoke: wrote {prom_path} and {traces_path}");

    cluster.shutdown();

    let agree = fed_requests == direct_requests && fed_histogram == direct_histogram;
    if routing_errors > 0 || !unreachable.is_empty() || !agree || !burn_tripped || !stitched {
        eprintln!(
            "federation_smoke: FAILED (routing_errors={routing_errors}, \
             unreachable={unreachable:?}, agree={agree}, burn_tripped={burn_tripped}, \
             stitched={stitched})"
        );
        std::process::exit(1);
    }
    println!("federation_smoke: OK");
}
