//! Cluster smoke run: boots a 3-shard loopback cluster, drives a
//! seeded locate workload through a map-chasing [`ClusterClient`],
//! kills and restarts a shard **mid-run**, then scales out to 4 shards
//! and audits the migration delta against the jump-hash expectation.
//!
//! Emits criterion-shim-compatible JSON (`cluster/*` rows) that
//! `bench_report` folds into `BENCH_net.json`, plus the structured
//! JSONL event log as a CI artifact. Exits nonzero on:
//!
//! * any **routing error** (a lookup the client could not land after
//!   map-chasing retries, or one answered by a shard the authoritative
//!   map does not name as owner);
//! * any **torn cluster epoch** (an object served by more than one
//!   shard when no handoff gate is open);
//! * a scale-out that migrates more than the expected jump-hash
//!   fraction `1/(n+1)` plus a 6σ binomial allowance.
//!
//! ```text
//! cargo run --release -p scaddar-cluster --bin cluster_smoke -- \
//!     [--seed N] [--objects N] [--requests N] [--out PATH] [--events-out PATH]
//! ```
//!
//! `--seed` defaults to `HARNESS_SEED` when set, so CI can pin and
//! upload the seed alongside the artifacts.

use scaddar_cluster::{Cluster, ClusterConfig, ProbeResult};
use scaddar_net::ClusterClient;
use scaddar_obs::VirtualClock;
use scaddar_prng::{Pcg64, SeededRng};
use std::fmt::Write as _;
use std::sync::Arc;

const BLOCKS_PER_OBJECT: u64 = 1_000;

fn push_result(out: &mut String, group: &str, bench: &str, value: f64) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    write!(
        out,
        "  {{\"group\": \"{group}\", \"bench\": \"{bench}\", \"ns_per_iter\": {value:.6}, \"iterations\": 1}}"
    )
    .expect("write to string");
}

fn main() {
    let mut seed: u64 = std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5CADDA);
    let mut objects: u64 = 96;
    let mut requests: u64 = 600;
    let mut out_path = "target/criterion-json/cluster.json".to_string();
    let mut events_path = "target/cluster_smoke_events.jsonl".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--objects" => objects = value("--objects").parse().expect("numeric --objects"),
            "--requests" => requests = value("--requests").parse().expect("numeric --requests"),
            "--out" => out_path = value("--out"),
            "--events-out" => events_path = value("--events-out"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!("cluster_smoke: seed={seed} objects={objects} requests={requests}");

    let clock = Arc::new(VirtualClock::new());
    let mut cluster = Cluster::boot_with_clock(
        ClusterConfig {
            shards: 3,
            blocks_per_object: BLOCKS_PER_OBJECT,
            catalog_seed: seed,
            ..ClusterConfig::default()
        },
        clock.clone(),
    )
    .expect("cluster boot");
    cluster.populate(objects).expect("populate");

    let client = ClusterClient::connect(&cluster.seeds()).expect("client connect");
    let mut rng = Pcg64::from_seed(seed ^ 0xC1_05_7E_12);
    let mut routing_errors: u64 = 0;
    let mut served: u64 = 0;

    // Seeded closed-loop load with a kill/restart injected mid-run:
    // every answer is checked against the authoritative map.
    let kill_at = requests / 3;
    let restart_at = 2 * requests / 3;
    let victim = 1u32;
    let mut snapshot: Option<Vec<u8>> = None;
    for i in 0..requests {
        clock.advance(1_000);
        if i == kill_at {
            snapshot = Some(cluster.kill(victim).expect("kill"));
            println!("cluster_smoke: killed shard {victim} at request {i}");
        }
        if i == restart_at {
            cluster
                .restart(victim, snapshot.as_deref().expect("snapshot taken"))
                .expect("restart");
            println!("cluster_smoke: restarted shard {victim} at request {i}");
        }
        let gid = rng.next_u64() % objects;
        let owner = cluster.map().route(gid).expect("routable");
        // While the victim is down its objects are unreachable — the
        // client correctly erroring there is the fault model working,
        // not a routing error; skip those lookups.
        if cluster.addr(owner).is_none() {
            continue;
        }
        let block = rng.next_u64() % BLOCKS_PER_OBJECT;
        match client.locate(gid, block) {
            Ok(answer) if answer.shard == owner => served += 1,
            Ok(answer) => {
                eprintln!(
                    "cluster_smoke: object {gid} served by shard {} but owned by {owner}",
                    answer.shard
                );
                routing_errors += 1;
            }
            Err(e) => {
                eprintln!("cluster_smoke: locate {gid}/{block} failed: {e}");
                routing_errors += 1;
            }
        }
    }

    // Scale out to 4 shards and audit the delta.
    let before = cluster.map().clone();
    let expected = before.expected_move_fraction(&before.add_shard(u32::MAX, String::new()));
    let (new_shard, record) = cluster.add_shard().expect("add shard");
    let fraction = record.moved.len() as f64 / record.population.max(1) as f64;
    let sigma = (expected * (1.0 - expected) / record.population.max(1) as f64).sqrt();
    let bound = expected + 6.0 * sigma;
    println!(
        "cluster_smoke: shard {new_shard} added — moved {}/{} ({fraction:.4}), expected {expected:.4}, 6σ bound {bound:.4}",
        record.moved.len(),
        record.population
    );
    let delta_ok = fraction <= bound;

    // Post-scale load: everything must route to the 4-shard map.
    for _ in 0..requests / 4 {
        clock.advance(1_000);
        let gid = rng.next_u64() % objects;
        let block = rng.next_u64() % BLOCKS_PER_OBJECT;
        match client.locate(gid, block) {
            Ok(answer) if Some(answer.shard) == cluster.map().route(gid) => served += 1,
            _ => routing_errors += 1,
        }
    }

    // Torn-epoch audit: probe every object on every shard directly; at
    // most one shard may serve it.
    let mut torn_epochs: u64 = 0;
    for gid in cluster.object_ids() {
        let serving: Vec<u32> = cluster
            .probe_object(gid, 0)
            .into_iter()
            .filter(|(_, r)| matches!(r, ProbeResult::Served(..)))
            .map(|(id, _)| id)
            .collect();
        if serving.len() > 1 {
            eprintln!("cluster_smoke: object {gid} served by shards {serving:?}");
            torn_epochs += 1;
        }
    }
    if let Err(e) = cluster.residency_consistent() {
        eprintln!("cluster_smoke: residency audit failed: {e}");
        torn_epochs += 1;
    }

    let (hits, bounces, stale, refreshes, client_errors) = client.stats_snapshot();
    println!(
        "cluster_smoke: served={served} hits={hits} bounces={bounces} stale={stale} refreshes={refreshes}"
    );

    let mut results = String::new();
    push_result(
        &mut results,
        "cluster",
        "routing_errors",
        routing_errors as f64,
    );
    push_result(&mut results, "cluster", "torn_epochs", torn_epochs as f64);
    push_result(&mut results, "cluster", "migrated_fraction", fraction);
    push_result(&mut results, "cluster", "expected_fraction", expected);
    push_result(&mut results, "cluster", "bound_6sigma", bound);
    push_result(
        &mut results,
        "cluster",
        "moved_objects",
        record.moved.len() as f64,
    );
    push_result(
        &mut results,
        "cluster",
        "population",
        record.population as f64,
    );
    push_result(&mut results, "cluster", "served", served as f64);
    push_result(
        &mut results,
        "cluster",
        "wrong_shard_bounces",
        bounces as f64,
    );
    push_result(&mut results, "cluster", "stale_map_hits", stale as f64);
    push_result(&mut results, "cluster", "map_refreshes", refreshes as f64);
    push_result(
        &mut results,
        "cluster",
        "client_errors",
        client_errors as f64,
    );
    push_result(
        &mut results,
        "cluster",
        "map_version",
        cluster.map().version as f64,
    );
    let json = format!("{{\"bench\": \"cluster\", \"results\": [\n{results}\n]}}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("cluster_smoke: wrote {out_path}");

    if let Some(dir) = std::path::Path::new(&events_path).parent() {
        std::fs::create_dir_all(dir).expect("create events directory");
    }
    cluster
        .events()
        .write_to(std::path::Path::new(&events_path))
        .expect("write events");
    println!("cluster_smoke: wrote {events_path}");

    cluster.shutdown();

    if routing_errors > 0 || torn_epochs > 0 || !delta_ok {
        eprintln!(
            "cluster_smoke: FAILED (routing_errors={routing_errors}, torn_epochs={torn_epochs}, delta_ok={delta_ok})"
        );
        std::process::exit(1);
    }
    println!("cluster_smoke: OK");
}
