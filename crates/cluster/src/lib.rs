//! # scaddar-cluster — N scaddard shards behind one ClusterMap
//!
//! A single `scaddard` process is the scaling ceiling: one engine, one
//! REMAP chain, one box. This crate turns capacity into a topology
//! question by partitioning the object catalog across N shards — each
//! with its **own** engine, scaling log, and health monitor — routed by
//! jump consistent hash over a versioned [`ClusterMap`]
//! (`scaddar_net::cluster`). The [`Cluster`] orchestrator here is the
//! control plane:
//!
//! * **Boot**: N in-process [`Scaddard`] shards on loopback, each bound
//!   via `bind_sharded` with a [`ShardRuntime`] routing gate.
//! * **Ingest**: objects get global ids; each lands on the shard the
//!   map names, with the global→local id binding registered in the
//!   shard's runtime.
//! * **Scale out/in**: [`Cluster::add_shard`] / [`Cluster::remove_shard`]
//!   migrate exactly the jump-hash delta — copy-in gated by
//!   `pending_in`, old owner serving through `handoff_out`, then a
//!   source-first flip per object, rate-limited in batches with
//!   `cmsim`'s online executor ticking between batches. Both owners are
//!   alive throughout; no object is ever served from two cluster
//!   epochs at once.
//! * **Faults**: [`Cluster::kill`] (quiesce, snapshot, drop the
//!   daemon), [`Cluster::restart`] (restore from snapshot, rebind on a
//!   fresh port, publish a re-addressed map), and
//!   [`Cluster::partition`] (the shard stops receiving map installs —
//!   its data plane keeps serving by its stale map, which is exactly
//!   the stale-client retry-storm scenario).
//!
//! Every step appends to an [`EventLog`] stamped by the injected
//! [`Clock`], so a harness run under a virtual clock produces
//! byte-identical JSONL per seed. Per-shard facts are mirrored into a
//! cluster [`Registry`] as inline-labeled series
//! (`cluster_shard_objects{shard="2"}`), read back with
//! `counters_with_prefix`/`gauges_with_prefix`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federate;

pub use federate::{FleetAggregator, FleetSnapshot, ShardCompaction, ShardScrape};

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_monitor::Severity;
use scaddar_net::{ClusterMap, Frame, NetClient, NetServerConfig, Scaddard, ShardRuntime};
use scaddar_obs::{Clock, EventLog, Gauge, MonotonicClock, Registry, Tracer};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Tuning for [`Cluster::boot`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Initial shard count.
    pub shards: u32,
    /// Disks per shard engine (`N_0` for each shard's own REMAP chain).
    pub disks_per_shard: u32,
    /// Blocks per ingested object.
    pub blocks_per_object: u64,
    /// Base catalog seed; shard `i` uses `seed + i` so placements
    /// differ per shard while staying deterministic.
    pub catalog_seed: u64,
    /// Objects flipped per migration batch; the executor ticks every
    /// shard between batches, which is what rate-limits a scale-out to
    /// the paper's online discipline instead of a stop-the-world copy.
    pub migration_batch: usize,
    /// Net tuning for every shard daemon.
    pub net: NetServerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 3,
            disks_per_shard: 4,
            blocks_per_object: 2_000,
            catalog_seed: 42,
            migration_batch: 8,
            net: NetServerConfig::default(),
        }
    }
}

/// What one shard answered when probed directly (bypassing routing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeResult {
    /// The shard served the lookup: `(epoch, disks, disk)`.
    Served(u64, u32, u64),
    /// The shard redirected to `owner` at `map_version`.
    WrongShard {
        /// Piggybacked map version.
        map_version: u64,
        /// The shard it named as owner.
        owner: u32,
    },
    /// The shard declared itself out of the serving set.
    Stale,
    /// A typed server error (e.g. unknown object on the owner).
    Error(String),
    /// The shard did not answer (killed, draining, or unreachable).
    Unreachable,
}

/// One completed topology change and exactly what it moved — the
/// record the `cluster-migration-delta` invariant audits.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// Map before the change.
    pub from: ClusterMap,
    /// Map after the change.
    pub to: ClusterMap,
    /// `(object, source shard, target shard)` for every migrated
    /// object, in migration order.
    pub moved: Vec<(u64, u32, u32)>,
    /// Global objects resident when the change began.
    pub population: u64,
}

struct Shard {
    id: u32,
    daemon: Option<Scaddard>,
    server: Arc<SharedServer>,
    runtime: Arc<ShardRuntime>,
    addr: SocketAddr,
    registry: Registry,
    tracer: Tracer,
    partitioned: bool,
    objects_gauge: Gauge,
}

/// The in-process cluster orchestrator: N loopback shards, the
/// authoritative map, and the migration/fault machinery.
pub struct Cluster {
    config: ClusterConfig,
    map: ClusterMap,
    shards: BTreeMap<u32, Shard>,
    /// Retired shards kept bound so stale clients get `StaleMap`.
    retired: Vec<Shard>,
    /// Global object id → block count.
    objects: BTreeMap<u64, u64>,
    next_shard_id: u32,
    next_object_id: u64,
    clock: Arc<dyn Clock>,
    registry: Registry,
    events: EventLog,
    migrations: Vec<MigrationRecord>,
    map_version_gauge: Gauge,
}

impl Cluster {
    /// Boots `config.shards` shards on loopback and publishes the
    /// version-1 map to all of them.
    pub fn boot(config: ClusterConfig) -> Result<Cluster, String> {
        Cluster::boot_with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// [`boot`](Self::boot) with an injected clock — a virtual clock
    /// makes the event log byte-identical per seed.
    pub fn boot_with_clock(
        config: ClusterConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Cluster, String> {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let registry = Registry::new();
        let events = EventLog::new(clock.clone());
        let mut cluster = Cluster {
            map: ClusterMap {
                version: 0,
                shards: Vec::new(),
            },
            shards: BTreeMap::new(),
            retired: Vec::new(),
            objects: BTreeMap::new(),
            next_shard_id: 0,
            next_object_id: 0,
            clock,
            map_version_gauge: registry.gauge(
                "cluster_map_version",
                "Current cluster map version (the cluster epoch)",
            ),
            registry,
            events,
            migrations: Vec::new(),
            config,
        };
        // Boot every initial shard with a placeholder map, then publish
        // the real version-1 map once all addresses are known.
        let mut entries = Vec::new();
        for _ in 0..cluster.config.shards {
            let id = cluster.next_shard_id;
            cluster.next_shard_id += 1;
            let shard = cluster.boot_shard(
                id,
                ClusterMap {
                    version: 0,
                    shards: Vec::new(),
                },
            )?;
            entries.push((id, shard.addr.to_string()));
            cluster.shards.insert(id, shard);
        }
        cluster.map = ClusterMap::new(entries);
        cluster.publish_map();
        cluster.events.emit(
            "cluster-boot",
            [
                ("shards", cluster.config.shards.to_string()),
                ("map_version", cluster.map.version.to_string()),
            ],
        );
        Ok(cluster)
    }

    fn boot_shard(&self, id: u32, map: ClusterMap) -> Result<Shard, String> {
        let server = CmServer::new(
            ServerConfig::new(self.config.disks_per_shard)
                .with_catalog_seed(self.config.catalog_seed + u64::from(id)),
        )
        .map_err(|e| format!("shard {id}: {e}"))?;
        self.bind_shard(id, Arc::new(SharedServer::new(server)), map)
    }

    fn bind_shard(
        &self,
        id: u32,
        server: Arc<SharedServer>,
        map: ClusterMap,
    ) -> Result<Shard, String> {
        let runtime = Arc::new(ShardRuntime::new(id, map));
        self.bind_shard_with_runtime(id, server, runtime)
    }

    fn bind_shard_with_runtime(
        &self,
        id: u32,
        server: Arc<SharedServer>,
        runtime: Arc<ShardRuntime>,
    ) -> Result<Shard, String> {
        let registry = Registry::new();
        // 256 spans: enough that one harness load step (≤ 24 lookups ×
        // the 8-hop budget) cannot evict its own trace before the
        // trace-complete check reads it back.
        let tracer = Tracer::new(self.clock.clone(), 256);
        let daemon = Scaddard::bind_sharded(
            "127.0.0.1:0",
            Arc::clone(&server),
            self.config.net.clone(),
            &registry,
            tracer.clone(),
            Arc::clone(&runtime),
        )
        .map_err(|e| format!("shard {id} bind: {e}"))?;
        let addr = daemon.local_addr();
        let objects_gauge = self.registry.gauge(
            &format!("cluster_shard_objects{{shard=\"{id}\"}}"),
            "Objects resident per shard",
        );
        Ok(Shard {
            id,
            daemon: Some(daemon),
            server,
            runtime,
            addr,
            registry,
            tracer,
            partitioned: false,
            objects_gauge,
        })
    }

    /// Installs the orchestrator's current map on every live,
    /// non-partitioned shard (the propagation step a partition blocks).
    fn publish_map(&mut self) {
        self.map_version_gauge.set(self.map.version as i64);
        for shard in self.shards.values() {
            if shard.partitioned || shard.daemon.is_none() {
                continue;
            }
            shard.runtime.install_map(self.map.clone());
        }
    }

    fn sync_occupancy_gauges(&self) {
        for shard in self.shards.values() {
            let (objects, _, _) = shard.runtime.occupancy();
            shard.objects_gauge.set(objects as i64);
        }
    }

    // ---- read-side accessors ----

    /// The orchestrator's authoritative map.
    pub fn map(&self) -> &ClusterMap {
        &self.map
    }

    /// The cluster-level registry (per-shard labeled series).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Every completed migration, oldest first.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Live (bound, non-retired) shard ids.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.keys().copied().collect()
    }

    /// The bound address of `shard`, if it is up.
    pub fn addr(&self, shard: u32) -> Option<SocketAddr> {
        let s = self.shards.get(&shard)?;
        s.daemon.is_some().then_some(s.addr)
    }

    /// Seed addresses for a [`scaddar_net::ClusterClient`].
    pub fn seeds(&self) -> Vec<SocketAddr> {
        self.shards
            .values()
            .filter(|s| s.daemon.is_some() && !s.partitioned)
            .map(|s| s.addr)
            .collect()
    }

    /// Global ids of every resident object, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// Block count of `object`, if resident.
    pub fn object_blocks(&self, object: u64) -> Option<u64> {
        self.objects.get(&object).copied()
    }

    /// Worst health verdict across every live shard's monitor.
    pub fn health_verdict(&self) -> Severity {
        Severity::worst(
            self.shards
                .values()
                .filter_map(|s| s.daemon.as_ref().map(|d| d.health_verdict())),
        )
    }

    /// One human-readable status line per shard.
    pub fn status(&self) -> String {
        let mut out = format!(
            "cluster: map v{} | {} shards | {} objects\n",
            self.map.version,
            self.shards.len(),
            self.objects.len()
        );
        for shard in self.shards.values() {
            let (objects, handoff, pending) = shard.runtime.occupancy();
            let state = if shard.daemon.is_none() {
                "down"
            } else if shard.partitioned {
                "partitioned"
            } else {
                "up"
            };
            out.push_str(&format!(
                "  shard {} @ {} [{state}] map v{} objects={objects} handoff={handoff} pending={pending}\n",
                shard.id,
                shard.addr,
                shard.runtime.map_version(),
            ));
        }
        out
    }

    // ---- data plane ----

    /// Ingests one object of `blocks` blocks on the shard the map
    /// names; returns its global id.
    pub fn add_object(&mut self, blocks: u64) -> Result<u64, String> {
        let gid = self.next_object_id;
        let owner = self
            .map
            .route(gid)
            .ok_or_else(|| "empty cluster map".to_string())?;
        let shard = self
            .shards
            .get(&owner)
            .ok_or_else(|| format!("owner shard {owner} missing"))?;
        let local = shard
            .server
            .add_object(blocks)
            .map_err(|e| format!("shard {owner}: {e}"))?;
        shard.runtime.register_object(gid, local.0);
        self.next_object_id += 1;
        self.objects.insert(gid, blocks);
        self.sync_occupancy_gauges();
        Ok(gid)
    }

    /// Ingests `count` objects of the configured size.
    pub fn populate(&mut self, count: u64) -> Result<(), String> {
        for _ in 0..count {
            self.add_object(self.config.blocks_per_object)?;
        }
        self.events.emit(
            "populate",
            [
                ("objects", count.to_string()),
                ("total", self.objects.len().to_string()),
            ],
        );
        Ok(())
    }

    /// Advances `rounds` service rounds on every live shard (drains
    /// redistribution backlogs).
    pub fn tick_all(&self, rounds: u32) {
        for shard in self.shards.values() {
            if shard.daemon.is_some() {
                for _ in 0..rounds {
                    shard.server.tick();
                }
            }
        }
    }

    /// Probes every live shard directly for `(object, block)` —
    /// bypassing client routing — and reports what each answered. The
    /// `cluster-epoch-single` invariant asserts at most one `Served`.
    pub fn probe_object(&self, object: u64, block: u64) -> Vec<(u32, ProbeResult)> {
        let mut results = Vec::new();
        for shard in self.shards.values().chain(self.retired.iter()) {
            if shard.daemon.is_none() {
                results.push((shard.id, ProbeResult::Unreachable));
                continue;
            }
            let client = NetClient::connect(shard.addr);
            let result = match client.request(&Frame::Locate { object, block }) {
                Ok(Frame::Located { epoch, disks, disk }) => {
                    ProbeResult::Served(epoch, disks, disk)
                }
                Ok(Frame::WrongShard { map_version, owner }) => {
                    ProbeResult::WrongShard { map_version, owner }
                }
                Ok(Frame::StaleMap { .. }) => ProbeResult::Stale,
                Ok(other) => ProbeResult::Error(format!("unexpected {}", other.endpoint())),
                Err(scaddar_net::ClientError::Remote { code, message }) => {
                    let _ = code;
                    ProbeResult::Error(message)
                }
                Err(_) => ProbeResult::Unreachable,
            };
            results.push((shard.id, result));
        }
        results
    }

    // ---- topology changes ----

    /// The jump-hash delta between two maps over the current catalog:
    /// `(object, old owner, new owner)` per re-routed object.
    fn route_delta(&self, from: &ClusterMap, to: &ClusterMap) -> Vec<(u64, u32, u32)> {
        self.objects
            .keys()
            .filter_map(|&gid| {
                let old = from.route(gid)?;
                let new = to.route(gid)?;
                (old != new).then_some((gid, old, new))
            })
            .collect()
    }

    /// Executes a map transition: copies the delta in (gated), marks
    /// handoffs, publishes the new map, then flips object-by-object in
    /// rate-limited batches, ticking every shard between batches.
    fn migrate_to(&mut self, next: ClusterMap) -> Result<MigrationRecord, String> {
        let from = self.map.clone();
        let delta = self.route_delta(&from, &next);
        let population = self.objects.len() as u64;

        // Phase 1: copy every moving object into its new owner, gated
        // by `pending_in` (the target refuses to serve it), and mark
        // the source still-authoritative via `handoff_out`. All before
        // any shard sees the new map.
        for &(gid, source, target) in &delta {
            let blocks = self.objects[&gid];
            let t = self
                .shards
                .get(&target)
                .ok_or_else(|| format!("target shard {target} missing"))?;
            let local = t
                .server
                .add_object(blocks)
                .map_err(|e| format!("copy {gid} -> shard {target}: {e}"))?;
            t.runtime.register_object(gid, local.0);
            t.runtime.begin_pending_in([(gid, source)]);
            if let Some(s) = self.shards.get(&source) {
                s.runtime.begin_handoff_out([gid]);
            }
        }

        // Phase 2: publish. From here clients route by the new map;
        // moving objects bounce `WrongShard{owner: source}` off the
        // target until their flip below.
        self.map = next.clone();
        self.publish_map();
        self.events.emit(
            "map-published",
            [
                ("map_version", next.version.to_string()),
                ("delta", delta.len().to_string()),
            ],
        );

        // Phase 3: flip in batches, source strictly first per object,
        // with the online executor draining between batches — the
        // rate limit that keeps migration from starving service.
        let mut moved = Vec::with_capacity(delta.len());
        for batch in delta.chunks(self.config.migration_batch.max(1)) {
            for &(gid, source, target) in batch {
                if let Some(s) = self.shards.get(&source) {
                    if let Some(local) = s.runtime.complete_handoff_out(gid, target) {
                        s.server
                            .remove_object(scaddar_core::ObjectId(local))
                            .map_err(|e| format!("evict {gid} from shard {source}: {e}"))?;
                    }
                }
                if let Some(t) = self.shards.get(&target) {
                    t.runtime.activate_pending(gid);
                }
                moved.push((gid, source, target));
            }
            self.tick_all(1);
            self.events.emit(
                "migration-batch",
                [
                    ("flipped", batch.len().to_string()),
                    ("total", moved.len().to_string()),
                ],
            );
        }
        let record = MigrationRecord {
            from,
            to: next,
            moved,
            population,
        };
        self.migrations.push(record.clone());
        self.sync_occupancy_gauges();
        Ok(record)
    }

    /// Scales out: boots a fresh shard (next id, last jump bucket) and
    /// migrates exactly the jump-hash delta onto it. Returns the new
    /// shard id and the migration record.
    pub fn add_shard(&mut self) -> Result<(u32, MigrationRecord), String> {
        let id = self.next_shard_id;
        self.next_shard_id += 1;
        let shard = self.boot_shard(id, self.map.clone())?;
        let next = self.map.add_shard(id, shard.addr.to_string());
        self.shards.insert(id, shard);
        self.events.emit(
            "shard-add",
            [
                ("shard", id.to_string()),
                ("map_version", next.version.to_string()),
            ],
        );
        let record = self.migrate_to(next)?;
        Ok((id, record))
    }

    /// Scales in: drains `shard` (migrating its residents — and any
    /// bucket-shifted objects — to their new owners), retires it so
    /// stale clients get `StaleMap`, and keeps it bound until
    /// [`shutdown`](Self::shutdown).
    pub fn remove_shard(&mut self, shard: u32) -> Result<MigrationRecord, String> {
        if !self.shards.contains_key(&shard) {
            return Err(format!("shard {shard} not in cluster"));
        }
        if self.shards.len() <= 1 {
            return Err("cannot remove the last shard".to_string());
        }
        let next = self.map.remove_shard(shard);
        self.events.emit(
            "shard-remove",
            [
                ("shard", shard.to_string()),
                ("map_version", next.version.to_string()),
            ],
        );
        let record = self.migrate_to(next)?;
        let drained = self.shards.remove(&shard).expect("checked above");
        drained.runtime.install_map(self.map.clone());
        drained.runtime.retire();
        self.retired.push(drained);
        Ok(record)
    }

    // ---- faults ----

    /// Kills `shard`: quiesces its executor, snapshots placement
    /// metadata, and drops the daemon (connections die). Returns the
    /// snapshot [`restart`](Self::restart) rejoins from.
    pub fn kill(&mut self, shard: u32) -> Result<Vec<u8>, String> {
        let s = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| format!("shard {shard} not in cluster"))?;
        let daemon = s
            .daemon
            .take()
            .ok_or_else(|| format!("shard {shard} already down"))?;
        // Quiesce: a snapshot mid-redistribution would teleport
        // in-transit blocks on restore.
        while s.server.backlog() > 0 {
            s.server.tick();
        }
        let snapshot = s
            .server
            .with_read(|srv| srv.snapshot())
            .map_err(|e| format!("shard {shard} snapshot: {e}"))?;
        daemon.shutdown();
        self.events.emit(
            "shard-kill",
            [
                ("shard", shard.to_string()),
                ("snapshot_bytes", snapshot.len().to_string()),
            ],
        );
        Ok(snapshot)
    }

    /// Restarts a killed shard from its snapshot on a **fresh** port,
    /// publishes the re-addressed map (version bump), and leaves the
    /// shard serving exactly what it served before the kill.
    pub fn restart(&mut self, shard: u32, snapshot: &[u8]) -> Result<(), String> {
        let s = self
            .shards
            .get(&shard)
            .ok_or_else(|| format!("shard {shard} not in cluster"))?;
        if s.daemon.is_some() {
            return Err(format!("shard {shard} is already up"));
        }
        let server = CmServer::restore(
            ServerConfig::new(self.config.disks_per_shard)
                .with_catalog_seed(self.config.catalog_seed + u64::from(shard)),
            snapshot,
        )
        .map_err(|e| format!("shard {shard} restore: {e}"))?;
        let runtime = Arc::clone(&s.runtime);
        let fresh =
            self.bind_shard_with_runtime(shard, Arc::new(SharedServer::new(server)), runtime)?;
        let addr = fresh.addr;
        let partitioned = s.partitioned;
        let mut fresh = fresh;
        fresh.partitioned = partitioned;
        self.shards.insert(shard, fresh);
        self.map = self.map.readdress(shard, addr.to_string());
        self.publish_map();
        self.events.emit(
            "shard-restart",
            [
                ("shard", shard.to_string()),
                ("map_version", self.map.version.to_string()),
            ],
        );
        Ok(())
    }

    /// Partitions `shard` from the control plane: it keeps serving by
    /// whatever map it holds, but receives no further installs.
    pub fn partition(&mut self, shard: u32) -> Result<(), String> {
        let s = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| format!("shard {shard} not in cluster"))?;
        s.partitioned = true;
        self.events
            .emit("shard-partition", [("shard", shard.to_string())]);
        Ok(())
    }

    /// Heals a partition: the shard rejoins the control plane and
    /// immediately receives the current map.
    pub fn heal(&mut self, shard: u32) -> Result<(), String> {
        let s = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| format!("shard {shard} not in cluster"))?;
        s.partitioned = false;
        if s.daemon.is_some() {
            s.runtime.install_map(self.map.clone());
        }
        self.events
            .emit("shard-heal", [("shard", shard.to_string())]);
        Ok(())
    }

    /// Per-shard registries (for net-level metrics inspection).
    pub fn shard_registry(&self, shard: u32) -> Option<&Registry> {
        self.shards.get(&shard).map(|s| &s.registry)
    }

    /// Per-shard span flight recorders — each shard daemon's
    /// continuation spans land here. Concatenate
    /// [`Tracer::spans_for_trace`] across shards (plus the client's
    /// tracer) to stitch one distributed trace.
    pub fn shard_tracer(&self, shard: u32) -> Option<&Tracer> {
        self.shards.get(&shard).map(|s| &s.tracer)
    }

    /// The injected clock every shard (and the event log) reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// `(shard id, net address)` scrape targets for a
    /// [`federate::FleetAggregator`] — every live shard, partitioned
    /// ones included (a partition blocks map installs, not the data
    /// plane, and the aggregator must see the stale shard's stats).
    pub fn scrape_targets(&self) -> Vec<(u32, SocketAddr)> {
        self.shards
            .values()
            .filter(|s| s.daemon.is_some())
            .map(|s| (s.id, s.addr))
            .collect()
    }

    /// Consistency audit: every shard's runtime bindings resolve in its
    /// engine, and every global object is resident exactly once across
    /// live shards (handoff gates counted as single residency).
    pub fn residency_consistent(&self) -> Result<(), String> {
        let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
        for shard in self.shards.values() {
            for gid in shard.runtime.resident_objects() {
                let local = shard.runtime.local_id(gid).expect("just listed");
                shard
                    .server
                    .with_read(|s| {
                        s.locate_batch(scaddar_core::ObjectId(local), &[0])
                            .map(|_| ())
                    })
                    .map_err(|e| format!("shard {} object {gid}: {e}", shard.id))?;
                // An object may be resident on two shards only while
                // one side is gated (pending_in on the target or
                // handoff_out on the source).
                if let Some(prev) = seen.insert(gid, shard.id) {
                    let (_, handoff, pending) = shard.runtime.occupancy();
                    if handoff == 0 && pending == 0 {
                        return Err(format!(
                            "object {gid} resident on shards {prev} and {} with no handoff gate",
                            shard.id
                        ));
                    }
                }
            }
        }
        for &gid in self.objects.keys() {
            if !seen.contains_key(&gid) {
                return Err(format!("object {gid} resident nowhere"));
            }
        }
        Ok(())
    }

    /// Graceful teardown of every live and retired shard.
    pub fn shutdown(mut self) {
        for (_, mut shard) in std::mem::take(&mut self.shards) {
            if let Some(daemon) = shard.daemon.take() {
                daemon.shutdown();
            }
        }
        for mut shard in std::mem::take(&mut self.retired) {
            if let Some(daemon) = shard.daemon.take() {
                daemon.shutdown();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for shard in self.shards.values_mut().chain(self.retired.iter_mut()) {
            if let Some(daemon) = shard.daemon.take() {
                daemon.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_net::ClusterClient;

    fn small() -> ClusterConfig {
        ClusterConfig {
            shards: 3,
            blocks_per_object: 200,
            migration_batch: 4,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn boot_populate_and_route() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(30).unwrap();
        assert_eq!(cluster.map().version, 1);
        cluster.residency_consistent().unwrap();

        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            let answer = client.locate(gid, 0).unwrap();
            assert_eq!(Some(answer.shard), cluster.map().route(gid));
            assert!(answer.disk < u64::from(answer.disks));
        }
        let (_, bounces, stale, _, errors) = client.stats_snapshot();
        assert_eq!((bounces, stale, errors), (0, 0, 0));
        cluster.shutdown();
    }

    #[test]
    fn add_shard_migrates_only_the_jump_delta() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(60).unwrap();
        let before = cluster.map().clone();
        let (id, record) = cluster.add_shard().unwrap();
        assert_eq!(id, 3);
        assert_eq!(record.to.version, 2);
        // Every moved object landed on the new shard, and the moved set
        // is exactly the jump-hash delta.
        for &(gid, _, target) in &record.moved {
            assert_eq!(target, id);
            assert_ne!(before.route(gid), record.to.route(gid));
        }
        let predicted: Vec<u64> = cluster
            .object_ids()
            .into_iter()
            .filter(|&gid| before.route(gid) != record.to.route(gid))
            .collect();
        let mut moved: Vec<u64> = record.moved.iter().map(|m| m.0).collect();
        moved.sort_unstable();
        assert_eq!(moved, predicted);
        cluster.residency_consistent().unwrap();

        // And the cluster still serves everything, routed to the new
        // owners.
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            let answer = client.locate(gid, 1).unwrap();
            assert_eq!(Some(answer.shard), cluster.map().route(gid));
        }
        cluster.shutdown();
    }

    #[test]
    fn remove_shard_drains_and_retires() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(40).unwrap();
        let victim = 2;
        let before = cluster.map().clone();
        let record = cluster.remove_shard(victim).unwrap();
        assert!(record
            .moved
            .iter()
            .all(|&(gid, _, to)| before.route(gid) != record.to.route(gid) && to != victim));
        cluster.residency_consistent().unwrap();
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            let answer = client.locate(gid, 0).unwrap();
            assert_ne!(answer.shard, victim);
        }
        cluster.shutdown();
    }

    #[test]
    fn kill_restart_rejoins_with_identical_placement() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(24).unwrap();
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        let victim = 1;
        let victims: Vec<u64> = cluster
            .object_ids()
            .into_iter()
            .filter(|&gid| cluster.map().route(gid) == Some(victim))
            .collect();
        assert!(!victims.is_empty());
        let before: Vec<_> = victims
            .iter()
            .map(|&gid| client.locate(gid, 3).unwrap())
            .collect();

        let snapshot = cluster.kill(victim).unwrap();
        assert!(cluster.addr(victim).is_none());
        cluster.restart(victim, &snapshot).unwrap();
        assert_eq!(cluster.map().version, 2, "restart re-addresses the map");

        // Same placements after the rejoin: snapshot/restore preserved
        // the shard's REMAP chain, and the client chased the re-address
        // through a map refresh.
        for (gid, old) in victims.iter().zip(before) {
            let new = client.locate(*gid, 3).unwrap();
            assert_eq!(
                (new.epoch, new.disks, new.disk),
                (old.epoch, old.disks, old.disk)
            );
            assert_eq!(new.shard, victim);
        }
        let (_, _, _, refreshes, errors) = client.stats_snapshot();
        assert!(refreshes >= 1, "rejoin must be discovered via refresh");
        assert_eq!(errors, 0);
        cluster.shutdown();
    }

    #[test]
    fn epoch_single_holds_during_migration_probes() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(40).unwrap();
        let (_, record) = cluster.add_shard().unwrap();
        // Post-migration, every moved object is served by exactly one
        // shard; the old owner redirects.
        for &(gid, source, target) in record.moved.iter().take(10) {
            let probes = cluster.probe_object(gid, 0);
            let served: Vec<u32> = probes
                .iter()
                .filter(|(_, r)| matches!(r, ProbeResult::Served(..)))
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(served, vec![target], "object {gid} (was on {source})");
        }
        cluster.shutdown();
    }

    #[test]
    fn partitioned_shard_keeps_its_stale_map() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(30).unwrap();
        cluster.partition(0).unwrap();
        let v_before = cluster.shards[&0].runtime.map_version();
        let (_, _record) = cluster.add_shard().unwrap();
        assert_eq!(
            cluster.shards[&0].runtime.map_version(),
            v_before,
            "partitioned shard must not learn the new map"
        );
        assert!(cluster.map().version > v_before);
        cluster.heal(0).unwrap();
        assert_eq!(
            cluster.shards[&0].runtime.map_version(),
            cluster.map().version
        );
        cluster.shutdown();
    }
}
