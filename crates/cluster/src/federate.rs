//! Metrics federation: one aggregator pulling every shard's registry
//! over the wire, folded into a fleet-wide view.
//!
//! Each shard answers `ScrapeStats` with a [`RegistrySnapshot`] of its
//! whole registry plus its scaling epoch and health verdict — one RPC
//! carries everything a fleet dashboard needs. The
//! [`FleetAggregator`] here dials each target, keeps the **last
//! successful** scrape per shard (an unreachable shard stays visible,
//! marked stale, instead of vanishing from the fleet view), and folds
//! the snapshots into a fleet [`Registry`] with
//! [`Registry::absorb`]: counters and gauges sum, histograms merge
//! **bucket-wise** — so fleet percentiles are computed over the merged
//! distribution, never averaged across shards' percentiles.
//!
//! The aggregator is also the fleet's SLO feed: scrape-to-scrape
//! counter deltas (requests / errors / slower-than-objective, the last
//! via [`HistogramSnapshot::count_over`] on the merged buckets) go
//! into a [`SloTracker`] and through the hysteresis rule engine in
//! `scaddar-monitor`, so burn-rate alerts fire from federated data —
//! the same numbers the dashboard shows.
//!
//! [`HistogramSnapshot::count_over`]: scaddar_obs::HistogramSnapshot::count_over
//! [`SloTracker`]: scaddar_obs::slo::SloTracker

use scaddar_monitor::{HealthEvent, Severity, SloMonitor, SloRules};
use scaddar_net::{ClientConfig, NetClient};
use scaddar_obs::slo::{SloConfig, SloTracker};
use scaddar_obs::{Clock, EventLog, ProfileSnapshot, Registry, RegistrySnapshot, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;

/// The aggregator's record of one shard: the last snapshot it managed
/// to pull, and whether the most recent round reached the shard.
#[derive(Debug, Clone)]
pub struct ShardScrape {
    /// Shard id (from the cluster map).
    pub shard: u32,
    /// Address the scrape dialed.
    pub addr: SocketAddr,
    /// Whether the most recent scrape round reached the shard.
    pub reachable: bool,
    /// Shard scaling epoch at the last successful scrape.
    pub epoch: u64,
    /// Shard health verdict at the last successful scrape
    /// (0 ok / 1 warn / 2 crit).
    pub verdict: u8,
    /// The last successfully pulled registry snapshot (empty if the
    /// shard has never answered).
    pub snapshot: RegistrySnapshot,
    /// Clock reading of the last successful scrape; 0 = never.
    pub scraped_at_ns: u64,
}

impl ShardScrape {
    /// How old this shard's data is as of `now` — 0 for a shard that
    /// answered the latest round, `now` for one that never answered.
    pub fn staleness_ns(&self, now: u64) -> u64 {
        now.saturating_sub(self.scraped_at_ns)
    }

    /// Sum of per-endpoint request counters in the snapshot.
    pub fn requests_total(&self) -> u64 {
        self.snapshot
            .counters
            .iter()
            .filter(|c| c.name.starts_with("net_server_requests_total{"))
            .map(|c| c.value)
            .sum()
    }

    /// p99 over the bucket-wise merge of the shard's per-endpoint
    /// request latency histograms.
    pub fn request_p99(&self) -> Option<u64> {
        merged_request_p99(&self.snapshot)
    }

    /// The shard's rehash-compaction state per its last snapshot —
    /// `None` for shards that never exported the compaction gauges
    /// (engines without stats attached).
    pub fn compaction(&self) -> Option<ShardCompaction> {
        let gauge = |name: &str| self.snapshot.gauge_value(name).map(|v| v.max(0) as u64);
        Some(ShardCompaction {
            active: gauge("cmsim_compaction_active")? == 1,
            generation: gauge("cmsim_compaction_generation")?,
            target_generation: gauge("cmsim_compaction_target_generation")?,
            remaining_blocks: gauge("cmsim_compaction_remaining_blocks")?,
            total_blocks: gauge("cmsim_compaction_total_blocks")?,
        })
    }
}

/// One shard's rehash-compaction state, decoded from the
/// `cmsim_compaction_*` gauges in its scraped snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCompaction {
    /// True while a compaction migration is in flight on the shard.
    pub active: bool,
    /// The shard's serving placement generation.
    pub generation: u64,
    /// The generation an in-flight compaction is migrating toward.
    pub target_generation: u64,
    /// Blocks the in-flight compaction has not yet migrated.
    pub remaining_blocks: u64,
    /// Blocks the in-flight compaction must account for.
    pub total_blocks: u64,
}

impl ShardCompaction {
    /// Migrated fraction in `[0, 1]` (1.0 when idle or empty).
    pub fn fraction(&self) -> f64 {
        if !self.active || self.total_blocks == 0 {
            1.0
        } else {
            1.0 - self.remaining_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Renders like `gen 2 compacting ->3 41%` or `gen 2` when idle.
    pub fn render(&self) -> String {
        if self.active {
            format!(
                "gen {} compacting ->{} {:.0}%",
                self.generation,
                self.target_generation,
                self.fraction() * 100.0
            )
        } else {
            format!("gen {}", self.generation)
        }
    }
}

/// One federation round's fleet view: every known shard's last scrape,
/// stamped with the round's clock reading.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Clock reading when the round finished.
    pub at_ns: u64,
    /// Per-shard scrapes, ascending by shard id.
    pub shards: Vec<ShardScrape>,
}

impl FleetSnapshot {
    /// The scrape record for `shard`, if known.
    pub fn shard(&self, shard: u32) -> Option<&ShardScrape> {
        self.shards.iter().find(|s| s.shard == shard)
    }

    /// Shards the latest round failed to reach, ascending.
    pub fn unreachable_shards(&self) -> Vec<u32> {
        self.shards
            .iter()
            .filter(|s| !s.reachable)
            .map(|s| s.shard)
            .collect()
    }

    /// Worst health verdict across every shard's last answer
    /// (0 ok / 1 warn / 2 crit).
    pub fn worst_verdict(&self) -> u8 {
        self.shards.iter().map(|s| s.verdict).max().unwrap_or(0)
    }

    /// Folds every shard's last snapshot into one fleet registry:
    /// counters and gauges sum across shards, histograms merge
    /// bucket-wise. Per-shard `fleet_shard_*` gauges (up, epoch,
    /// verdict, staleness) ride along so one scrape of the aggregator
    /// exposes both the fleet totals and each member's liveness.
    pub fn fleet_registry(&self) -> Registry {
        let fleet = Registry::new();
        // Histograms merge bucket-wise, which is only sound when both
        // sides agree on the bucket boundaries. A shard built with a
        // different layout (its snapshot carries a mismatched — or no —
        // `obs_bucket_layout` fingerprint) still folds its counters and
        // gauges, but its histogram series are skipped and counted.
        let mut skipped = 0u64;
        for s in &self.shards {
            if s.scraped_at_ns > 0 {
                skipped += fleet.absorb_checked(&s.snapshot);
            }
            let shard = s.shard;
            fleet
                .gauge(
                    &format!("fleet_shard_up{{shard=\"{shard}\"}}"),
                    "1 when the latest federation round reached the shard",
                )
                .set(i64::from(s.reachable));
            fleet
                .gauge(
                    &format!("fleet_shard_epoch{{shard=\"{shard}\"}}"),
                    "Shard scaling epoch at its last successful scrape",
                )
                .set(s.epoch as i64);
            fleet
                .gauge(
                    &format!("fleet_shard_verdict{{shard=\"{shard}\"}}"),
                    "Shard health verdict at its last successful scrape",
                )
                .set(i64::from(s.verdict));
            fleet
                .gauge(
                    &format!("fleet_shard_staleness_ns{{shard=\"{shard}\"}}"),
                    "Age of the shard's data as of the latest round",
                )
                .set(s.staleness_ns(self.at_ns).min(i64::MAX as u64) as i64);
        }
        fleet
            .counter(
                "fleet_merge_skipped_total",
                "Histogram series skipped for mismatched bucket layouts",
            )
            .add(skipped);
        fleet
            .gauge("fleet_shards", "Shards known to the aggregator")
            .set(self.shards.len() as i64);
        fleet
            .gauge("fleet_shards_unreachable", "Shards the latest round missed")
            .set(self.unreachable_shards().len() as i64);
        fleet
    }

    /// The fleet view in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.fleet_registry().render_prometheus()
    }

    /// The fleet view as a JSON document.
    pub fn render_json(&self) -> String {
        self.fleet_registry().snapshot_json()
    }

    /// One status line per shard — the dashboard's table body.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let state = if s.reachable { "up" } else { "UNREACHABLE" };
            let verdict = match s.verdict {
                0 => "ok",
                1 => "WARN",
                _ => "CRIT",
            };
            let p99 = s.request_p99();
            let compaction = s
                .compaction()
                .map_or(String::new(), |c| format!(" {}", c.render()));
            let _ = writeln!(
                out,
                "shard {:>3} @ {} [{state}] epoch={} verdict={verdict} requests={} p99={}ns stale={}ms{compaction}",
                s.shard,
                s.addr,
                s.epoch,
                s.requests_total(),
                p99.map_or_else(|| "-".to_string(), |v| v.to_string()),
                s.staleness_ns(self.at_ns) / 1_000_000,
            );
        }
        out
    }
}

/// p99 over the bucket-wise merge of every per-endpoint request
/// latency histogram in `snapshot`.
fn merged_request_p99(snapshot: &RegistrySnapshot) -> Option<u64> {
    let mut merged: Option<scaddar_obs::HistogramSnapshot> = None;
    for h in snapshot
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("net_server_request_ns{"))
    {
        match merged.as_mut() {
            Some(m) => m.merge(&h.snapshot),
            None => merged = Some(h.snapshot.clone()),
        }
    }
    merged.and_then(|m| m.quantile(0.99))
}

/// `(requests, errors, slower-than-objective)` totals in one shard
/// snapshot — the monotone counters whose scrape-to-scrape deltas feed
/// the fleet SLO. The `scrape-stats` and `profile` endpoints are
/// excluded: the aggregator's own polling must not register as serving
/// traffic, or every idle federation round would feed (and eventually
/// dilute) the SLO with its own observer effect.
fn request_totals(snapshot: &RegistrySnapshot, objective_ns: u64) -> (u64, u64, u64) {
    let serving = |name: &str, prefix: &str| {
        name.starts_with(prefix)
            && !name.contains("scrape-stats")
            && !name.contains("endpoint=\"profile\"")
    };
    let total = snapshot
        .counters
        .iter()
        .filter(|c| serving(&c.name, "net_server_requests_total{"))
        .map(|c| c.value)
        .sum();
    let errors = snapshot
        .counter_value("net_server_errors_total")
        .unwrap_or(0);
    let slow = snapshot
        .histograms
        .iter()
        .filter(|h| serving(&h.name, "net_server_request_ns{"))
        .map(|h| h.snapshot.count_over(objective_ns))
        .sum();
    (total, errors, slow)
}

struct FleetSlo {
    monitor: SloMonitor,
    objective_ns: u64,
    /// Per-shard `(requests, errors, slow)` totals at the last feed —
    /// the baseline the next round's deltas subtract from.
    fed: BTreeMap<u32, (u64, u64, u64)>,
}

/// Pull-based fleet aggregator: scrapes every target's registry over
/// `ScrapeStats`, remembers the last good answer per shard, and
/// (optionally) feeds the fleet SLO from scrape deltas.
pub struct FleetAggregator {
    config: ClientConfig,
    clock: Arc<dyn Clock>,
    last: BTreeMap<u32, ShardScrape>,
    slo: Option<FleetSlo>,
}

impl FleetAggregator {
    /// An aggregator with default client tuning, stamping scrapes from
    /// `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> FleetAggregator {
        FleetAggregator::with_config(clock, ClientConfig::default())
    }

    /// [`new`](Self::new) with explicit per-scrape client tuning
    /// (timeouts bound how long an unreachable shard stalls a round).
    pub fn with_config(clock: Arc<dyn Clock>, config: ClientConfig) -> FleetAggregator {
        FleetAggregator {
            config,
            clock,
            last: BTreeMap::new(),
            slo: None,
        }
    }

    /// Attaches fleet SLO tracking: every subsequent
    /// [`scrape`](Self::scrape) feeds per-shard counter deltas into a
    /// [`SloTracker`] under `slo_config`, and
    /// [`evaluate_slo`](Self::evaluate_slo) runs them through the
    /// hysteresis rules, emitting health events into `log`.
    pub fn enable_slo(&mut self, slo_config: SloConfig, rules: SloRules, log: EventLog) {
        let objective_ns = slo_config.latency_objective_ns;
        let tracker = SloTracker::new(slo_config, self.clock.clone());
        self.slo = Some(FleetSlo {
            monitor: SloMonitor::new(tracker, rules, log),
            objective_ns,
            fed: BTreeMap::new(),
        });
    }

    /// Mirrors the SLO monitor's burn gauges into `registry` (no-op
    /// until [`enable_slo`](Self::enable_slo) ran).
    pub fn attach_slo_registry(&mut self, registry: &Registry) {
        if let Some(slo) = self.slo.as_mut() {
            slo.monitor.attach_registry(registry);
        }
    }

    /// Worst current SLO severity, once SLO tracking is on.
    pub fn slo_severity(&self) -> Option<Severity> {
        self.slo.as_ref().map(|s| s.monitor.severity())
    }

    /// The fleet SLO monitor, once SLO tracking is on.
    pub fn slo_monitor(&self) -> Option<&SloMonitor> {
        self.slo.as_ref().map(|s| &s.monitor)
    }

    /// One federation round: dials every target, pulls its snapshot,
    /// marks the ones that did not answer as unreachable (keeping
    /// their last-known data), drops shards no longer in `targets`,
    /// and — when SLO tracking is on — feeds each reachable shard's
    /// counter deltas into the fleet tracker. Returns the fleet view.
    pub fn scrape(&mut self, targets: &[(u32, SocketAddr)]) -> FleetSnapshot {
        let live: Vec<u32> = targets.iter().map(|(id, _)| *id).collect();
        self.last.retain(|id, _| live.contains(id));
        if let Some(slo) = self.slo.as_mut() {
            slo.fed.retain(|id, _| live.contains(id));
        }
        for &(shard, addr) in targets {
            let client = NetClient::with_config(addr, self.config.clone());
            let entry = self.last.entry(shard).or_insert_with(|| ShardScrape {
                shard,
                addr,
                reachable: false,
                epoch: 0,
                verdict: 0,
                snapshot: RegistrySnapshot::default(),
                scraped_at_ns: 0,
            });
            entry.addr = addr;
            match client.scrape_stats() {
                Ok((epoch, verdict, snapshot)) => {
                    entry.reachable = true;
                    entry.epoch = epoch;
                    entry.verdict = verdict;
                    entry.snapshot = snapshot;
                    entry.scraped_at_ns = self.clock.now_ns();
                    if let Some(slo) = self.slo.as_mut() {
                        let now = request_totals(&entry.snapshot, slo.objective_ns);
                        let prev = slo.fed.insert(shard, now).unwrap_or((0, 0, 0));
                        // A restarted shard resets its counters; the
                        // saturating delta treats the reset as zero new
                        // traffic instead of underflowing.
                        slo.monitor.tracker().record_batch(
                            now.0.saturating_sub(prev.0),
                            now.1.saturating_sub(prev.1),
                            now.2.saturating_sub(prev.2),
                        );
                    }
                }
                Err(_) => entry.reachable = false,
            }
        }
        FleetSnapshot {
            at_ns: self.clock.now_ns(),
            shards: self.last.values().cloned().collect(),
        }
    }

    /// Pulls every target's cumulative profiler snapshot
    /// (`ProfileDump`) and merges them into one fleet-wide
    /// [`ProfileSnapshot`]: each shard's thread rows are re-rooted
    /// under a `shard<id>` frame (so the folded rendering yields
    /// `shard0;scaddard-worker-1;engine 42` — a ready-made fleet
    /// flamegraph), sorted for deterministic output. `rounds` sums
    /// across shards; unreachable shards are skipped (their absence is
    /// visible as a missing `shard<id>` root, and the regular scrape
    /// round already reports them unreachable).
    pub fn scrape_profiles(&self, targets: &[(u32, SocketAddr)]) -> ProfileSnapshot {
        let mut merged = ProfileSnapshot {
            at_ns: self.clock.now_ns(),
            rounds: 0,
            threads: Vec::new(),
        };
        for &(shard, addr) in targets {
            let client = NetClient::with_config(addr, self.config.clone());
            let Ok(profile) = client.profile_dump() else {
                continue;
            };
            merged.rounds += profile.rounds;
            for mut thread in profile.threads {
                thread.name = format!("shard{shard};{}", thread.name);
                merged.threads.push(thread);
            }
        }
        merged.threads.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }

    /// Evaluates the fleet SLO rules once (after a
    /// [`scrape`](Self::scrape) fed them), emitting due health events;
    /// on a transition into CRIT the `flight` recorder is captured
    /// into the event log. Empty when SLO tracking is off.
    pub fn evaluate_slo(&mut self, flight: Option<&Tracer>) -> Vec<HealthEvent> {
        match self.slo.as_mut() {
            Some(slo) => slo.monitor.evaluate(flight),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};
    use scaddar_net::ClusterClient;
    use scaddar_obs::VirtualClock;

    fn small() -> ClusterConfig {
        ClusterConfig {
            shards: 3,
            blocks_per_object: 200,
            migration_batch: 4,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn federated_totals_equal_direct_scrape_sums() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(24).unwrap();
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            client.locate(gid, 0).unwrap();
        }
        let mut aggregator = FleetAggregator::new(cluster.clock().clone());
        let fleet = aggregator.scrape(&cluster.scrape_targets());
        assert!(fleet.unreachable_shards().is_empty());

        // Quiesced cluster: the federated locate counter must equal
        // the sum of per-shard direct scrapes, and the merged locate
        // histogram count must match it.
        let mut direct_sum = 0u64;
        for (shard, addr) in cluster.scrape_targets() {
            let (_, _, snap) = NetClient::connect(addr).scrape_stats().unwrap();
            let served = snap
                .counter_value("net_server_requests_total{endpoint=\"locate\"}")
                .unwrap_or(0);
            direct_sum += served;
            // Per-shard view inside the fleet snapshot matches too.
            assert_eq!(
                fleet
                    .shard(shard)
                    .unwrap()
                    .snapshot
                    .counter_value("net_server_requests_total{endpoint=\"locate\"}")
                    .unwrap_or(0),
                served,
                "shard {shard}"
            );
        }
        let registry = fleet.fleet_registry();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("net_server_requests_total{endpoint=\"locate\"}"),
            Some(direct_sum)
        );
        assert_eq!(
            snap.histogram("net_server_request_ns{endpoint=\"locate\"}")
                .unwrap()
                .count,
            direct_sum,
            "histograms must merge bucket-wise, preserving total count"
        );
        assert_eq!(direct_sum, cluster.object_ids().len() as u64);

        let prom = fleet.render_prometheus();
        assert!(prom.contains("fleet_shards 3"));
        assert!(prom.contains("fleet_shards_unreachable 0"));
        assert!(prom.contains("fleet_shard_up{shard=\"0\"} 1"));
        cluster.shutdown();
    }

    #[test]
    fn killed_shards_stay_visible_as_stale_and_unreachable() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(6).unwrap();
        let mut aggregator = FleetAggregator::new(cluster.clock().clone());
        let first = aggregator.scrape(&cluster.scrape_targets());
        assert!(first.unreachable_shards().is_empty());
        let before = first.shard(1).unwrap().clone();
        assert!(before.scraped_at_ns > 0);

        let _snapshot = cluster.kill(1).unwrap();
        // The dead shard is still a target (it is still in the map);
        // scrape it at its old address.
        let mut targets = cluster.scrape_targets();
        targets.push((1, before.addr));
        targets.sort_by_key(|(id, _)| *id);
        let fleet = aggregator.scrape(&targets);
        assert_eq!(fleet.unreachable_shards(), vec![1]);
        let stale = fleet.shard(1).unwrap();
        assert!(!stale.reachable);
        assert_eq!(
            stale.snapshot, before.snapshot,
            "last-known data survives unreachability"
        );
        let prom = fleet.render_prometheus();
        assert!(prom.contains("fleet_shards_unreachable 1"));
        assert!(prom.contains("fleet_shard_up{shard=\"1\"} 0"));
        assert!(fleet.render_table().contains("UNREACHABLE"));
        cluster.shutdown();
    }

    #[test]
    fn compaction_gauges_surface_per_shard_in_the_fleet_view() {
        let scrape = |shard: u32, snapshot: RegistrySnapshot| ShardScrape {
            shard,
            addr: "127.0.0.1:1".parse().unwrap(),
            reachable: true,
            epoch: 0,
            verdict: 0,
            snapshot,
            scraped_at_ns: 1,
        };
        // Shard 0: mid-compaction. Shard 1: idle at generation 3.
        // Shard 2: an engine without stats (no gauges at all).
        let busy = Registry::new();
        busy.gauge("cmsim_compaction_active", "").set(1);
        busy.gauge("cmsim_compaction_generation", "").set(2);
        busy.gauge("cmsim_compaction_target_generation", "").set(3);
        busy.gauge("cmsim_compaction_remaining_blocks", "").set(600);
        busy.gauge("cmsim_compaction_total_blocks", "").set(1000);
        let idle = Registry::new();
        idle.gauge("cmsim_compaction_active", "").set(0);
        idle.gauge("cmsim_compaction_generation", "").set(3);
        idle.gauge("cmsim_compaction_target_generation", "").set(3);
        idle.gauge("cmsim_compaction_remaining_blocks", "").set(0);
        idle.gauge("cmsim_compaction_total_blocks", "").set(0);
        let fleet = FleetSnapshot {
            at_ns: 2,
            shards: vec![
                scrape(0, busy.snapshot()),
                scrape(1, idle.snapshot()),
                scrape(2, RegistrySnapshot::default()),
            ],
        };
        let c0 = fleet.shard(0).unwrap().compaction().unwrap();
        assert!(c0.active);
        assert_eq!((c0.generation, c0.target_generation), (2, 3));
        assert!((c0.fraction() - 0.4).abs() < 1e-9);
        let c1 = fleet.shard(1).unwrap().compaction().unwrap();
        assert!(!c1.active);
        assert_eq!(c1.render(), "gen 3");
        assert_eq!(fleet.shard(2).unwrap().compaction(), None);
        let table = fleet.render_table();
        assert!(table.contains("gen 2 compacting ->3 40%"), "{table}");
        assert!(table.contains("gen 3"), "{table}");
    }

    #[test]
    fn mismatched_bucket_layouts_are_skipped_not_merged() {
        let scrape = |shard: u32, snapshot: RegistrySnapshot| ShardScrape {
            shard,
            addr: "127.0.0.1:1".parse().unwrap(),
            reachable: true,
            epoch: 0,
            verdict: 0,
            snapshot,
            scraped_at_ns: 1,
        };
        // A foreign shard whose snapshot carries no bucket-layout
        // fingerprint (e.g. a build predating the marker, or one with
        // different bucket boundaries).
        let foreign = Registry::new();
        foreign
            .histogram("net_server_request_ns{endpoint=\"locate\"}", "latency")
            .record(5);
        foreign.counter("net_server_errors_total", "errors").inc();
        // A current-build shard with the marker stamped.
        let native = Registry::new();
        native.mark_bucket_layout();
        native
            .histogram("net_server_request_ns{endpoint=\"locate\"}", "latency")
            .record(7);
        let fleet = FleetSnapshot {
            at_ns: 2,
            shards: vec![scrape(0, foreign.snapshot()), scrape(1, native.snapshot())],
        };
        let snap = fleet.fleet_registry().snapshot();
        // Only the layout-compatible shard's histogram merged...
        assert_eq!(
            snap.histogram("net_server_request_ns{endpoint=\"locate\"}")
                .unwrap()
                .count,
            1
        );
        // ...the incompatible series was counted, not silently dropped...
        assert_eq!(snap.counter_value("fleet_merge_skipped_total"), Some(1));
        // ...and the foreign shard's counters still folded in.
        assert_eq!(snap.counter_value("net_server_errors_total"), Some(1));
    }

    #[test]
    fn fleet_profiles_merge_under_shard_roots() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(6).unwrap();
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            client.locate(gid, 0).unwrap();
        }
        let aggregator = FleetAggregator::new(cluster.clock().clone());
        let profile = aggregator.scrape_profiles(&cluster.scrape_targets());
        // Every shard contributes rows, re-rooted under its shard id.
        for shard in 0..3u32 {
            assert!(
                profile
                    .threads
                    .iter()
                    .any(|t| t.name.starts_with(&format!("shard{shard};"))),
                "missing shard {shard} rows"
            );
        }
        assert!(profile.threads.iter().all(|t| t.conserves()));
        // The folded rendering is a three-deep stack per line.
        for line in profile.render_folded().lines() {
            let (stack, _count) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "{line}");
        }
        cluster.shutdown();
    }

    #[test]
    fn scrape_deltas_feed_the_fleet_slo() {
        let clock = Arc::new(VirtualClock::new());
        let log = EventLog::new(clock.clone());
        let mut aggregator = FleetAggregator::new(clock.clone());
        aggregator.enable_slo(SloConfig::default(), SloRules::default(), log);

        // Hand-feed the tracker through the same path scrape() uses:
        // totals-at-scrape minus totals-at-previous-scrape.
        let slo = aggregator.slo.as_mut().unwrap();
        let reg = Registry::new();
        let requests = reg.counter(
            "net_server_requests_total{endpoint=\"locate\"}",
            "Requests served, by endpoint",
        );
        let latency = reg.histogram(
            "net_server_request_ns{endpoint=\"locate\"}",
            "Server-side request handling latency, by endpoint",
        );
        for _ in 0..10_000 {
            requests.inc();
            latency.record(40_000);
        }
        // 2% of traffic past the 100 µs objective: burn 20 ≥ crit 10.
        for _ in 0..200 {
            requests.inc();
            latency.record(2_000_000);
        }
        let snap = reg.snapshot();
        let (total, errors, slow) = request_totals(&snap, slo.objective_ns);
        assert_eq!((total, errors, slow), (10_200, 0, 200));
        slo.monitor.tracker().record_batch(total, errors, slow);
        let events = aggregator.evaluate_slo(None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "latency-p999-burn");
        assert_eq!(events[0].severity, Severity::Crit);
        assert_eq!(aggregator.slo_severity(), Some(Severity::Crit));
    }

    #[test]
    fn repeated_scrapes_feed_only_the_delta() {
        let mut cluster = Cluster::boot(small()).unwrap();
        cluster.populate(8).unwrap();
        let client = ClusterClient::connect(&cluster.seeds()).unwrap();
        for gid in cluster.object_ids() {
            client.locate(gid, 0).unwrap();
        }
        let log = EventLog::new(cluster.clock().clone());
        let mut aggregator = FleetAggregator::new(cluster.clock().clone());
        aggregator.enable_slo(SloConfig::default(), SloRules::default(), log);
        aggregator.scrape(&cluster.scrape_targets());
        let after_first = aggregator
            .slo
            .as_ref()
            .unwrap()
            .monitor
            .tracker()
            .retained_total();
        // No new traffic: the second round's delta is zero.
        aggregator.scrape(&cluster.scrape_targets());
        let after_second = aggregator
            .slo
            .as_ref()
            .unwrap()
            .monitor
            .tracker()
            .retained_total();
        assert_eq!(after_first, after_second, "idle scrape must feed nothing");
        assert!(after_first > 0, "first scrape fed the warm-up traffic");
        cluster.shutdown();
    }
}
