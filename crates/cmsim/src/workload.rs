//! Workload generation: object catalogs, stream arrivals, and VCR
//! behaviour, all deterministic under a seed.
//!
//! Models follow the CM-server literature the paper builds on: object
//! popularity is Zipf-distributed (video-on-demand catalogs famously
//! are), arrivals are Poisson, and interactive sessions issue occasional
//! VCR operations.

use scaddar_core::ObjectId;
use scaddar_prng::{SeededRng, SplitMix64};

/// A Zipf(`s`) sampler over ranks `0..n` via inverse-CDF table lookup.
///
/// Rank 0 is the most popular object.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s` (`s = 0` is
    /// uniform; VoD catalogs are typically `0.7..=1.0`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty Zipf support");
        assert!(s >= 0.0, "negative exponent");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard the tail against rounding.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Samples a rank using a uniform `u` in `[0,1)`.
    pub fn sample_with(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1)
    }
}

/// Converts a u64 draw to a uniform f64 in `[0, 1)` (53-bit mantissa).
pub fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Behavioural parameters of generated sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Expected new streams per round (Poisson arrivals).
    pub arrival_rate: f64,
    /// Zipf exponent of object popularity.
    pub zipf_exponent: f64,
    /// Per-round probability a playing stream pauses.
    pub pause_probability: f64,
    /// Per-round probability a paused stream resumes.
    pub resume_probability: f64,
    /// Per-round probability a playing stream seeks to a random block.
    pub seek_probability: f64,
}

impl WorkloadConfig {
    /// A sequential-playback-only workload.
    pub fn sequential(arrival_rate: f64) -> Self {
        WorkloadConfig {
            arrival_rate,
            zipf_exponent: 0.729, // the classic VoD measurement
            pause_probability: 0.0,
            resume_probability: 0.0,
            seek_probability: 0.0,
        }
    }

    /// An interactive workload with VCR operations.
    pub fn interactive(arrival_rate: f64) -> Self {
        WorkloadConfig {
            arrival_rate,
            zipf_exponent: 0.729,
            pause_probability: 0.01,
            resume_probability: 0.10,
            seek_probability: 0.005,
        }
    }
}

/// Deterministic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    rng: SplitMix64,
    zipf: Zipf,
    config: WorkloadConfig,
    objects: Vec<(ObjectId, u64)>,
}

/// A VCR decision for one stream this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcrAction {
    /// Keep doing whatever it was doing.
    None,
    /// Pause.
    Pause,
    /// Resume.
    Resume,
    /// Seek to this block.
    Seek(u64),
}

impl WorkloadGen {
    /// Creates a generator over a catalog of `(object, blocks)` with
    /// rank order = popularity order.
    pub fn new(seed: u64, config: WorkloadConfig, objects: Vec<(ObjectId, u64)>) -> Self {
        assert!(!objects.is_empty(), "workload needs a catalog");
        WorkloadGen {
            rng: SplitMix64::from_seed(seed),
            zipf: Zipf::new(objects.len(), config.zipf_exponent),
            config,
            objects,
        }
    }

    fn uniform(&mut self) -> f64 {
        unit_f64(self.rng.next_u64())
    }

    /// Number of stream arrivals this round (Poisson via Knuth's
    /// product method; rates here are small).
    pub fn arrivals(&mut self) -> u32 {
        let l = (-self.config.arrival_rate).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                // Rate so high the simulation parameters are nonsense.
                panic!("arrival rate too large for the Poisson sampler");
            }
        }
    }

    /// Picks the object for a new stream by Zipf popularity.
    pub fn pick_object(&mut self) -> (ObjectId, u64) {
        let u = self.uniform();
        self.objects[self.zipf.sample_with(u)]
    }

    /// The VCR decision for a stream this round.
    pub fn vcr_action(&mut self, playing: bool, object_blocks: u64) -> VcrAction {
        let u = self.uniform();
        if playing {
            if u < self.config.pause_probability {
                VcrAction::Pause
            } else if u < self.config.pause_probability + self.config.seek_probability {
                let target = (self.rng.next_u64()) % object_blocks.max(1);
                VcrAction::Seek(target)
            } else {
                VcrAction::None
            }
        } else if u < self.config.resume_probability {
            VcrAction::Resume
        } else {
            VcrAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_monotone_in_popularity() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::from_seed(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..200_000 {
            counts[z.sample_with(unit_f64(rng.next_u64()))] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
        // Rank 0 of Zipf(1, 100): weight 1/H_100 ~ 0.1928.
        let frac = counts[0] as f64 / 200_000.0;
        assert!((frac - 0.1928).abs() < 0.01, "rank-0 frequency {frac}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::from_seed(6);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample_with(unit_f64(rng.next_u64()))] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn poisson_mean_is_calibrated() {
        let objects = vec![(ObjectId(0), 100)];
        let mut gen = WorkloadGen::new(3, WorkloadConfig::sequential(2.5), objects);
        let rounds = 20_000;
        let total: u64 = (0..rounds).map(|_| u64::from(gen.arrivals())).sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn vcr_actions_respect_probabilities() {
        let objects = vec![(ObjectId(0), 1000)];
        let mut gen = WorkloadGen::new(4, WorkloadConfig::interactive(1.0), objects);
        let mut pauses = 0;
        let trials = 100_000;
        for _ in 0..trials {
            if gen.vcr_action(true, 1000) == VcrAction::Pause {
                pauses += 1;
            }
        }
        let rate = f64::from(pauses) / f64::from(trials);
        assert!((rate - 0.01).abs() < 0.003, "pause rate {rate}");
    }

    #[test]
    fn generator_is_deterministic() {
        let objects = vec![(ObjectId(0), 10), (ObjectId(1), 20)];
        let run = || {
            let mut g = WorkloadGen::new(9, WorkloadConfig::interactive(1.0), objects.clone());
            (0..50)
                .map(|_| (g.arrivals(), g.pick_object().0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
