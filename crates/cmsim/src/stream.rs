//! Stream sessions: the clients of the CM server.
//!
//! Each active stream consumes one block per service round while playing
//! (the standard round-based CM service model the paper's §1 assumes) and
//! may issue VCR operations — pause, resume, seek, fast-forward — whose
//! unpredictable access patterns are one of the published reasons for
//! random placement (the RIO arguments quoted in §1).

use scaddar_core::ObjectId;

/// Identifier of a client stream session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// Playback state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayState {
    /// Consuming one block per round (per `speed`).
    Playing,
    /// Holding position.
    Paused,
    /// Finished (ran past the last block) — to be reaped.
    Done,
}

/// A client session streaming one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream {
    /// Session id.
    pub id: StreamId,
    /// The object being streamed.
    pub object: ObjectId,
    /// Object length in blocks (cached to detect completion).
    pub object_blocks: u64,
    /// Next block to consume.
    pub position: u64,
    /// Playback state.
    pub state: PlayState,
    /// Blocks consumed per round while playing (1 = normal speed,
    /// 2+ = fast-forward with display subsampling).
    pub speed: u64,
}

impl Stream {
    /// Starts a stream at block 0, normal speed.
    pub fn new(id: StreamId, object: ObjectId, object_blocks: u64) -> Self {
        Stream {
            id,
            object,
            object_blocks,
            position: 0,
            state: if object_blocks == 0 {
                PlayState::Done
            } else {
                PlayState::Playing
            },
            speed: 1,
        }
    }

    /// The block this stream needs this round, if any.
    pub fn current_request(&self) -> Option<u64> {
        match self.state {
            PlayState::Playing => Some(self.position),
            PlayState::Paused | PlayState::Done => None,
        }
    }

    /// Advances after a successful block delivery.
    pub fn advance(&mut self) {
        debug_assert_eq!(self.state, PlayState::Playing);
        self.position = self.position.saturating_add(self.speed);
        if self.position >= self.object_blocks {
            self.state = PlayState::Done;
        }
    }

    /// VCR: pause.
    pub fn pause(&mut self) {
        if self.state == PlayState::Playing {
            self.state = PlayState::Paused;
        }
    }

    /// VCR: resume.
    pub fn resume(&mut self) {
        if self.state == PlayState::Paused {
            self.state = PlayState::Playing;
        }
    }

    /// VCR: jump to an absolute block (clamped to the object's end).
    pub fn seek(&mut self, block: u64) {
        if block >= self.object_blocks {
            self.state = PlayState::Done;
        } else {
            self.position = block;
            if self.state == PlayState::Done {
                self.state = PlayState::Playing;
            }
        }
    }

    /// VCR: change speed (1 = normal; `>1` = fast-forward).
    pub fn set_speed(&mut self, speed: u64) {
        assert!(speed >= 1, "speed must be at least 1");
        self.speed = speed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(len: u64) -> Stream {
        Stream::new(StreamId(1), ObjectId(0), len)
    }

    #[test]
    fn plays_to_completion() {
        let mut s = stream(3);
        for expect in 0..3 {
            assert_eq!(s.current_request(), Some(expect));
            s.advance();
        }
        assert_eq!(s.state, PlayState::Done);
        assert_eq!(s.current_request(), None);
    }

    #[test]
    fn zero_length_object_is_immediately_done() {
        let s = stream(0);
        assert_eq!(s.state, PlayState::Done);
    }

    #[test]
    fn vcr_pause_resume_seek() {
        let mut s = stream(100);
        s.pause();
        assert_eq!(s.current_request(), None);
        s.resume();
        assert_eq!(s.current_request(), Some(0));
        s.seek(50);
        assert_eq!(s.current_request(), Some(50));
        s.seek(1000);
        assert_eq!(s.state, PlayState::Done);
        // Seeking back into range revives a done stream.
        s.seek(10);
        assert_eq!(s.state, PlayState::Playing);
    }

    #[test]
    fn fast_forward_skips() {
        let mut s = stream(10);
        s.set_speed(3);
        s.advance();
        assert_eq!(s.position, 3);
        s.advance();
        s.advance();
        s.advance();
        assert_eq!(s.state, PlayState::Done);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_speed_rejected() {
        stream(10).set_speed(0);
    }
}
