//! The block store: where each block's data *physically* is right now.
//!
//! SCADDAR's access function says where a block *should* be; during an
//! online redistribution the data may still be in transit. The store
//! tracks actual residency so the simulator can model serving from stale
//! locations, and it validates every applied move plan against the
//! engine's arithmetic (a continuous end-to-end check that `RF()` and
//! `AF()` agree).

use scaddar_baselines::PhysicalDiskId;
use scaddar_core::{BlockMove, BlockRef};
use std::collections::HashMap;

/// Residency of all blocks, keyed by block reference.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    residency: HashMap<BlockRef, PhysicalDiskId>,
    per_disk: HashMap<PhysicalDiskId, u64>,
}

impl BlockStore {
    /// An empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.residency.len()
    }

    /// True when no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.residency.is_empty()
    }

    /// Ingests a block onto a disk (initial load or object addition).
    ///
    /// # Panics
    /// If the block is already stored (double ingest is a logic error).
    pub fn ingest(&mut self, block: BlockRef, disk: PhysicalDiskId) {
        let prev = self.residency.insert(block, disk);
        assert!(prev.is_none(), "block {block:?} ingested twice");
        *self.per_disk.entry(disk).or_insert(0) += 1;
    }

    /// Drops a block (object deletion).
    pub fn evict(&mut self, block: BlockRef) -> Option<PhysicalDiskId> {
        let disk = self.residency.remove(&block)?;
        let count = self.per_disk.get_mut(&disk).expect("census in sync");
        *count -= 1;
        if *count == 0 {
            self.per_disk.remove(&disk);
        }
        Some(disk)
    }

    /// Where a block's data currently lives.
    pub fn locate(&self, block: BlockRef) -> Option<PhysicalDiskId> {
        self.residency.get(&block).copied()
    }

    /// Moves one block between disks.
    ///
    /// # Panics
    /// If the block is unknown or not on `from` — both indicate the move
    /// plan and the store have diverged, which must never happen.
    pub fn relocate(&mut self, block: BlockRef, from: PhysicalDiskId, to: PhysicalDiskId) {
        let slot = self
            .residency
            .get_mut(&block)
            .unwrap_or_else(|| panic!("relocating unknown block {block:?}"));
        assert_eq!(*slot, from, "move plan disagrees with store for {block:?}");
        *slot = to;
        let count = self.per_disk.get_mut(&from).expect("census in sync");
        *count -= 1;
        if *count == 0 {
            self.per_disk.remove(&from);
        }
        *self.per_disk.entry(to).or_insert(0) += 1;
    }

    /// Moves a block to `to` from wherever the store believes it is,
    /// without checking the source. For *reconstruction* paths only
    /// (rebuilding a failed disk's block from its mirror): the stored
    /// location is the dead disk, and the data actually flows from the
    /// replica. Returns the prior location.
    ///
    /// # Panics
    /// If the block is unknown.
    pub fn relocate_reconstructed(
        &mut self,
        block: BlockRef,
        to: PhysicalDiskId,
    ) -> PhysicalDiskId {
        let from = self
            .locate(block)
            .unwrap_or_else(|| panic!("reconstructing unknown block {block:?}"));
        let slot = self.residency.get_mut(&block).expect("just located");
        *slot = to;
        let count = self.per_disk.get_mut(&from).expect("census in sync");
        *count -= 1;
        if *count == 0 {
            self.per_disk.remove(&from);
        }
        *self.per_disk.entry(to).or_insert(0) += 1;
        from
    }

    /// Number of blocks currently on `disk`.
    pub fn blocks_on(&self, disk: PhysicalDiskId) -> u64 {
        self.per_disk.get(&disk).copied().unwrap_or(0)
    }

    /// The blocks currently on `disk` (unordered). O(total blocks) — used
    /// by removal planning and failure simulation, not per-round serving.
    pub fn scan_disk(&self, disk: PhysicalDiskId) -> Vec<BlockRef> {
        self.residency
            .iter()
            .filter_map(|(b, &d)| (d == disk).then_some(*b))
            .collect()
    }

    /// Load census over an explicit disk ordering (absent disks count 0).
    pub fn census(&self, disks: &[PhysicalDiskId]) -> Vec<u64> {
        disks.iter().map(|&d| self.blocks_on(d)).collect()
    }

    /// Applies a whole move plan at once (*offline* redistribution),
    /// translating logical endpoints through the given pre/post logical
    /// maps. Returns the number of blocks relocated.
    pub fn apply_moves<F, G>(&mut self, moves: &[BlockMove], pre: F, post: G) -> u64
    where
        F: Fn(u32) -> PhysicalDiskId,
        G: Fn(u32) -> PhysicalDiskId,
    {
        for mv in moves {
            self.relocate(mv.block, pre(mv.from.0), post(mv.to.0));
        }
        moves.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::ObjectId;

    fn blk(o: u64, b: u64) -> BlockRef {
        BlockRef {
            object: ObjectId(o),
            block: b,
        }
    }

    #[test]
    fn ingest_locate_evict_roundtrip() {
        let mut s = BlockStore::new();
        s.ingest(blk(0, 0), PhysicalDiskId(2));
        s.ingest(blk(0, 1), PhysicalDiskId(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.locate(blk(0, 0)), Some(PhysicalDiskId(2)));
        assert_eq!(s.blocks_on(PhysicalDiskId(2)), 2);
        assert_eq!(s.evict(blk(0, 0)), Some(PhysicalDiskId(2)));
        assert_eq!(s.blocks_on(PhysicalDiskId(2)), 1);
        assert_eq!(s.evict(blk(9, 9)), None);
    }

    #[test]
    fn relocate_updates_census() {
        let mut s = BlockStore::new();
        s.ingest(blk(1, 0), PhysicalDiskId(0));
        s.relocate(blk(1, 0), PhysicalDiskId(0), PhysicalDiskId(3));
        assert_eq!(s.blocks_on(PhysicalDiskId(0)), 0);
        assert_eq!(s.blocks_on(PhysicalDiskId(3)), 1);
        assert_eq!(s.locate(blk(1, 0)), Some(PhysicalDiskId(3)));
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn relocate_from_wrong_disk_panics() {
        let mut s = BlockStore::new();
        s.ingest(blk(1, 0), PhysicalDiskId(0));
        s.relocate(blk(1, 0), PhysicalDiskId(7), PhysicalDiskId(3));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_ingest_panics() {
        let mut s = BlockStore::new();
        s.ingest(blk(1, 0), PhysicalDiskId(0));
        s.ingest(blk(1, 0), PhysicalDiskId(1));
    }

    #[test]
    fn scan_disk_finds_all_and_only() {
        let mut s = BlockStore::new();
        for b in 0..10 {
            s.ingest(blk(0, b), PhysicalDiskId(b % 2));
        }
        let mut on0 = s.scan_disk(PhysicalDiskId(0));
        on0.sort();
        assert_eq!(
            on0,
            (0..10).step_by(2).map(|b| blk(0, b)).collect::<Vec<_>>()
        );
        assert_eq!(
            s.census(&[PhysicalDiskId(0), PhysicalDiskId(1)]),
            vec![5, 5]
        );
    }
}
