//! The scrubber: incremental, online verification that actual block
//! residency agrees with the placement arithmetic.
//!
//! Directory-free placement has a failure mode directories don't: if the
//! store and the arithmetic ever disagree (bit rot in the metadata
//! snapshot, a lost move, an operator restoring the wrong epoch), reads
//! silently go to the wrong disk. Production systems scrub; so does the
//! simulator. A [`Scrubber`] walks the catalog a bounded number of blocks
//! per call (so it can ride along each service round), classifying every
//! block as *clean* (residency == `AF()`), *in transit* (a queued move
//! explains the difference), or *corrupt* (unexplained divergence — the
//! alarm case).

use crate::server::CmServer;
use scaddar_core::BlockRef;
use std::collections::HashSet;

/// Cursor state of an incremental scrub pass over the catalog.
#[derive(Debug, Clone, Default)]
pub struct Scrubber {
    /// Index of the next object in catalog order.
    object_pos: usize,
    /// Next block within that object.
    block_pos: u64,
    /// Completed full passes.
    passes: u64,
}

/// Result of one scrub increment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks examined in this increment.
    pub scanned: u64,
    /// Residency matched `AF()`.
    pub clean: u64,
    /// Residency differed but a queued move explains it.
    pub in_transit: u64,
    /// Unexplained divergence — these need repair.
    pub corrupt: Vec<BlockRef>,
    /// Did this increment wrap around to the start of the catalog?
    pub completed_pass: bool,
}

impl Scrubber {
    /// A scrubber starting at the beginning of the catalog.
    pub fn new() -> Self {
        Scrubber::default()
    }

    /// Completed full catalog passes.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Scans up to `budget` blocks of `server`, advancing the cursor.
    ///
    /// The catalog may have changed since the last increment (objects
    /// added or removed); the cursor degrades gracefully by clamping to
    /// the current catalog shape.
    pub fn scrub(&mut self, server: &CmServer, budget: u64) -> ScrubReport {
        let mut report = ScrubReport::default();
        let objects: Vec<(scaddar_core::ObjectId, u64)> = server
            .engine()
            .catalog()
            .objects()
            .iter()
            .map(|o| (o.id, o.blocks))
            .collect();
        if objects.is_empty() || budget == 0 {
            return report;
        }
        // Pending moves, as the explanation set for divergences.
        let pending: HashSet<BlockRef> = server.pending_moves().into_iter().collect();

        if self.object_pos >= objects.len() {
            self.object_pos = 0;
            self.block_pos = 0;
        }
        while report.scanned < budget {
            let (id, blocks) = objects[self.object_pos];
            if self.block_pos >= blocks {
                self.object_pos += 1;
                self.block_pos = 0;
                if self.object_pos >= objects.len() {
                    self.object_pos = 0;
                    self.passes += 1;
                    report.completed_pass = true;
                    // One pass per increment at most: stop here so the
                    // caller sees pass boundaries.
                    break;
                }
                continue;
            }
            let blockref = BlockRef {
                object: id,
                block: self.block_pos,
            };
            self.block_pos += 1;
            report.scanned += 1;

            let expected_logical = server
                .engine()
                .locate(id, blockref.block)
                .expect("catalog block");
            let expected = server.disks().physical(expected_logical);
            match server.store().locate(blockref) {
                Some(actual) if actual == expected => report.clean += 1,
                Some(_) if pending.contains(&blockref) => report.in_transit += 1,
                _ => report.corrupt.push(blockref),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use scaddar_core::ScalingOp;

    fn server(blocks: u64) -> CmServer {
        let mut s = CmServer::new(ServerConfig::new(4).with_catalog_seed(6)).unwrap();
        s.add_object(blocks).unwrap();
        s
    }

    #[test]
    fn healthy_server_scrubs_clean() {
        let s = server(1_000);
        let mut scrubber = Scrubber::new();
        let mut total_clean = 0;
        loop {
            let r = scrubber.scrub(&s, 256);
            assert!(r.corrupt.is_empty());
            assert_eq!(r.in_transit, 0);
            total_clean += r.clean;
            if r.completed_pass {
                break;
            }
        }
        assert_eq!(total_clean, 1_000);
        assert_eq!(scrubber.passes(), 1);
    }

    #[test]
    fn in_transit_blocks_are_not_corrupt() {
        let mut s = server(5_000);
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(s.backlog() > 0);
        let mut scrubber = Scrubber::new();
        let mut in_transit = 0;
        loop {
            let r = scrubber.scrub(&s, 1_000);
            assert!(
                r.corrupt.is_empty(),
                "pending moves misdiagnosed as corruption: {:?}",
                r.corrupt
            );
            in_transit += r.in_transit;
            if r.completed_pass {
                break;
            }
        }
        assert_eq!(in_transit, s.backlog(), "every queued move seen in transit");
    }

    #[test]
    fn scrubbing_rides_along_ticks_until_consistent() {
        let mut s = server(3_000);
        s.scale(ScalingOp::Add { count: 2 }).unwrap();
        let mut scrubber = Scrubber::new();
        while s.backlog() > 0 {
            s.tick();
            let r = scrubber.scrub(&s, 500);
            assert!(r.corrupt.is_empty());
        }
        // A full clean pass after the drain.
        let mut scrubber = Scrubber::new();
        loop {
            let r = scrubber.scrub(&s, 1_000);
            assert!(r.corrupt.is_empty());
            assert_eq!(r.in_transit, 0);
            if r.completed_pass {
                break;
            }
        }
    }

    #[test]
    fn empty_catalog_and_zero_budget_are_noops() {
        let s = CmServer::new(ServerConfig::new(2)).unwrap();
        let mut scrubber = Scrubber::new();
        assert_eq!(scrubber.scrub(&s, 100), ScrubReport::default());
        let s = server(10);
        assert_eq!(scrubber.scrub(&s, 0), ScrubReport::default());
    }

    /// Planted rot is detected, exactly and only: misplace a handful of
    /// blocks behind the engine's back and the scrubber must flag
    /// precisely those blocks as corrupt — nothing more, nothing less.
    #[test]
    fn detects_planted_rot_exactly() {
        use scaddar_core::BlockRef;
        let mut s = server(2_000);
        let id = s.engine().catalog().objects()[0].id;
        let mut planted = Vec::new();
        for block in [17u64, 900, 1_999] {
            let blockref = BlockRef { object: id, block };
            let home = s.store().locate(blockref).unwrap();
            let wrong = s
                .disks()
                .physical_ids()
                .into_iter()
                .find(|&p| p != home)
                .expect("more than one disk");
            assert!(s.inject_misplacement(blockref, wrong));
            planted.push(blockref);
        }
        let mut scrubber = Scrubber::new();
        let mut corrupt = Vec::new();
        loop {
            let r = scrubber.scrub(&s, 512);
            assert_eq!(r.in_transit, 0, "no moves are pending");
            corrupt.extend(r.corrupt);
            if r.completed_pass {
                break;
            }
        }
        corrupt.sort();
        planted.sort();
        assert_eq!(corrupt, planted, "scrub must flag exactly the planted rot");
    }

    /// The inject hook itself is honest: it refuses no-op misplacement
    /// and unknown blocks, and flips `residency_consistent`.
    #[test]
    fn inject_misplacement_contract() {
        use scaddar_core::BlockRef;
        let mut s = server(100);
        let id = s.engine().catalog().objects()[0].id;
        let blockref = BlockRef {
            object: id,
            block: 5,
        };
        let home = s.store().locate(blockref).unwrap();
        assert!(
            !s.inject_misplacement(blockref, home),
            "same-disk is a no-op"
        );
        assert!(!s.inject_misplacement(
            BlockRef {
                object: scaddar_core::ObjectId(77),
                block: 0
            },
            home
        ));
        assert!(s.residency_consistent());
        let wrong = s
            .disks()
            .physical_ids()
            .into_iter()
            .find(|&p| p != home)
            .unwrap();
        assert!(s.inject_misplacement(blockref, wrong));
        assert!(!s.residency_consistent(), "rot must break the invariant");
    }

    #[test]
    fn survives_catalog_shrinking_between_increments() {
        let mut s = CmServer::new(ServerConfig::new(4).with_catalog_seed(1)).unwrap();
        let a = s.add_object(500).unwrap();
        s.add_object(500).unwrap();
        let mut scrubber = Scrubber::new();
        let _ = scrubber.scrub(&s, 700); // cursor now inside object b
        s.remove_object(a).unwrap();
        // Cursor positions past the shrunken catalog must clamp cleanly.
        let r = scrubber.scrub(&s, 10_000);
        assert!(r.corrupt.is_empty());
    }
}
