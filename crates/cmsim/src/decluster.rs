//! Declustered parity: the repair-cost answer to [`crate::parity`]'s
//! co-location losses.
//!
//! Static consecutive parity groups (E13) lose blocks on single-disk
//! failures whenever two group members share a disk (~`g²/2N` of groups,
//! by the birthday bound). The fix every RAID-style system uses is
//! **declustering**: choose group membership so members sit on distinct
//! disks. Under SCADDAR, membership must then be *state* — blocks move on
//! every scaling operation, and a move can push two members of a group
//! onto one disk — so the declustering layer repairs itself after each
//! operation by regrouping conflicted blocks and rewriting the affected
//! parity. That repair traffic is the price of 100% single-failure
//! availability, and experiment E18 weighs it against the static
//! scheme's data loss.
//!
//! The membership table is the one place this crate deliberately departs
//! from the paper's "no per-block state" discipline: one group id per
//! block. The point of the experiment is to make the cost of *not*
//! having that state (E13's losses) and of having it (this module's
//! repair traffic + table) both measurable.

use crate::server::CmServer;
use scaddar_core::{DiskIndex, ObjectId, ScaddarError};
use std::collections::HashMap;

/// Group membership for one object.
#[derive(Debug, Clone, Default)]
struct ObjectGroups {
    /// `member_of[block] = group id`.
    member_of: Vec<u32>,
    /// `groups[gid] = member block indices` (each on a distinct disk).
    groups: Vec<Vec<u64>>,
}

/// Statistics of one build or repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Blocks whose group assignment changed.
    pub regrouped_blocks: u64,
    /// Parity blocks that must be rewritten (old groups that lost a
    /// member plus new/extended groups).
    pub parity_rewrites: u64,
}

/// The declustering layer over a [`CmServer`]'s placement.
#[derive(Debug, Clone)]
pub struct DeclusteredParity {
    group_size: u32,
    objects: HashMap<ObjectId, ObjectGroups>,
}

impl DeclusteredParity {
    /// Builds declustered groups of `group_size` (1 parity + up to
    /// `group_size - 1` data members) for every object currently on the
    /// server.
    ///
    /// # Panics
    /// If `group_size < 2` or `group_size - 1` exceeds the disk count
    /// (distinct-disk groups would be impossible).
    pub fn build(server: &CmServer, group_size: u32) -> Result<Self, ScaddarError> {
        assert!(group_size >= 2, "parity group needs >= 2 members");
        assert!(
            group_size - 1 <= server.disks().disks(),
            "cannot decluster: group data members exceed disk count"
        );
        let mut layer = DeclusteredParity {
            group_size,
            objects: HashMap::new(),
        };
        for obj in server.engine().catalog().objects().to_vec() {
            let placements = server.engine().locate_all(obj.id)?;
            layer
                .objects
                .insert(obj.id, Self::group_greedily(&placements, group_size));
        }
        Ok(layer)
    }

    /// Greedy grouping: walk blocks in order, put each into the first
    /// open group (fewer than `g-1` members) that does not already use
    /// the block's disk; open a new group otherwise.
    fn group_greedily(placements: &[DiskIndex], group_size: u32) -> ObjectGroups {
        let capacity = (group_size - 1) as usize;
        let mut og = ObjectGroups {
            member_of: vec![0; placements.len()],
            groups: Vec::new(),
        };
        // Open groups: (gid, member disks).
        let mut open: Vec<(u32, Vec<DiskIndex>)> = Vec::new();
        for (block, &disk) in placements.iter().enumerate() {
            let slot = open
                .iter()
                .position(|(_, disks)| disks.len() < capacity && !disks.contains(&disk));
            let gid = match slot {
                Some(i) => {
                    open[i].1.push(disk);
                    let gid = open[i].0;
                    if open[i].1.len() == capacity {
                        open.swap_remove(i);
                    }
                    gid
                }
                None => {
                    let gid = og.groups.len() as u32;
                    og.groups.push(Vec::new());
                    open.push((gid, vec![disk]));
                    if capacity == 1 {
                        open.pop();
                    }
                    gid
                }
            };
            og.member_of[block] = gid;
            og.groups[gid as usize].push(block as u64);
        }
        og
    }

    /// The configured group size.
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Total groups across all objects (== parity blocks stored).
    pub fn total_groups(&self) -> u64 {
        self.objects.values().map(|og| og.groups.len() as u64).sum()
    }

    /// Effective storage overhead: `(data + parity) / data`.
    pub fn storage_overhead(&self, server: &CmServer) -> f64 {
        let data = server.engine().catalog().total_blocks() as f64;
        if data == 0.0 {
            return 1.0;
        }
        (data + self.total_groups() as f64) / data
    }

    /// Membership-table footprint: 4 bytes (group id) per block — the
    /// per-block state the paper's discipline avoids, quantified.
    pub fn table_bytes(&self) -> usize {
        self.objects.values().map(|og| og.member_of.len() * 4).sum()
    }

    /// Verifies the declustering invariant: within every group, member
    /// disks are pairwise distinct at the server's *current* placement.
    /// Returns the number of conflicted groups (0 = invariant holds).
    pub fn conflicted_groups(&self, server: &CmServer) -> Result<u64, ScaddarError> {
        let mut conflicts = 0;
        for (&id, og) in &self.objects {
            let placements = server.engine().locate_all(id)?;
            for members in &og.groups {
                let mut disks: Vec<DiskIndex> =
                    members.iter().map(|&b| placements[b as usize]).collect();
                disks.sort_unstable();
                let len_before = disks.len();
                disks.dedup();
                if disks.len() != len_before {
                    conflicts += 1;
                }
            }
        }
        Ok(conflicts)
    }

    /// Repairs the invariant after a scaling operation: conflicted
    /// members are pulled out of their groups and regrouped greedily.
    /// Returns the repair traffic.
    pub fn repair(&mut self, server: &CmServer) -> Result<RepairStats, ScaddarError> {
        let capacity = (self.group_size - 1) as usize;
        let mut stats = RepairStats::default();
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        for id in ids {
            let placements = server.engine().locate_all(id)?;
            let og = self.objects.get_mut(&id).expect("known object");
            // 1. Evict duplicate-disk members (keep the first per disk).
            let mut evicted: Vec<u64> = Vec::new();
            for members in og.groups.iter_mut() {
                let mut seen: Vec<DiskIndex> = Vec::with_capacity(members.len());
                let mut keep = Vec::with_capacity(members.len());
                let mut lost_member = false;
                for &b in members.iter() {
                    let d = placements[b as usize];
                    if seen.contains(&d) {
                        evicted.push(b);
                        lost_member = true;
                    } else {
                        seen.push(d);
                        keep.push(b);
                    }
                }
                if lost_member {
                    stats.parity_rewrites += 1; // the shrunken group's parity
                }
                *members = keep;
            }
            if evicted.is_empty() {
                continue;
            }
            stats.regrouped_blocks += evicted.len() as u64;
            // 2. Reinsert evicted members greedily into compatible groups.
            let mut touched: Vec<u32> = Vec::new();
            for b in evicted {
                let disk = placements[b as usize];
                let slot = og.groups.iter().position(|members| {
                    members.len() < capacity
                        && members.iter().all(|&m| placements[m as usize] != disk)
                });
                let gid = match slot {
                    Some(g) => g as u32,
                    None => {
                        og.groups.push(Vec::new());
                        (og.groups.len() - 1) as u32
                    }
                };
                og.groups[gid as usize].push(b);
                og.member_of[b as usize] = gid;
                if !touched.contains(&gid) {
                    touched.push(gid);
                    stats.parity_rewrites += 1; // the grown group's parity
                }
            }
        }
        Ok(stats)
    }

    /// Availability under a failure set: a data block is readable if its
    /// own disk survives, or if every *other* member of its group
    /// survives (XOR reconstruction; parity disks are modelled as
    /// surviving-by-construction because they are placed with the same
    /// distinct-disk probe — the pessimistic case for the static scheme,
    /// optimistic by at most one disk here, noted in E18).
    pub fn availability(
        &self,
        server: &CmServer,
        failed: &[DiskIndex],
    ) -> Result<(u64, u64), ScaddarError> {
        let mut readable = 0u64;
        let mut lost = 0u64;
        for (&id, og) in &self.objects {
            let placements = server.engine().locate_all(id)?;
            let down = |b: u64| failed.contains(&placements[b as usize]);
            for (block, &gid) in og.member_of.iter().enumerate() {
                let block = block as u64;
                if !down(block) {
                    readable += 1;
                    continue;
                }
                let siblings_ok = og.groups[gid as usize]
                    .iter()
                    .all(|&m| m == block || !down(m));
                if siblings_ok {
                    readable += 1;
                } else {
                    lost += 1;
                }
            }
        }
        Ok((readable, lost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use scaddar_core::ScalingOp;

    fn server(disks: u32, blocks: u64) -> CmServer {
        let mut s = CmServer::new(ServerConfig::new(disks).with_catalog_seed(64)).unwrap();
        s.add_object(blocks).unwrap();
        s
    }

    #[test]
    fn build_satisfies_the_invariant() {
        let s = server(10, 8_000);
        let layer = DeclusteredParity::build(&s, 5).unwrap();
        assert_eq!(layer.conflicted_groups(&s).unwrap(), 0);
        // Storage overhead near g/(g-1) = 1.25 (tail groups add a bit).
        let overhead = layer.storage_overhead(&s);
        assert!((1.24..1.30).contains(&overhead), "overhead {overhead}");
        assert_eq!(layer.table_bytes(), 8_000 * 4);
    }

    #[test]
    fn single_failure_loses_nothing_after_build() {
        let s = server(10, 5_000);
        let layer = DeclusteredParity::build(&s, 4).unwrap();
        for d in 0..10 {
            let (readable, lost) = layer.availability(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "disk {d}");
            assert_eq!(readable, 5_000);
        }
    }

    #[test]
    fn scaling_conflicts_and_repair_restores_invariant() {
        let mut s = server(10, 8_000);
        let mut layer = DeclusteredParity::build(&s, 5).unwrap();
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        let conflicts = layer.conflicted_groups(&s).unwrap();
        assert!(conflicts > 0, "an addition should break some groups");
        let stats = layer.repair(&s).unwrap();
        assert!(stats.regrouped_blocks > 0);
        assert!(stats.parity_rewrites > 0);
        assert_eq!(layer.conflicted_groups(&s).unwrap(), 0);
        // And single-failure safety is back.
        for d in 0..12 {
            let (_, lost) = layer.availability(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "disk {d} after repair");
        }
    }

    #[test]
    fn repair_traffic_is_bounded_by_movement() {
        // Only moved blocks (plus their displaced group-mates) can need
        // regrouping; the repair must not reshuffle the world.
        let mut s = server(12, 20_000);
        let mut layer = DeclusteredParity::build(&s, 4).unwrap();
        let moved = s.scale_offline(ScalingOp::Add { count: 1 }).unwrap();
        let stats = layer.repair(&s).unwrap();
        assert!(
            stats.regrouped_blocks <= moved,
            "regrouped {} > moved {moved}",
            stats.regrouped_blocks
        );
    }

    #[test]
    fn removal_then_repair() {
        let mut s = server(9, 6_000);
        let mut layer = DeclusteredParity::build(&s, 4).unwrap();
        s.scale_offline(ScalingOp::remove_one(2)).unwrap();
        layer.repair(&s).unwrap();
        assert_eq!(layer.conflicted_groups(&s).unwrap(), 0);
        let (readable, lost) = layer.availability(&s, &[DiskIndex(0)]).unwrap();
        assert_eq!((readable, lost), (6_000, 0));
    }

    #[test]
    #[should_panic(expected = "cannot decluster")]
    fn group_larger_than_array_is_rejected() {
        let s = server(3, 100);
        let _ = DeclusteredParity::build(&s, 5);
    }
}
