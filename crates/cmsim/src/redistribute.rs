//! The online redistribution executor.
//!
//! The paper's central service requirement (§1): scaling must happen
//! "without interruption to the activity of the CM server" — no downtime,
//! no broken streams. The executor models that: a scaling operation's
//! [`MovePlan`](scaddar_core::MovePlan) becomes a queue of *pending
//! moves* executed over many rounds, each move consuming one unit of
//! bandwidth on its source disk and one on its target disk, competing
//! with (but never preempting) stream service.
//!
//! While a move is pending, reads are served from the block's *current*
//! physical disk (the block store); once executed, from the new one. The
//! engine's `AF()` answers are thus eventually consistent with residency,
//! and the server layer resolves reads through the store.

use scaddar_baselines::PhysicalDiskId;
use scaddar_core::BlockRef;
use std::collections::HashMap;
use std::collections::VecDeque;

/// One queued block move, in physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMove {
    /// The block to move.
    pub block: BlockRef,
    /// Source physical disk.
    pub from: PhysicalDiskId,
    /// Target physical disk.
    pub to: PhysicalDiskId,
}

/// Executes queued moves under per-disk per-round bandwidth budgets.
#[derive(Debug, Clone, Default)]
pub struct RedistributionExecutor {
    queue: VecDeque<PendingMove>,
}

impl RedistributionExecutor {
    /// An idle executor.
    pub fn new() -> Self {
        RedistributionExecutor::default()
    }

    /// Enqueues a batch of moves (one scaling operation's plan).
    pub fn enqueue<I: IntoIterator<Item = PendingMove>>(&mut self, moves: I) {
        self.queue.extend(moves);
    }

    /// Pending move count.
    pub fn backlog(&self) -> u64 {
        self.queue.len() as u64
    }

    /// True when no moves are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// The pending moves, in execution order (for scrubbing and
    /// introspection).
    pub fn pending(&self) -> impl Iterator<Item = &PendingMove> {
        self.queue.iter()
    }

    /// Executes up to the per-disk budgets' worth of moves this round.
    ///
    /// `budget` maps each live physical disk to the number of block
    /// transfers it may participate in this round (as source *or*
    /// target). Returns the executed moves, in queue order; moves whose
    /// source or target is out of budget are deferred, preserving their
    /// relative order (head-of-line blocking is deliberate — it models a
    /// sequential sweep and keeps the executor fair across disks).
    pub fn execute_round(&mut self, budget: &mut HashMap<PhysicalDiskId, u32>) -> Vec<PendingMove> {
        let mut executed = Vec::new();
        let mut deferred = VecDeque::new();
        while let Some(mv) = self.queue.pop_front() {
            if mv.from == mv.to {
                // A local copy (e.g. materializing a reconstructed block
                // from a mirror co-resident with the target): one disk
                // operation on a single spindle.
                if budget.get(&mv.to).copied().unwrap_or(0) > 0 {
                    *budget.get_mut(&mv.to).expect("checked") -= 1;
                    executed.push(mv);
                } else {
                    deferred.push_back(mv);
                }
                continue;
            }
            let src_ok = budget.get(&mv.from).copied().unwrap_or(0) > 0;
            let dst_ok = budget.get(&mv.to).copied().unwrap_or(0) > 0;
            if src_ok && dst_ok {
                *budget.get_mut(&mv.from).expect("checked") -= 1;
                *budget.get_mut(&mv.to).expect("checked") -= 1;
                executed.push(mv);
            } else {
                deferred.push_back(mv);
                // If *every* remaining budget is zero we could stop, but
                // other moves may touch disks with budget left; keep
                // scanning — queue lengths are bounded by the plan size.
            }
        }
        self.queue = deferred;
        executed
    }

    /// Rewrites the *source* of pending moves (e.g. when a source disk
    /// fails and the data must instead be read from its mirror). The
    /// callback returns the new source for moves it wants to redirect.
    /// Returns how many moves were redirected.
    pub fn resource_moves<F>(&mut self, mut new_source: F) -> u64
    where
        F: FnMut(&PendingMove) -> Option<PhysicalDiskId>,
    {
        let mut changed = 0;
        for mv in &mut self.queue {
            if let Some(from) = new_source(mv) {
                if from != mv.from {
                    mv.from = from;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Drops pending moves for blocks that no longer exist (object
    /// deletion during redistribution). Returns how many were dropped.
    pub fn cancel_blocks<F: Fn(BlockRef) -> bool>(&mut self, gone: F) -> u64 {
        let before = self.queue.len();
        self.queue.retain(|mv| !gone(mv.block));
        (before - self.queue.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::ObjectId;

    fn mv(b: u64, from: u64, to: u64) -> PendingMove {
        PendingMove {
            block: BlockRef {
                object: ObjectId(0),
                block: b,
            },
            from: PhysicalDiskId(from),
            to: PhysicalDiskId(to),
        }
    }

    fn budget(pairs: &[(u64, u32)]) -> HashMap<PhysicalDiskId, u32> {
        pairs.iter().map(|&(d, b)| (PhysicalDiskId(d), b)).collect()
    }

    #[test]
    fn executes_within_budget() {
        let mut ex = RedistributionExecutor::new();
        ex.enqueue([mv(0, 0, 1), mv(1, 0, 1), mv(2, 0, 1)]);
        let mut b = budget(&[(0, 2), (1, 2)]);
        let done = ex.execute_round(&mut b);
        assert_eq!(done.len(), 2);
        assert_eq!(ex.backlog(), 1);
        // Budgets fully consumed.
        assert_eq!(b[&PhysicalDiskId(0)], 0);
        assert_eq!(b[&PhysicalDiskId(1)], 0);
    }

    #[test]
    fn independent_disks_proceed_despite_blocked_head() {
        let mut ex = RedistributionExecutor::new();
        ex.enqueue([mv(0, 0, 1), mv(1, 2, 3)]);
        // Disk 0 has no budget; the 2->3 move must still run.
        let mut b = budget(&[(0, 0), (1, 5), (2, 5), (3, 5)]);
        let done = ex.execute_round(&mut b);
        assert_eq!(done, vec![mv(1, 2, 3)]);
        assert_eq!(ex.backlog(), 1);
    }

    #[test]
    fn drains_over_multiple_rounds() {
        let mut ex = RedistributionExecutor::new();
        ex.enqueue((0..10).map(|i| mv(i, 0, 1)));
        let mut rounds = 0;
        while !ex.is_idle() {
            let mut b = budget(&[(0, 3), (1, 3)]);
            let done = ex.execute_round(&mut b);
            assert!(!done.is_empty(), "no progress");
            rounds += 1;
        }
        assert_eq!(rounds, 4, "10 moves at 3/round: 4 rounds");
    }

    #[test]
    fn unknown_disk_has_zero_budget() {
        let mut ex = RedistributionExecutor::new();
        ex.enqueue([mv(0, 7, 1)]);
        let mut b = budget(&[(1, 5)]);
        assert!(ex.execute_round(&mut b).is_empty());
        assert_eq!(ex.backlog(), 1);
    }

    #[test]
    fn cancel_drops_matching_blocks() {
        let mut ex = RedistributionExecutor::new();
        ex.enqueue((0..6).map(|i| mv(i, 0, 1)));
        let dropped = ex.cancel_blocks(|b| b.block % 2 == 0);
        assert_eq!(dropped, 3);
        assert_eq!(ex.backlog(), 3);
    }
}
