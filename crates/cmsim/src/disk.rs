//! The disk array: stable physical disks behind SCADDAR's dense logical
//! indices.
//!
//! SCADDAR's arithmetic lives in a world of logical indices `0..N_j` that
//! renumber on removal; an operator lives in a world of physical spindles
//! with serial numbers. [`DiskArray`] keeps the two aligned, reusing the
//! same rank-renumbering convention as the core (`new()` in the paper).

use scaddar_baselines::{PhysicalDiskId, PhysicalMap};
use scaddar_core::{DiskIndex, ScalingError, ScalingOp};
use std::collections::HashMap;

/// A physical disk's static properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskSpec {
    /// Blocks the disk can deliver per service round.
    pub bandwidth: u32,
    /// Block capacity.
    pub capacity: u64,
}

/// The array of live physical disks with a logical ordering.
#[derive(Debug, Clone)]
pub struct DiskArray {
    map: PhysicalMap,
    specs: HashMap<PhysicalDiskId, DiskSpec>,
    default_spec: DiskSpec,
}

impl DiskArray {
    /// Creates an array of `initial` identical disks.
    pub fn new(initial: u32, spec: DiskSpec) -> Self {
        let map = PhysicalMap::new(initial);
        let mut specs = HashMap::new();
        for l in 0..initial {
            specs.insert(map.physical(l), spec);
        }
        DiskArray {
            map,
            specs,
            default_spec: spec,
        }
    }

    /// Number of live disks.
    pub fn disks(&self) -> u32 {
        self.map.disks()
    }

    /// Physical identity of a logical index.
    pub fn physical(&self, logical: DiskIndex) -> PhysicalDiskId {
        self.map.physical(logical.0)
    }

    /// The spec of a live physical disk.
    pub fn spec(&self, id: PhysicalDiskId) -> DiskSpec {
        self.specs[&id]
    }

    /// Live physical ids in logical order.
    pub fn physical_ids(&self) -> Vec<PhysicalDiskId> {
        (0..self.disks()).map(|l| self.map.physical(l)).collect()
    }

    /// Applies a scaling operation. New disks take the default spec
    /// (homogeneous array; heterogeneity is modelled one level up, in
    /// [`crate::hetero`]). Removed disks' specs are dropped.
    pub fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let before: Vec<PhysicalDiskId> = self.physical_ids();
        self.map.apply(op)?;
        match op {
            ScalingOp::Add { .. } => {
                for l in 0..self.disks() {
                    let id = self.map.physical(l);
                    self.specs.entry(id).or_insert(self.default_spec);
                }
            }
            ScalingOp::Remove { .. } => {
                let after: std::collections::HashSet<PhysicalDiskId> =
                    self.physical_ids().into_iter().collect();
                for id in before {
                    if !after.contains(&id) {
                        self.specs.remove(&id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Total stream bandwidth of the array (blocks per round).
    pub fn total_bandwidth(&self) -> u64 {
        self.physical_ids()
            .iter()
            .map(|id| u64::from(self.specs[id].bandwidth))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: DiskSpec = DiskSpec {
        bandwidth: 32,
        capacity: 1_000,
    };

    #[test]
    fn identity_survives_scaling() {
        let mut a = DiskArray::new(4, SPEC);
        let ids0 = a.physical_ids();
        a.apply(&ScalingOp::Add { count: 2 }).unwrap();
        a.apply(&ScalingOp::remove_one(1)).unwrap();
        let ids = a.physical_ids();
        assert_eq!(ids.len(), 5);
        // Physical 1 gone, everything else intact, new ids appended.
        assert!(!ids.contains(&ids0[1]));
        assert!(ids.contains(&ids0[0]));
        assert_eq!(a.disks(), 5);
        assert_eq!(a.total_bandwidth(), 5 * 32);
    }

    #[test]
    fn specs_follow_membership() {
        let mut a = DiskArray::new(2, SPEC);
        a.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let new_id = a.physical(DiskIndex(2));
        assert_eq!(a.spec(new_id), SPEC);
        a.apply(&ScalingOp::remove_one(0)).unwrap();
        assert_eq!(a.physical_ids().len(), 2);
    }

    #[test]
    fn invalid_op_is_rejected() {
        let mut a = DiskArray::new(2, SPEC);
        assert!(a.apply(&ScalingOp::remove_one(5)).is_err());
        assert_eq!(a.disks(), 2);
    }
}
