//! Admission control: how many concurrent streams the server can promise
//! to serve.
//!
//! With random placement there are no deterministic per-disk guarantees —
//! service quality is statistical (§2: "random placement techniques are
//! modeled statistically"). The controller admits streams while
//!
//! 1. expected per-disk demand stays below a target utilization of disk
//!    bandwidth (headroom for the binomial fluctuation of which disks a
//!    round's requests hit, and for redistribution traffic), and
//! 2. server buffer memory suffices: the round-based display model
//!    double-buffers each stream (one block playing, one being fetched),
//!    so each admitted stream pins two blocks of RAM.

/// Statistical admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionController {
    /// Fraction of total disk bandwidth the controller will commit
    /// (0..=1).
    pub target_utilization: f64,
    /// Server buffer memory in blocks, if memory-constrained.
    pub memory_blocks: Option<u64>,
}

impl AdmissionController {
    /// A bandwidth-only controller committing up to `target_utilization`.
    pub fn new(target_utilization: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_utilization),
            "utilization must be a fraction"
        );
        AdmissionController {
            target_utilization,
            memory_blocks: None,
        }
    }

    /// Adds a buffer-memory budget (in blocks). Each stream pins two.
    pub fn with_memory(mut self, blocks: u64) -> Self {
        self.memory_blocks = Some(blocks);
        self
    }

    /// Maximum streams admitted for an array of `disks` disks with
    /// `bandwidth` blocks/round each.
    pub fn capacity(&self, disks: u32, bandwidth: u32) -> u64 {
        let total = u64::from(disks) * u64::from(bandwidth);
        let by_bandwidth = (total as f64 * self.target_utilization).floor() as u64;
        match self.memory_blocks {
            Some(mem) => by_bandwidth.min(mem / 2),
            None => by_bandwidth,
        }
    }

    /// Admit another stream given the current active count?
    pub fn admit(&self, active: u64, disks: u32, bandwidth: u32) -> bool {
        active < self.capacity(disks, bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_disks() {
        let c = AdmissionController::new(0.75);
        assert_eq!(c.capacity(4, 32), 96);
        assert_eq!(c.capacity(8, 32), 192);
        assert!(c.admit(95, 4, 32));
        assert!(!c.admit(96, 4, 32));
    }

    #[test]
    fn full_utilization_uses_everything() {
        let c = AdmissionController::new(1.0);
        assert_eq!(c.capacity(2, 10), 20);
    }

    #[test]
    fn memory_caps_admission_when_scarcer_than_bandwidth() {
        // Bandwidth alone admits 96; 100 blocks of RAM admit only 50.
        let c = AdmissionController::new(0.75).with_memory(100);
        assert_eq!(c.capacity(4, 32), 50);
        // Ample memory defers to bandwidth.
        let c = AdmissionController::new(0.75).with_memory(10_000);
        assert_eq!(c.capacity(4, 32), 96);
        // Degenerate: one block of RAM cannot double-buffer anything.
        let c = AdmissionController::new(1.0).with_memory(1);
        assert_eq!(c.capacity(4, 32), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_over_unity() {
        AdmissionController::new(1.5);
    }
}
