//! The simulated continuous media server: SCADDAR placement + physical
//! disks + block residency + streams + online redistribution, advanced
//! one service round at a time.
//!
//! The server realizes the paper's deployment story end to end:
//!
//! 1. objects are ingested block-by-block to wherever `AF()` points;
//! 2. streams consume one block per round, served from the block's
//!    *actual* residency (which lags `AF()` during redistribution);
//! 3. a scaling operation plans its moves with `RF()` and hands them to
//!    the [`RedistributionExecutor`], which drains them over subsequent
//!    rounds within per-disk bandwidth budgets — streams keep playing;
//! 4. metrics record whether they actually kept playing (hiccups).

use crate::admission::AdmissionController;
use crate::compaction::{CompactionProgress, CompactionState};
use crate::config::ServerConfig;
use crate::disk::{DiskArray, DiskSpec};
use crate::metrics::{Metrics, RoundRecord};
use crate::redistribute::{PendingMove, RedistributionExecutor};
use crate::stats::ServerStats;
use crate::store::BlockStore;
use crate::stream::{PlayState, Stream, StreamId};
use scaddar_baselines::PhysicalDiskId;
use scaddar_core::{
    BlockRef, DiskIndex, ObjectId, Scaddar, ScaddarConfig, ScaddarError, ScalingOp,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Errors from server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Placement-engine error.
    Engine(ScaddarError),
    /// A disk would exceed its block capacity.
    DiskFull(PhysicalDiskId),
    /// Unknown stream id.
    UnknownStream(StreamId),
    /// Admission control rejected the stream.
    AdmissionRejected,
    /// A metadata snapshot was requested while redistribution is pending.
    RedistributionPending,
    /// A snapshot failed to decode.
    Snapshot(String),
    /// The operation conflicts with an in-flight rehash compaction
    /// (scaling, snapshots, and a second compaction must wait for the
    /// generation flip).
    CompactionActive,
    /// A rehash compaction was requested while failed disks are still
    /// in the array (they cannot receive their new-generation share;
    /// remove them first — reconstruction — then compact).
    FailedDisksPresent,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Engine(e) => write!(f, "placement engine: {e}"),
            ServerError::DiskFull(d) => write!(f, "disk {} is full", d.0),
            ServerError::UnknownStream(s) => write!(f, "unknown stream {}", s.0),
            ServerError::AdmissionRejected => write!(f, "admission control rejected the stream"),
            ServerError::RedistributionPending => {
                write!(
                    f,
                    "cannot snapshot while redistribution is pending — drain first"
                )
            }
            ServerError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
            ServerError::CompactionActive => {
                write!(f, "a rehash compaction is in flight — wait for the flip")
            }
            ServerError::FailedDisksPresent => {
                write!(
                    f,
                    "failed disk(s) still in the array — remove them before compacting"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ScaddarError> for ServerError {
    fn from(e: ScaddarError) -> Self {
        ServerError::Engine(e)
    }
}

/// The simulated CM server.
#[derive(Debug, Clone)]
pub struct CmServer {
    config: ServerConfig,
    engine: Scaddar,
    disks: DiskArray,
    store: BlockStore,
    streams: Vec<Stream>,
    next_stream: u64,
    executor: RedistributionExecutor,
    metrics: Metrics,
    admission: AdmissionController,
    /// Disks removed from the logical array but still spinning until
    /// their blocks are copied off (§1: removal is known a priori, so
    /// the data is redistributed *before* the disk is pulled). They keep
    /// serving reads and participating in move bandwidth.
    draining: HashMap<PhysicalDiskId, DiskSpec>,
    /// Disks that failed *unexpectedly* (§1 distinguishes this from
    /// planned removal). Their data is gone; reads are served from the
    /// §6 mirror until the operator removes the disk, and removal moves
    /// reconstruct from mirrors.
    failed: HashSet<PhysicalDiskId>,
    /// In-flight rehash compaction, if any: the staging next-generation
    /// engine plus the migrated set (see [`crate::compaction`]). While
    /// set, lookups dual-serve (migrated blocks answer from the staging
    /// generation) and scaling/snapshots are refused.
    compaction: Option<CompactionState>,
    stats: Option<Arc<ServerStats>>,
}

impl CmServer {
    /// Builds an empty server per the configuration.
    pub fn new(config: ServerConfig) -> Result<Self, ServerError> {
        let engine = Scaddar::new(
            ScaddarConfig::new(config.initial_disks)
                .with_bits(config.bits)
                .with_rng(config.rng)
                .with_catalog_seed(config.catalog_seed)
                .with_epsilon(config.epsilon),
        )?;
        Ok(CmServer {
            engine,
            disks: DiskArray::new(
                config.initial_disks,
                DiskSpec {
                    bandwidth: config.disk_bandwidth,
                    capacity: config.disk_capacity,
                },
            ),
            store: BlockStore::new(),
            streams: Vec::new(),
            next_stream: 0,
            executor: RedistributionExecutor::new(),
            metrics: Metrics::with_retention(config.metrics_retention),
            admission: AdmissionController::new(0.8),
            draining: HashMap::new(),
            failed: HashSet::new(),
            compaction: None,
            stats: None,
            config,
        })
    }

    /// Attaches server metric handles: subsequent rounds, scaling
    /// operations, and faults record into the shared registry (and
    /// [`Metrics`] mirrors its per-round totals there too).
    pub fn attach_stats(&mut self, stats: Arc<ServerStats>) {
        self.metrics.attach_stats(stats.clone());
        self.stats = Some(stats);
    }

    /// The attached server metric handles, if any.
    pub fn stats(&self) -> Option<&Arc<ServerStats>> {
        self.stats.as_ref()
    }

    /// The placement engine (read-only). During a compaction this is
    /// the *old* generation; migrated blocks answer from the staging
    /// engine via [`CmServer::locate_current`].
    pub fn engine(&self) -> &Scaddar {
        &self.engine
    }

    /// The static configuration (read-only) — trigger policies read the
    /// auto-compaction knobs from here.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The disk array (read-only).
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    /// The block store (read-only).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Pending redistribution moves.
    pub fn backlog(&self) -> u64 {
        self.executor.backlog()
    }

    /// Blocks with a queued (not yet executed) redistribution move.
    pub fn pending_moves(&self) -> Vec<BlockRef> {
        self.executor.pending().map(|mv| mv.block).collect()
    }

    /// Serializes placement metadata (catalog + scaling log) for durable
    /// storage. Only callable when no redistribution is pending — a real
    /// server quiesces before checkpointing, and a snapshot taken
    /// mid-drain would teleport in-transit blocks on restore.
    pub fn snapshot(&self) -> Result<Vec<u8>, ServerError> {
        if self.compaction.is_some() {
            return Err(ServerError::CompactionActive);
        }
        if !self.executor.is_idle() {
            return Err(ServerError::RedistributionPending);
        }
        Ok(self.engine.snapshot())
    }

    /// Rebuilds a server from a [`CmServer::snapshot`]: the engine is
    /// decoded and the block store re-derived from `AF()` (valid because
    /// snapshots are only taken at consistency points). Runtime knobs
    /// (bandwidths) come from `config`; placement state comes from the
    /// snapshot.
    pub fn restore(config: ServerConfig, bytes: &[u8]) -> Result<Self, ServerError> {
        let engine = Scaddar::from_snapshot(bytes, config.epsilon)
            .map_err(|e| ServerError::Snapshot(e.to_string()))?;
        let mut disks = DiskArray::new(
            engine.log().initial_disks(),
            DiskSpec {
                bandwidth: config.disk_bandwidth,
                capacity: config.disk_capacity,
            },
        );
        // Replay the logged operations so physical identities line up
        // with a server that lived through the history.
        for record in engine.log().records().to_vec() {
            let op = match record.action() {
                scaddar_core::RecordAction::Added { count } => ScalingOp::Add { count: *count },
                scaddar_core::RecordAction::Removed(set) => ScalingOp::Remove {
                    disks: set.indices().to_vec(),
                },
            };
            disks
                .apply(&op)
                .expect("snapshot history was validated on decode");
        }
        let mut store = BlockStore::new();
        for obj in engine.catalog().objects().to_vec() {
            let placements = engine.locate_all(obj.id).expect("catalog object");
            for (block, logical) in placements.into_iter().enumerate() {
                store.ingest(
                    BlockRef {
                        object: obj.id,
                        block: block as u64,
                    },
                    disks.physical(logical),
                );
            }
        }
        Ok(CmServer {
            engine,
            disks,
            store,
            streams: Vec::new(),
            next_stream: 0,
            executor: RedistributionExecutor::new(),
            metrics: Metrics::with_retention(config.metrics_retention),
            admission: AdmissionController::new(0.8),
            draining: HashMap::new(),
            failed: HashSet::new(),
            compaction: None,
            stats: None,
            config,
        })
    }

    /// Simulates an **unexpected failure** of the disk at logical index
    /// `logical`: its data becomes unreadable immediately. Reads fall
    /// back to the §6 mirror (`f(N) = N/2` offset); the operator should
    /// follow up with a `scale(Remove)` of the same disk, whose
    /// reconstruction moves will read from mirrors too. Returns the
    /// failed physical id.
    pub fn fail_disk(&mut self, logical: scaddar_core::DiskIndex) -> PhysicalDiskId {
        let id = self.disks.physical(logical);
        self.failed.insert(id);
        if let Some(stats) = &self.stats {
            stats.disk_failures.inc();
        }
        // Mid-compaction, migration moves *into* the dead disk would
        // never drain (a dead disk has no move bandwidth) and would
        // wedge the cutover. They complete here as metadata-only
        // relocations instead: the block's new-generation home is the
        // dead disk, its data stays recoverable through the §6 mirror
        // — exactly the steady state a failed disk has outside
        // compaction (resident but unreadable, mirror-served). No
        // bandwidth is charged because nothing can be written.
        if let Some(c) = self.compaction.as_mut() {
            let stranded: Vec<PendingMove> = self
                .executor
                .pending()
                .filter(|mv| mv.to == id)
                .copied()
                .collect();
            self.executor
                .cancel_blocks(|b| stranded.iter().any(|mv| mv.block == b));
            for mv in stranded {
                if let Some(stored) = self.store.locate(mv.block) {
                    if stored != id {
                        self.store.relocate(mv.block, stored, id);
                    }
                }
                c.migrated.insert(mv.block);
            }
        }
        // Pending moves sourced from the dead disk must now read from
        // the mirror of the block's *current placement* (the data's
        // replica location). During a compaction every pending move's
        // block is still un-migrated, so the old-generation engine is
        // the right mirror basis either way.
        let engine = &self.engine;
        let disks = &self.disks;
        let n = disks.disks();
        self.executor.resource_moves(|mv| {
            if mv.from == id {
                let af = engine.locate(mv.block.object, mv.block.block).ok()?;
                Some(disks.physical(crate::faults::mirror_of(af, n)))
            } else {
                None
            }
        });
        // Completing stranded moves may have emptied the queue.
        self.refresh_compaction_gauges();
        self.maybe_finish_compaction();
        id
    }

    /// Physical disks currently marked failed.
    pub fn failed_disks(&self) -> Vec<PhysicalDiskId> {
        let mut ids: Vec<PhysicalDiskId> = self.failed.iter().copied().collect();
        ids.sort();
        ids
    }

    /// Removed disks still draining their blocks.
    pub fn draining_disks(&self) -> Vec<PhysicalDiskId> {
        let mut ids: Vec<PhysicalDiskId> = self.draining.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Currently active (not Done) streams.
    pub fn active_streams(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.state != PlayState::Done)
            .count()
    }

    /// Ingests a new object of `blocks` blocks. Every block is written
    /// where `AF()` currently points. Fails (and rolls back the catalog
    /// entry) if any target disk is at capacity.
    pub fn add_object(&mut self, blocks: u64) -> Result<ObjectId, ServerError> {
        let id = self.engine.add_object(blocks);
        for b in 0..blocks {
            let logical = self.engine.locate(id, b).expect("fresh object block");
            let disk = self.disks.physical(logical);
            if self.store.blocks_on(disk) >= self.disks.spec(disk).capacity {
                // Roll back: evict what we ingested, drop the object.
                for undo in 0..b {
                    self.store.evict(BlockRef {
                        object: id,
                        block: undo,
                    });
                }
                self.engine.remove_object(id).expect("object just added");
                return Err(ServerError::DiskFull(disk));
            }
            self.store.ingest(
                BlockRef {
                    object: id,
                    block: b,
                },
                disk,
            );
        }
        // Object churn during a compaction: the staging generation must
        // carry the same catalog, so register the object there too (ids
        // advance in lockstep — both catalogs share `next_id`) and
        // schedule its blocks toward their new-generation placement.
        if let Some(c) = &mut self.compaction {
            let staged = c.staging.add_object(blocks);
            debug_assert_eq!(staged, id, "generations allocate ids in lockstep");
            c.total += blocks;
            let mut moves = Vec::new();
            for b in 0..blocks {
                let blockref = BlockRef {
                    object: id,
                    block: b,
                };
                let stored = self.store.locate(blockref).expect("just ingested");
                let target = self
                    .disks
                    .physical(c.staging.locate(id, b).expect("staged block"));
                if stored == target {
                    c.migrated.insert(blockref);
                } else {
                    moves.push(PendingMove {
                        block: blockref,
                        from: stored,
                        to: target,
                    });
                }
            }
            self.executor.enqueue(moves);
        }
        Ok(id)
    }

    /// Deletes an object: evicts its blocks and cancels its pending
    /// moves.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<(), ServerError> {
        let obj = self.engine.remove_object(id)?;
        for b in 0..obj.blocks {
            self.store.evict(BlockRef {
                object: id,
                block: b,
            });
        }
        if let Some(c) = &mut self.compaction {
            c.staging
                .remove_object(id)
                .expect("generations hold the same catalog");
            c.migrated.retain(|blk| blk.object != id);
            c.total = c.total.saturating_sub(obj.blocks);
        }
        self.executor.cancel_blocks(|blk| blk.object == id);
        let before = self.streams.len();
        self.streams.retain(|s| s.object != id);
        if let Some(stats) = &self.stats {
            stats
                .streams_closed
                .add((before - self.streams.len()) as u64);
        }
        Ok(())
    }

    /// Opens a stream on `object`, subject to admission control.
    pub fn open_stream(&mut self, object: ObjectId) -> Result<StreamId, ServerError> {
        let blocks = self
            .engine
            .catalog()
            .object(object)
            .ok_or(ServerError::Engine(ScaddarError::UnknownObject(object)))?
            .blocks;
        let active = self.active_streams() as u64;
        if !self
            .admission
            .admit(active, self.disks.disks(), self.config.disk_bandwidth)
        {
            return Err(ServerError::AdmissionRejected);
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.streams.push(Stream::new(id, object, blocks));
        if let Some(stats) = &self.stats {
            stats.streams_opened.inc();
        }
        Ok(id)
    }

    /// Mutable access to a stream for VCR operations.
    pub fn stream_mut(&mut self, id: StreamId) -> Result<&mut Stream, ServerError> {
        self.streams
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or(ServerError::UnknownStream(id))
    }

    /// Read access to a stream.
    pub fn stream(&self, id: StreamId) -> Option<&Stream> {
        self.streams.iter().find(|s| s.id == id)
    }

    /// A copy of all live streams (they are small `Copy` structs); used
    /// by drivers that need to iterate while mutating.
    pub fn streams_snapshot(&self) -> Vec<Stream> {
        self.streams.clone()
    }

    /// §4.3 guard, surfaced: would `op` keep fairness within `eps`?
    pub fn next_op_is_safe(&self, op: &ScalingOp) -> bool {
        match op.disks_after(self.disks.disks()) {
            Ok(after) => self.engine.next_op_is_safe(after),
            Err(_) => false,
        }
    }

    /// Applies a scaling operation **online**: the move plan is queued,
    /// not executed; streams keep playing while subsequent [`Self::tick`]
    /// calls drain the queue. Returns the number of queued moves.
    ///
    /// Blocks that already had a pending move are re-planned from their
    /// *actual* current residency, so at most one pending move exists per
    /// block at any time.
    pub fn scale(&mut self, op: ScalingOp) -> Result<u64, ServerError> {
        if self.compaction.is_some() {
            // Scaling mid-compaction would have to re-plan against two
            // generations at once; operators wait for the flip (the
            // compaction is itself the response to too much scaling).
            return Err(ServerError::CompactionActive);
        }
        let scale_start = self.stats.as_ref().map(|s| s.clock.now_ns());
        let plan = self.engine.scale(op.clone())?;
        // A removed disk enters the *draining* state: it leaves the
        // logical array immediately (AF() no longer maps anything to it)
        // but keeps spinning — serving stale reads and sourcing moves —
        // until its last block is copied off.
        if let ScalingOp::Remove { disks } = &op {
            for &logical in disks {
                let id = self.disks.physical(scaddar_core::DiskIndex(logical));
                // A failed disk has nothing to drain; it is simply
                // pulled. A healthy disk drains per the §1 discipline.
                if !self.failed.contains(&id) {
                    self.draining.insert(id, self.disks.spec(id));
                }
            }
        }
        // Snapshot the pre-op logical -> physical mapping: reconstruction
        // sources (mirrors) are defined against the pre-op epoch.
        let pre_physicals: Vec<PhysicalDiskId> = self.disks.physical_ids();
        let n_prev = self.disks.disks();
        self.disks
            .apply(&op)
            .expect("engine accepted the op, the array must too");
        // Drop superseded pending moves for re-planned blocks.
        let replanned: HashSet<BlockRef> = plan.moves.iter().map(|m| m.block).collect();
        self.executor.cancel_blocks(|b| replanned.contains(&b));
        let moves: Vec<PendingMove> = plan
            .moves
            .iter()
            .filter_map(|m| {
                let stored = self
                    .store
                    .locate(m.block)
                    .expect("planned block exists in store");
                let to = self.disks.physical(m.to);
                if self.failed.contains(&stored) {
                    // Reconstruction: data is read from the pre-op
                    // mirror. Keep the move even when mirror == target —
                    // the block must still be materialized there (the
                    // executor treats it as a one-disk local copy).
                    let mirror = crate::faults::mirror_of(m.from, n_prev);
                    Some(PendingMove {
                        block: m.block,
                        from: pre_physicals[mirror.0 as usize],
                        to,
                    })
                } else if stored == to {
                    // Already in place (a replanned block whose earlier
                    // pending move had completed to the same target).
                    None
                } else {
                    Some(PendingMove {
                        block: m.block,
                        from: stored,
                        to,
                    })
                }
            })
            .collect();
        let queued = moves.len() as u64;
        self.executor.enqueue(moves);
        if let (Some(stats), Some(start)) = (&self.stats, scale_start) {
            stats.scale_ops.inc();
            stats.moves_queued.add(queued);
            stats
                .backlog
                .set(self.executor.backlog().min(i64::MAX as u64) as i64);
            stats
                .scale_ns
                .record(stats.clock.now_ns().saturating_sub(start));
        }
        Ok(queued)
    }

    /// Convenience: apply a scaling operation **offline** — queue and
    /// immediately drain it, ignoring bandwidth. Returns moves executed.
    pub fn scale_offline(&mut self, op: ScalingOp) -> Result<u64, ServerError> {
        self.scale(op)?;
        Ok(self.drain_all_moves())
    }

    /// Executes every pending move immediately, ignoring bandwidth.
    fn drain_all_moves(&mut self) -> u64 {
        let mut unlimited: HashMap<PhysicalDiskId, u32> = self
            .disks
            .physical_ids()
            .into_iter()
            .chain(self.draining.keys().copied())
            .map(|d| (d, u32::MAX))
            .collect();
        let executed = self.executor.execute_round(&mut unlimited);
        self.apply_executed(&executed);
        self.purge_drained();
        debug_assert!(self.executor.is_idle());
        executed.len() as u64
    }

    /// Applies executed moves to the store. A move whose source differs
    /// from the stored location is a *reconstruction* (the stored copy
    /// died with a failed disk; the data flowed from a mirror).
    fn apply_executed(&mut self, executed: &[PendingMove]) {
        for mv in executed {
            if self.store.locate(mv.block) == Some(mv.from) {
                self.store.relocate(mv.block, mv.from, mv.to);
            } else {
                self.store.relocate_reconstructed(mv.block, mv.to);
            }
        }
    }

    /// Retires draining disks whose last block has been copied off, and
    /// forgets failed disks that have been pulled from the array and
    /// fully reconstructed — once nothing resides on a removed dead
    /// disk the failure is history, and a later compaction sees a
    /// healthy array again.
    fn purge_drained(&mut self) {
        let store = &self.store;
        self.draining.retain(|&id, _| store.blocks_on(id) > 0);
        let in_array: HashSet<PhysicalDiskId> = self.disks.physical_ids().into_iter().collect();
        self.failed
            .retain(|&id| in_array.contains(&id) || store.blocks_on(id) > 0);
    }

    /// Begins an **online rehash compaction**: opens the next placement
    /// generation (fresh `X_0 mod N` seed, empty scaling log) and
    /// enqueues one move per block whose new-generation placement
    /// differs from its current residency. Subsequent [`Self::tick`]
    /// calls drain the migration within the usual bandwidth budgets
    /// while lookups dual-serve from both generations; the generation
    /// flips atomically the round the last move lands. Returns the
    /// number of queued migration moves.
    ///
    /// Requires an idle executor (a compaction re-plans *every* block,
    /// so in-flight scaling moves must land first) and no compaction
    /// already in flight.
    pub fn begin_compaction(&mut self) -> Result<u64, ServerError> {
        if self.compaction.is_some() {
            return Err(ServerError::CompactionActive);
        }
        if !self.executor.is_idle() {
            return Err(ServerError::RedistributionPending);
        }
        // A rehash at the same N re-assigns ~1/N of all blocks *to*
        // every disk — including a dead one, which can accept nothing.
        // The §6 remedy is to remove the failed disk first (its blocks
        // reconstruct from mirrors onto the survivors) and compact the
        // healthy array; refusing here is what keeps the migration
        // guaranteed to drain.
        if !self.failed.is_empty() {
            return Err(ServerError::FailedDisksPresent);
        }
        let staging = self.engine.open_next_generation();
        let mut migrated = HashSet::new();
        let mut moves = Vec::new();
        for obj in staging.catalog().objects().to_vec() {
            let targets = staging.locate_all(obj.id).expect("staged object");
            for (b, &logical) in targets.iter().enumerate() {
                let blockref = BlockRef {
                    object: obj.id,
                    block: b as u64,
                };
                let stored = self.store.locate(blockref).expect("catalog block stored");
                let target = self.disks.physical(logical);
                if stored == target {
                    migrated.insert(blockref);
                } else {
                    moves.push(PendingMove {
                        block: blockref,
                        from: stored,
                        to: target,
                    });
                }
            }
        }
        let queued = moves.len() as u64;
        self.executor.enqueue(moves);
        let total = self.engine.catalog().total_blocks();
        let generation = staging.generation();
        self.compaction = Some(CompactionState {
            staging,
            migrated,
            total,
        });
        if let Some(stats) = &self.stats {
            stats.compactions_started.inc();
            stats.compaction_active.set(1);
            stats.compaction_target_generation.set(generation as i64);
            stats
                .backlog
                .set(self.executor.backlog().min(i64::MAX as u64) as i64);
        }
        self.refresh_compaction_gauges();
        // An empty catalog (or one whose placements all coincide)
        // finishes immediately.
        self.maybe_finish_compaction();
        Ok(queued)
    }

    /// Progress of the in-flight compaction, if any.
    pub fn compaction_progress(&self) -> Option<CompactionProgress> {
        let c = self.compaction.as_ref()?;
        Some(CompactionProgress {
            from_generation: self.engine.generation(),
            to_generation: c.staging.generation(),
            total_blocks: c.total,
            migrated_blocks: c.migrated.len() as u64,
            backlog: self.executor.backlog(),
        })
    }

    /// True while a compaction is migrating blocks.
    pub fn compaction_active(&self) -> bool {
        self.compaction.is_some()
    }

    /// The serving placement generation (post-flip it reflects the new
    /// generation; during a compaction, still the old one).
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }

    /// Marks compaction moves executed this round as migrated.
    fn note_compaction_executed(&mut self, executed: &[PendingMove]) {
        if let Some(c) = &mut self.compaction {
            // While a compaction is in flight scaling is refused, so
            // every executed move is a migration move.
            for mv in executed {
                c.migrated.insert(mv.block);
            }
        }
    }

    /// Flips to the next generation once every migration move has
    /// landed: the staging engine becomes *the* engine (stats handles
    /// transfer), lookups collapse back to one O(1) hash, and the
    /// fairness budget is full again.
    fn maybe_finish_compaction(&mut self) {
        let done = self
            .compaction
            .as_ref()
            .is_some_and(|_| self.executor.is_idle());
        if !done {
            return;
        }
        let c = self.compaction.take().expect("checked above");
        let mut staging = c.staging;
        debug_assert_eq!(
            c.migrated.len(),
            self.store.len(),
            "flip with unmigrated blocks"
        );
        if let Some(stats) = self.engine.stats() {
            staging.attach_stats(stats.clone());
        }
        self.engine = staging;
        if let Some(stats) = &self.stats {
            stats.compactions_completed.inc();
            stats.compaction_active.set(0);
            stats.compaction_remaining.set(0);
            stats
                .compaction_generation
                .set(self.engine.generation().min(i64::MAX as u64) as i64);
        }
    }

    /// Publishes the compaction progress gauges.
    fn refresh_compaction_gauges(&self) {
        let Some(stats) = &self.stats else { return };
        stats
            .compaction_generation
            .set(self.engine.generation().min(i64::MAX as u64) as i64);
        if let Some(c) = &self.compaction {
            stats
                .compaction_remaining
                .set((c.total.saturating_sub(c.migrated.len() as u64)).min(i64::MAX as u64) as i64);
            stats
                .compaction_total
                .set(c.total.min(i64::MAX as u64) as i64);
        }
    }

    /// Mid-compaction residency audit, the dual-generation analogue of
    /// [`CmServer::residency_consistent`]: every catalog block must be
    /// resident exactly where its generation says — migrated blocks at
    /// their staging placement, everything else at its old placement or
    /// in the pending-move queue. With no compaction in flight this is
    /// plain residency consistency.
    pub fn compaction_consistent(&self) -> bool {
        let Some(c) = &self.compaction else {
            return self.residency_consistent();
        };
        let pending: HashSet<BlockRef> = self.executor.pending().map(|mv| mv.block).collect();
        for obj in self.engine.catalog().objects() {
            let old = self.engine.locate_all(obj.id).expect("catalog object");
            let new = c.staging.locate_all(obj.id).expect("staged object");
            for b in 0..obj.blocks {
                let blockref = BlockRef {
                    object: obj.id,
                    block: b,
                };
                let Some(stored) = self.store.locate(blockref) else {
                    return false;
                };
                if c.migrated.contains(&blockref) {
                    if stored != self.disks.physical(new[b as usize]) {
                        return false;
                    }
                } else if !pending.contains(&blockref)
                    && stored != self.disks.physical(old[b as usize])
                {
                    return false;
                }
            }
        }
        true
    }

    /// Advances one service round.
    pub fn tick(&mut self) {
        let tick_start = self.stats.as_ref().map(|s| s.clock.now_ns());
        let ids = self.disks.physical_ids();
        let mut remaining: HashMap<PhysicalDiskId, u32> = ids
            .iter()
            .map(|&d| (d, self.disks.spec(d).bandwidth))
            .collect();
        // Draining disks still serve reads and moves at full bandwidth.
        for (&d, spec) in &self.draining {
            remaining.insert(d, spec.bandwidth);
        }
        // Failed disks serve nothing.
        for d in &self.failed {
            remaining.remove(d);
        }

        // 1. Serve playing streams from actual residency, in id order.
        //    Requests landing on a failed disk fall back to the §6
        //    mirror of the block's placement.
        let mut requested = 0u64;
        let mut served = 0u64;
        let mut hiccups = 0u64;
        let mut recovered = 0u64;
        let n = self.disks.disks();
        for stream in &mut self.streams {
            let Some(block) = stream.current_request() else {
                continue;
            };
            requested += 1;
            let blockref = BlockRef {
                object: stream.object,
                block,
            };
            // A block can be missing only if the object was deleted, and
            // deletion reaps its streams; treat missing as a hiccup
            // defensively.
            let Some(disk) = self.store.locate(blockref) else {
                hiccups += 1;
                continue;
            };
            let (serve_from, is_recovery) = if self.failed.contains(&disk) {
                // Primary gone: read the mirror copy at
                // (AF + N/2) mod N. The mirror is defined against the
                // generation the block is currently served by.
                let af = match self
                    .compaction
                    .as_ref()
                    .filter(|c| c.migrated.contains(&blockref))
                {
                    Some(c) => c.staging.locate(stream.object, block),
                    None => self.engine.locate(stream.object, block),
                }
                .expect("stream block in catalog");
                let mirror = self.disks.physical(crate::faults::mirror_of(af, n));
                if self.failed.contains(&mirror) {
                    // Both copies gone: data loss, permanent stall.
                    hiccups += 1;
                    continue;
                }
                (mirror, true)
            } else {
                (disk, false)
            };
            let cap = remaining.get_mut(&serve_from).expect("live disk");
            if *cap > 0 {
                *cap -= 1;
                served += 1;
                if is_recovery {
                    recovered += 1;
                }
                stream.advance();
            } else {
                hiccups += 1;
            }
        }

        // 2. Redistribution: reserved bandwidth plus whatever streams
        //    left unused this round.
        let mut move_budget: HashMap<PhysicalDiskId, u32> = remaining
            .iter()
            .map(|(&d, &left)| (d, left.saturating_add(self.config.redistribution_bandwidth)))
            .collect();
        let executed = self.executor.execute_round(&mut move_budget);
        self.apply_executed(&executed);
        self.note_compaction_executed(&executed);
        self.purge_drained();
        self.refresh_compaction_gauges();
        self.maybe_finish_compaction();

        // 3. Reap finished streams and record the round.
        let before = self.streams.len();
        self.streams.retain(|s| s.state != PlayState::Done);
        self.metrics.push(RoundRecord {
            requested,
            served,
            hiccups,
            recovered,
            moves: executed.len() as u64,
            backlog: self.executor.backlog(),
            active_streams: self.streams.len() as u64,
        });
        if let (Some(stats), Some(start)) = (&self.stats, tick_start) {
            stats
                .streams_closed
                .add((before - self.streams.len()) as u64);
            self.refresh_disk_gauges(stats);
            stats
                .tick_ns
                .record(stats.clock.now_ns().saturating_sub(start));
        }
    }

    /// Refreshes the per-disk labeled gauges: outbound move queue depth
    /// and the residency load census, over live and draining disks.
    fn refresh_disk_gauges(&self, stats: &ServerStats) {
        let mut queue: HashMap<PhysicalDiskId, i64> = HashMap::new();
        for mv in self.executor.pending() {
            *queue.entry(mv.from).or_insert(0) += 1;
        }
        for id in self
            .disks
            .physical_ids()
            .into_iter()
            .chain(self.draining.keys().copied())
        {
            stats
                .disk_queue_depth(id)
                .set(queue.get(&id).copied().unwrap_or(0));
            stats
                .disk_load(id)
                .set(self.store.blocks_on(id).min(i64::MAX as u64) as i64);
        }
    }

    /// Bulk lookup: the *physical* disks of the given blocks of one
    /// object, in input order. Delegates to the engine's cached batch
    /// path ([`Scaddar::locate_batch`]) and maps logical to physical in
    /// one pass — the session-serving companion of per-block
    /// [`Scaddar::locate`].
    pub fn locate_batch(
        &self,
        object: ObjectId,
        blocks: &[u64],
    ) -> Result<Vec<PhysicalDiskId>, ServerError> {
        let logical = self.engine.locate_batch(object, blocks)?;
        let mut out: Vec<PhysicalDiskId> = logical
            .into_iter()
            .map(|logical| self.disks.physical(logical))
            .collect();
        // Dual-generation serving: blocks already migrated answer from
        // the staging generation (new-gen residency first, old-gen
        // fallback — residency is never ambiguous between the two).
        if let Some(c) = &self.compaction {
            for (slot, &b) in out.iter_mut().zip(blocks) {
                let blockref = BlockRef { object, block: b };
                if c.migrated.contains(&blockref) {
                    *slot = self
                        .disks
                        .physical(c.staging.locate(object, b).expect("staged block"));
                }
            }
        }
        Ok(out)
    }

    /// Generation-aware `AF()`: the **logical** disk of one block under
    /// the generation currently serving it — the staging generation for
    /// blocks already migrated by an in-flight compaction, the live
    /// engine for everything else (and for every block when no
    /// compaction is running). This is the lookup session threads use;
    /// it is what collapses back to a single O(1) hash at flip.
    pub fn locate_current(&self, object: ObjectId, block: u64) -> Result<DiskIndex, ServerError> {
        if let Some(c) = &self.compaction {
            let blockref = BlockRef { object, block };
            if c.migrated.contains(&blockref) {
                return Ok(c.staging.locate(object, block)?);
            }
        }
        Ok(self.engine.locate(object, block)?)
    }

    /// Load census (blocks per disk) in logical order — the §5 metric's
    /// input. Uses actual residency.
    pub fn load_census(&self) -> Vec<u64> {
        self.store.census(&self.disks.physical_ids())
    }

    /// **Test hook** — plants silent data rot: moves `block`'s residency
    /// to physical disk `to` *without* telling the engine, so `AF()` and
    /// the store now disagree about the block. This is precisely what a
    /// scrubber exists to detect; it must never happen through the
    /// public mutation API. Returns `false` (and changes nothing) if
    /// the block is unknown or already on `to`.
    pub fn inject_misplacement(&mut self, block: BlockRef, to: PhysicalDiskId) -> bool {
        match self.store.locate(block) {
            Some(from) if from != to => {
                self.store.relocate(block, from, to);
                true
            }
            _ => false,
        }
    }

    /// Verifies that residency matches `AF()` for every block (only true
    /// when no redistribution is pending). The simulator's end-to-end
    /// invariant; exercised constantly by tests. Scans with the engine's
    /// O(B) bulk path rather than per-block lookups.
    pub fn residency_consistent(&self) -> bool {
        if !self.executor.is_idle() {
            return false;
        }
        for obj in self.engine.catalog().objects() {
            let placements = self.engine.locate_all(obj.id).expect("catalog object");
            for (b, &logical) in placements.iter().enumerate() {
                let expect = self.disks.physical(logical);
                let blockref = BlockRef {
                    object: obj.id,
                    block: b as u64,
                };
                if self.store.locate(blockref) != Some(expect) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(disks: u32) -> CmServer {
        CmServer::new(ServerConfig::new(disks).with_catalog_seed(21)).unwrap()
    }

    #[test]
    fn ingest_matches_engine_placement() {
        let mut s = server(4);
        s.add_object(5_000).unwrap();
        assert!(s.residency_consistent());
        assert_eq!(s.load_census().iter().sum::<u64>(), 5_000);
    }

    #[test]
    fn locate_batch_matches_per_block_lookups() {
        let mut s = server(4);
        let obj = s.add_object(2_000).unwrap();
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        let blocks: Vec<u64> = (0..2_000).step_by(7).collect();
        let batch = s.locate_batch(obj, &blocks).unwrap();
        for (&b, &physical) in blocks.iter().zip(&batch) {
            let logical = s.engine().locate(obj, b).unwrap();
            assert_eq!(physical, s.disks().physical(logical), "block {b}");
        }
        assert!(s.locate_batch(obj, &[2_000]).is_err());
        assert!(s.locate_batch(ObjectId(99), &[0]).is_err());
    }

    #[test]
    fn offline_scale_keeps_consistency() {
        let mut s = server(4);
        s.add_object(20_000).unwrap();
        let moved = s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        assert!(moved > 0);
        assert!(s.residency_consistent());
        let census = s.load_census();
        assert_eq!(census.len(), 6);
        let mean = 20_000.0 / 6.0;
        for &c in &census {
            assert!((c as f64 - mean).abs() / mean < 0.1, "{census:?}");
        }
    }

    #[test]
    fn online_scale_drains_and_converges() {
        let mut s = server(4);
        s.add_object(10_000).unwrap();
        let queued = s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(queued > 1_000);
        assert_eq!(s.backlog(), queued);
        let mut rounds = 0;
        while s.backlog() > 0 {
            s.tick();
            rounds += 1;
            assert!(rounds < 10_000, "redistribution never drains");
        }
        assert!(rounds > 1, "online redistribution should take >1 round");
        assert!(s.residency_consistent());
    }

    #[test]
    fn streams_survive_online_scaling() {
        let mut s = CmServer::new(
            ServerConfig::new(4)
                .with_bandwidth(32)
                .with_redistribution_bandwidth(4)
                .with_catalog_seed(3),
        )
        .unwrap();
        let obj = s.add_object(2_000).unwrap();
        for _ in 0..20 {
            s.open_stream(obj).unwrap();
        }
        // Scale mid-playback.
        for _ in 0..5 {
            s.tick();
        }
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        while s.backlog() > 0 {
            s.tick();
        }
        // Light load (20 streams, 4-5 disks x 32 bw): zero hiccups.
        assert_eq!(s.metrics().total_hiccups(), 0);
        assert!(s.metrics().total_served() > 0);
    }

    #[test]
    fn admission_control_rejects_past_capacity() {
        // 1 disk, bandwidth 2, target 80%: exactly 1 stream fits.
        let mut s =
            CmServer::new(ServerConfig::new(1).with_bandwidth(2).with_catalog_seed(5)).unwrap();
        let obj = s.add_object(100).unwrap();
        s.open_stream(obj).unwrap();
        assert_eq!(s.open_stream(obj), Err(ServerError::AdmissionRejected));
    }

    #[test]
    fn correlated_start_positions_cause_hiccups() {
        // 12 streams all start at block 0, which lives on exactly one
        // disk (bandwidth 4): 8 must hiccup in round one even though
        // aggregate bandwidth is ample — the statistical reality of
        // random placement the admission margin exists for.
        let mut s =
            CmServer::new(ServerConfig::new(4).with_bandwidth(4).with_catalog_seed(5)).unwrap();
        let obj = s.add_object(1_000).unwrap();
        for _ in 0..12 {
            s.open_stream(obj).unwrap();
        }
        s.tick();
        assert_eq!(s.metrics().rounds()[0].hiccups, 8);
        assert_eq!(s.metrics().rounds()[0].served, 4);
    }

    #[test]
    fn scaling_during_pending_redistribution_is_safe() {
        let mut s = server(4);
        s.add_object(10_000).unwrap();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        // Immediately scale again while the first op's moves are pending.
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.residency_consistent());
        assert_eq!(s.disks().disks(), 6);
    }

    #[test]
    fn online_removal_drains_the_victim_while_serving() {
        let mut s = server(6);
        let obj = s.add_object(6_000).unwrap();
        for _ in 0..10 {
            s.open_stream(obj).unwrap();
        }
        let queued = s.scale(ScalingOp::remove_one(2)).unwrap();
        assert!(queued > 0);
        assert_eq!(s.draining_disks().len(), 1, "victim must enter draining");
        let victim = s.draining_disks()[0];
        let mut rounds = 0;
        while s.backlog() > 0 {
            s.tick();
            rounds += 1;
            assert!(rounds < 10_000);
        }
        assert!(s.draining_disks().is_empty(), "victim retired after drain");
        assert_eq!(s.store().blocks_on(victim), 0);
        assert!(s.residency_consistent());
        assert_eq!(s.metrics().total_hiccups(), 0, "no service interruption");
    }

    #[test]
    fn removal_scaling_end_to_end() {
        let mut s = server(6);
        s.add_object(12_000).unwrap();
        let moved = s.scale_offline(ScalingOp::remove_one(2)).unwrap();
        // Optimal: 1/6 of blocks.
        let frac = moved as f64 / 12_000.0;
        assert!((frac - 1.0 / 6.0).abs() < 0.02, "{frac}");
        assert!(s.residency_consistent());
        assert_eq!(s.load_census().len(), 5);
    }

    #[test]
    fn object_deletion_cancels_pending_moves() {
        let mut s = server(4);
        let obj = s.add_object(5_000).unwrap();
        let _keep = s.add_object(5_000).unwrap();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(s.backlog() > 0);
        s.remove_object(obj).unwrap();
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.residency_consistent());
        assert_eq!(s.load_census().iter().sum::<u64>(), 5_000);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut s = server(5);
        let obj = s.add_object(3_000).unwrap();
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        s.scale_offline(ScalingOp::remove_one(1)).unwrap();
        let bytes = s.snapshot().unwrap();
        let restored =
            CmServer::restore(ServerConfig::new(5).with_catalog_seed(21), &bytes).unwrap();
        assert_eq!(restored.disks().disks(), s.disks().disks());
        assert!(restored.residency_consistent());
        assert_eq!(restored.load_census(), s.load_census());
        for blk in (0..3_000).step_by(97) {
            assert_eq!(
                restored.store().locate(BlockRef {
                    object: obj,
                    block: blk
                }),
                s.store().locate(BlockRef {
                    object: obj,
                    block: blk
                })
            );
        }
    }

    #[test]
    fn snapshot_refused_mid_redistribution() {
        let mut s = server(4);
        s.add_object(5_000).unwrap();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(matches!(
            s.snapshot(),
            Err(ServerError::RedistributionPending)
        ));
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.snapshot().is_ok());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(matches!(
            CmServer::restore(ServerConfig::new(4), b"not a snapshot"),
            Err(ServerError::Snapshot(_))
        ));
    }

    #[test]
    fn attached_stats_observe_a_full_scaling_run() {
        use crate::stats::ServerStats;
        use scaddar_obs::Registry;
        let registry = Registry::new();
        let stats = ServerStats::register_monotonic(&registry);
        let mut s = server(4);
        s.attach_stats(stats.clone());
        // Engine stats share the same registry.
        let engine_stats = scaddar_core::EngineStats::register_monotonic(&registry);
        s.engine.attach_stats(engine_stats.clone());

        let obj = s.add_object(5_000).unwrap();
        for _ in 0..5 {
            s.open_stream(obj).unwrap();
        }
        assert_eq!(stats.streams_opened.get(), 5);
        let queued = s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert_eq!(stats.scale_ops.get(), 1);
        assert_eq!(stats.moves_queued.get(), queued);
        assert_eq!(stats.backlog.get(), queued as i64);
        assert_eq!(engine_stats.scale_ops.get(), 1);
        while s.backlog() > 0 {
            s.tick();
        }
        assert_eq!(stats.backlog.get(), 0, "gauge follows the drain");
        assert_eq!(stats.moves.get(), queued, "every queued move executed");
        assert_eq!(stats.rounds.get(), s.metrics().len() as u64);
        assert_eq!(stats.served.get(), s.metrics().total_served());
        // Per-disk gauges exist for every live disk and sum to the
        // catalog size.
        let census_total: i64 = s
            .disks()
            .physical_ids()
            .into_iter()
            .map(|d| stats.disk_load(d).get())
            .sum();
        assert_eq!(census_total, 5_000);
        assert!(registry
            .render_prometheus()
            .contains("cmsim_server_rounds_total"));
        // Drain interval visible through the fixed drain accounting.
        assert_eq!(s.metrics().drain_times().len(), 1);
    }

    #[test]
    fn capacity_limit_rolls_back() {
        let mut cfg = ServerConfig::new(2).with_catalog_seed(1);
        cfg.disk_capacity = 10;
        let mut s = CmServer::new(cfg).unwrap();
        assert!(matches!(s.add_object(1_000), Err(ServerError::DiskFull(_))));
        // Rollback leaves the server empty and usable.
        assert_eq!(s.store().len(), 0);
        assert!(s.add_object(10).is_ok());
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;

    fn server(disks: u32) -> CmServer {
        CmServer::new(
            ServerConfig::new(disks)
                .with_bandwidth(32)
                .with_redistribution_bandwidth(8)
                .with_catalog_seed(7),
        )
        .unwrap()
    }

    /// Burns the §4.3 budget with alternating remove/add round-trips
    /// (dominant unfairness growth, zero net size change), draining each
    /// op so the executor is idle afterwards.
    fn burn_budget(s: &mut CmServer, round_trips: usize) {
        for _ in 0..round_trips {
            s.scale_offline(ScalingOp::remove_one(0)).unwrap();
            s.scale_offline(ScalingOp::Add { count: 1 }).unwrap();
        }
    }

    #[test]
    fn compaction_migrates_online_and_flips() {
        let mut s = server(6);
        let obj = s.add_object(6_000).unwrap();
        burn_budget(&mut s, 4);
        for _ in 0..10 {
            s.open_stream(obj).unwrap();
        }
        let epoch_before = s.engine().epoch();
        assert!(epoch_before >= 8);

        let queued = s.begin_compaction().unwrap();
        // A rehash is a near-complete reshuffle: ~(1 - 1/6) of blocks.
        let frac = queued as f64 / 6_000.0;
        assert!((frac - 5.0 / 6.0).abs() < 0.05, "queued fraction {frac}");
        assert!(s.compaction_active());

        // Every cutover round: dual-generation residency stays
        // consistent, every block stays locatable, streams keep playing.
        let mut rounds = 0;
        while s.compaction_active() {
            assert!(s.compaction_consistent(), "round {rounds}");
            for blk in (0..6_000).step_by(599) {
                let logical = s.locate_current(obj, blk).unwrap();
                assert!(logical.0 < 6);
            }
            s.tick();
            rounds += 1;
            assert!(rounds < 10_000, "compaction never finishes");
        }
        assert!(rounds > 1, "online compaction should take >1 round");

        // The flip collapses locate back to a single O(1) hash: fresh
        // log, bumped generation, full budget, consistent residency.
        assert_eq!(s.generation(), 1);
        assert_eq!(s.engine().epoch(), 0);
        assert!(s.engine().next_op_is_safe(5));
        assert!(s.residency_consistent());
        assert_eq!(s.metrics().total_hiccups(), 0, "no service interruption");
        // locate_batch and locate_current agree post-flip.
        let batch = s.locate_batch(obj, &[0, 17, 5_999]).unwrap();
        for (&b, &physical) in [0u64, 17, 5_999].iter().zip(&batch) {
            assert_eq!(
                physical,
                s.disks().physical(s.locate_current(obj, b).unwrap())
            );
        }
    }

    #[test]
    fn compaction_resets_the_fairness_budget() {
        let mut s = server(8);
        s.add_object(2_000).unwrap();
        let mut trips = 0;
        while s.next_op_is_safe(&ScalingOp::remove_one(0)) && trips < 50 {
            burn_budget(&mut s, 1);
            trips += 1;
        }
        assert!(
            !s.next_op_is_safe(&ScalingOp::remove_one(0)),
            "budget should be exhausted"
        );
        s.begin_compaction().unwrap();
        while s.compaction_active() {
            s.tick();
        }
        assert!(
            s.next_op_is_safe(&ScalingOp::remove_one(0)),
            "flip must refill the §4.3 budget"
        );
    }

    #[test]
    fn scaling_and_snapshots_wait_for_the_flip() {
        let mut s = server(4);
        s.add_object(3_000).unwrap();
        s.begin_compaction().unwrap();
        assert_eq!(
            s.scale(ScalingOp::Add { count: 1 }),
            Err(ServerError::CompactionActive)
        );
        assert!(matches!(s.snapshot(), Err(ServerError::CompactionActive)));
        assert_eq!(s.begin_compaction(), Err(ServerError::CompactionActive));
        while s.compaction_active() {
            s.tick();
        }
        assert!(s.scale(ScalingOp::Add { count: 1 }).is_ok());
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.snapshot().is_ok());
    }

    #[test]
    fn begin_requires_an_idle_executor() {
        let mut s = server(4);
        s.add_object(3_000).unwrap();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(s.backlog() > 0);
        assert_eq!(
            s.begin_compaction(),
            Err(ServerError::RedistributionPending)
        );
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.begin_compaction().is_ok());
    }

    #[test]
    fn object_churn_during_compaction_stays_consistent() {
        let mut s = server(5);
        let keep = s.add_object(2_000).unwrap();
        let doomed = s.add_object(1_500).unwrap();
        s.begin_compaction().unwrap();
        // A few rounds in: delete one object, ingest another.
        for _ in 0..3 {
            s.tick();
        }
        s.remove_object(doomed).unwrap();
        assert!(s.compaction_consistent());
        let newcomer = s.add_object(800).unwrap();
        assert!(s.compaction_consistent());
        while s.compaction_active() {
            s.tick();
            assert!(s.compaction_consistent());
        }
        assert_eq!(s.generation(), 1);
        assert!(s.residency_consistent());
        assert_eq!(s.load_census().iter().sum::<u64>(), 2_800);
        assert!(s.locate_current(keep, 0).is_ok());
        assert!(s.locate_current(newcomer, 799).is_ok());
        assert!(matches!(
            s.locate_current(doomed, 0),
            Err(ServerError::Engine(ScaddarError::UnknownObject(_)))
        ));
    }

    #[test]
    fn empty_catalog_compaction_flips_immediately() {
        let mut s = server(4);
        assert_eq!(s.begin_compaction().unwrap(), 0);
        assert!(!s.compaction_active(), "nothing to migrate");
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn progress_reporting_counts_down_to_the_flip() {
        let mut s = server(4);
        s.add_object(4_000).unwrap();
        assert!(s.compaction_progress().is_none());
        let queued = s.begin_compaction().unwrap();
        let p0 = s.compaction_progress().unwrap();
        assert_eq!((p0.from_generation, p0.to_generation), (0, 1));
        assert_eq!(p0.total_blocks, 4_000);
        assert_eq!(p0.backlog, queued);
        assert_eq!(p0.migrated_blocks, 4_000 - queued);
        let mut last = p0.migrated_blocks;
        while s.compaction_active() {
            s.tick();
            if let Some(p) = s.compaction_progress() {
                assert!(p.migrated_blocks >= last, "progress is monotone");
                last = p.migrated_blocks;
            }
        }
        assert!(s.compaction_progress().is_none());
    }

    #[test]
    fn compaction_stats_follow_the_migration() {
        use crate::stats::ServerStats;
        use scaddar_obs::Registry;
        let registry = Registry::new();
        let stats = ServerStats::register_monotonic(&registry);
        let mut s = server(4);
        s.attach_stats(stats.clone());
        s.add_object(3_000).unwrap();
        s.begin_compaction().unwrap();
        assert_eq!(stats.compactions_started.get(), 1);
        assert_eq!(stats.compaction_active.get(), 1);
        assert_eq!(stats.compaction_target_generation.get(), 1);
        assert!(stats.compaction_remaining.get() > 0);
        assert_eq!(stats.compaction_total.get(), 3_000);
        while s.compaction_active() {
            s.tick();
        }
        assert_eq!(stats.compactions_completed.get(), 1);
        assert_eq!(stats.compaction_active.get(), 0);
        assert_eq!(stats.compaction_remaining.get(), 0);
        assert_eq!(stats.compaction_generation.get(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("cmsim_compactions_completed_total 1"));
    }

    #[test]
    fn compaction_refuses_failed_disks_until_they_are_removed() {
        let mut s = server(6);
        s.add_object(3_000).unwrap();
        let dead = s.fail_disk(scaddar_core::DiskIndex(2));
        assert!(s.store().blocks_on(dead) > 0);
        assert_eq!(s.begin_compaction(), Err(ServerError::FailedDisksPresent));
        // The §6 remedy: remove the dead disk (its blocks reconstruct
        // from mirrors onto the survivors), then compact the healthy
        // 5-disk array.
        s.scale(ScalingOp::remove_one(2)).unwrap();
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.begin_compaction().is_ok());
        let mut rounds = 0;
        while s.compaction_active() {
            s.tick();
            rounds += 1;
            assert!(rounds < 10_000, "compaction never finishes");
        }
        assert_eq!(s.generation(), 1);
        assert!(s.residency_consistent());
        assert_eq!(s.load_census().len(), 5);
    }

    #[test]
    fn disk_failure_mid_compaction_still_flips() {
        let mut s = server(6);
        let obj = s.add_object(4_000).unwrap();
        s.begin_compaction().unwrap();
        for _ in 0..3 {
            s.tick();
        }
        let dead = s.fail_disk(scaddar_core::DiskIndex(2));
        assert!(s.compaction_consistent());
        let mut rounds = 0;
        while s.compaction_active() {
            s.tick();
            assert!(s.compaction_consistent(), "round {rounds}");
            rounds += 1;
            assert!(rounds < 10_000, "compaction wedged on the dead disk");
        }
        // The cutover completed: blocks whose new-generation home is
        // the dead disk are resident there (unreadable, mirror-served
        // — the same steady state a failed disk has outside
        // compaction); everything else actually moved.
        assert_eq!(s.generation(), 1);
        assert!(s.residency_consistent());
        assert!(s.store().blocks_on(dead) > 0);
        // Streams keep playing through the §6 mirror fallback.
        for _ in 0..4 {
            s.open_stream(obj).unwrap();
        }
        for _ in 0..50 {
            s.tick();
        }
        assert_eq!(s.metrics().total_hiccups(), 0);
        assert!(s.metrics().total_recovered() > 0, "mirror reads happened");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use scaddar_core::DiskIndex;

    fn server(disks: u32) -> CmServer {
        CmServer::new(
            ServerConfig::new(disks)
                .with_bandwidth(32)
                .with_redistribution_bandwidth(8)
                .with_catalog_seed(33),
        )
        .unwrap()
    }

    #[test]
    fn failed_disk_is_served_from_mirrors() {
        let mut s = server(6);
        let obj = s.add_object(3_000).unwrap();
        for _ in 0..12 {
            s.open_stream(obj).unwrap();
        }
        // Spread positions so requests hit many disks.
        for (i, st) in s.streams_snapshot().into_iter().enumerate() {
            s.stream_mut(st.id).unwrap().seek((i as u64) * 211 % 3_000);
        }
        s.tick();
        let baseline_recovered = s.metrics().total_recovered();
        assert_eq!(baseline_recovered, 0);

        let dead = s.fail_disk(DiskIndex(2));
        assert_eq!(s.failed_disks(), vec![dead]);
        for _ in 0..50 {
            s.tick();
        }
        assert!(
            s.metrics().total_recovered() > 0,
            "mirror reads should have served the failed disk's blocks"
        );
        assert_eq!(
            s.metrics().total_hiccups(),
            0,
            "single failure with mirroring must not stall streams"
        );
    }

    #[test]
    fn removing_the_failed_disk_reconstructs_from_mirrors() {
        let mut s = server(6);
        s.add_object(6_000).unwrap();
        let dead = s.fail_disk(DiskIndex(2));
        let dead_blocks = s.store().blocks_on(dead);
        assert!(dead_blocks > 0);
        // Operator pulls the dead disk; moves must be sourced elsewhere.
        let queued = s.scale(ScalingOp::remove_one(2)).unwrap();
        assert!(
            queued >= dead_blocks,
            "every dead block needs reconstruction"
        );
        assert!(
            s.draining_disks().is_empty(),
            "a failed disk has nothing to drain"
        );
        while s.backlog() > 0 {
            s.tick();
        }
        assert_eq!(s.store().blocks_on(dead), 0);
        assert!(s.residency_consistent());
        assert_eq!(s.disks().disks(), 5);
    }

    #[test]
    fn failure_mid_redistribution_resources_pending_moves() {
        let mut s = server(6);
        s.add_object(8_000).unwrap();
        s.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(s.backlog() > 0);
        // A disk dies while its outbound moves are still queued.
        s.fail_disk(DiskIndex(0));
        s.scale(ScalingOp::remove_one(0)).unwrap();
        while s.backlog() > 0 {
            s.tick();
        }
        assert!(s.residency_consistent());
        assert_eq!(s.disks().disks(), 6); // 6 + 1 - 1
    }

    #[test]
    fn partner_pair_failure_causes_stalls() {
        // Disks 0 and 3 are mirror partners at N=6: blocks whose primary
        // is on one and mirror on the other are unreadable.
        let mut s = server(6);
        let obj = s.add_object(2_000).unwrap();
        for _ in 0..12 {
            s.open_stream(obj).unwrap();
        }
        s.fail_disk(DiskIndex(0));
        s.fail_disk(DiskIndex(3));
        for _ in 0..30 {
            s.tick();
        }
        assert!(
            s.metrics().total_hiccups() > 0,
            "losing a mirror pair must be visible as stalls"
        );
    }
}
