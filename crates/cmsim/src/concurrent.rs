//! Concurrent online access: serving lookups *while* scaling operations
//! commit.
//!
//! The paper's service requirement is that customers never see downtime
//! during maintenance (§1). In a real server, block-location queries come
//! from many session threads while an operator thread applies scaling
//! operations. [`SharedServer`] wraps a [`CmServer`] in a
//! `parking_lot::RwLock` with an epoch counter so tests can assert the
//! crucial property: every concurrent lookup observes a *consistent*
//! epoch — either entirely pre-op or entirely post-op placement, never a
//! torn mixture — and no lookup ever blocks for the duration of a whole
//! redistribution (only for the O(B) plan computation of the commit
//! itself).

use crate::server::{CmServer, ServerError};
use parking_lot::RwLock;
use scaddar_baselines::PhysicalDiskId;
use scaddar_core::{DiskIndex, ObjectId, ScalingOp};

/// A snapshot of one lookup with the epoch it was served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRead {
    /// Scaling epoch `j` at the time of the read.
    pub epoch: usize,
    /// Number of disks at that epoch.
    pub disks: u32,
    /// The block's logical disk.
    pub disk: DiskIndex,
}

/// A snapshot of one **bulk** lookup with the epoch it was served at:
/// the owned analogue of [`EpochRead`] for whole playback windows. The
/// network layer serializes this as one `BatchLocated` frame, so the
/// epoch-consistency invariant survives the socket boundary — a remote
/// client gets the same "whole batch at one epoch" guarantee an
/// in-process session thread gets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRead {
    /// Scaling epoch `j` at the time of the read.
    pub epoch: usize,
    /// Number of disks at that epoch.
    pub disks: u32,
    /// Physical location per requested block, in request order.
    pub locations: Vec<PhysicalDiskId>,
}

/// One pending lookup frame in a coalesced read: either a single-block
/// `Locate` or a whole-window `LocateBatch`. Block lists are borrowed
/// from the caller (typically straight out of a decoded wire frame) so
/// coalescing adds no copies on the request path.
#[derive(Debug, Clone, Copy)]
pub enum LocateQuery<'a> {
    /// A single-block lookup (answers with the *logical* disk index,
    /// mirroring [`SharedServer::locate`]).
    One {
        /// Object to locate in.
        object: ObjectId,
        /// Block number within the object.
        block: u64,
    },
    /// A bulk lookup (answers with *physical* disk ids, mirroring
    /// [`SharedServer::locate_batch_read`]).
    Many {
        /// Object to locate in.
        object: ObjectId,
        /// Block numbers within the object.
        blocks: &'a [u64],
    },
}

/// Per-query payload of a coalesced read, shaped like the query that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocateAnswer {
    /// Answer to [`LocateQuery::One`].
    One(DiskIndex),
    /// Answer to [`LocateQuery::Many`], in request order.
    Many(Vec<PhysicalDiskId>),
}

/// The result of answering *many* lookup frames under **one** shared
/// lock acquisition: a single `(epoch, disks)` snapshot that every
/// answer in `answers` was served at. This is the invariant an
/// event-loop server needs for cross-connection batching — frames from
/// different sockets coalesced into one read must still each be
/// "entirely pre-op or entirely post-op", and sharing one guard makes
/// that true by construction.
#[derive(Debug, Clone)]
pub struct CoalescedRead {
    /// Scaling epoch `j` every answer was served at.
    pub epoch: usize,
    /// Number of disks at that epoch.
    pub disks: u32,
    /// One result per query, in submission order. Per-query failures
    /// (unknown object, block out of range) do not poison the batch.
    pub answers: Vec<Result<LocateAnswer, ServerError>>,
}

/// Thread-safe wrapper over a [`CmServer`].
///
/// Reads take the shared lock; scaling takes the exclusive lock for the
/// plan-and-commit step only (move execution stays asynchronous via
/// `tick`, which also takes the exclusive lock per round — rounds are
/// short by construction).
#[derive(Debug)]
pub struct SharedServer {
    inner: RwLock<CmServer>,
}

impl SharedServer {
    /// Wraps a server.
    pub fn new(server: CmServer) -> Self {
        SharedServer {
            inner: RwLock::new(server),
        }
    }

    /// Consistent lookup: epoch, disk count and location read under one
    /// shared lock acquisition. Generation-aware: during a compaction,
    /// migrated blocks answer from the staging generation
    /// ([`CmServer::locate_current`]).
    pub fn locate(&self, object: ObjectId, block: u64) -> Result<EpochRead, ServerError> {
        let guard = self.inner.read();
        let disk = guard.locate_current(object, block)?;
        Ok(EpochRead {
            epoch: guard.engine().epoch(),
            disks: guard.disks().disks(),
            disk,
        })
    }

    /// Consistent **bulk** lookup: every block located under *one*
    /// shared lock acquisition, so the whole batch is served at a single
    /// epoch — a session thread prefetching a playback window can never
    /// observe a scaling operation ripping through the middle of its
    /// batch. Returns the epoch alongside the physical disks.
    pub fn locate_batch(
        &self,
        object: ObjectId,
        blocks: &[u64],
    ) -> Result<(usize, Vec<PhysicalDiskId>), ServerError> {
        let guard = self.inner.read();
        let disks = guard.locate_batch(object, blocks)?;
        Ok((guard.engine().epoch(), disks))
    }

    /// [`locate_batch`](Self::locate_batch) with the disk count read
    /// under the *same* shared lock acquisition: the full epoch-tagged
    /// triple a serving layer needs to answer a batch request without a
    /// second (potentially torn) `epoch_view` round-trip.
    pub fn locate_batch_read(
        &self,
        object: ObjectId,
        blocks: &[u64],
    ) -> Result<BatchRead, ServerError> {
        let guard = self.inner.read();
        let locations = guard.locate_batch(object, blocks)?;
        Ok(BatchRead {
            epoch: guard.engine().epoch(),
            disks: guard.disks().disks(),
            locations,
        })
    }

    /// Answers a whole slate of lookup frames under **one** shared lock
    /// acquisition. All answers share a single `(epoch, disks)`
    /// snapshot, so a serving layer may interleave frames from many
    /// connections into one call and still hand every client the
    /// epoch-consistency guarantee of [`locate`](Self::locate) /
    /// [`locate_batch_read`](Self::locate_batch_read). Compared to one
    /// lock round-trip per frame this is the difference between `n`
    /// atomic RMWs on the lock word per wakeup and two.
    pub fn locate_coalesced(&self, queries: &[LocateQuery<'_>]) -> CoalescedRead {
        self.locate_coalesced_with(queries, || {})
    }

    /// [`locate_coalesced`](Self::locate_coalesced) with a hook fired
    /// the moment the shared lock is *acquired* — before any query is
    /// answered. This is the instrumentation seam the serving layer's
    /// latency anatomy uses to split "engine read-lock wait" from
    /// "engine execute" without `SharedServer` depending on any clock:
    /// the caller timestamps around the call and inside the hook, and
    /// the cooperative profiler flips its state word from `lock-wait`
    /// to `engine` in the hook.
    pub fn locate_coalesced_with(
        &self,
        queries: &[LocateQuery<'_>],
        on_locked: impl FnOnce(),
    ) -> CoalescedRead {
        let guard = self.inner.read();
        on_locked();
        let answers = queries
            .iter()
            .map(|query| match *query {
                LocateQuery::One { object, block } => {
                    guard.locate_current(object, block).map(LocateAnswer::One)
                }
                LocateQuery::Many { object, blocks } => {
                    guard.locate_batch(object, blocks).map(LocateAnswer::Many)
                }
            })
            .collect();
        CoalescedRead {
            epoch: guard.engine().epoch(),
            disks: guard.disks().disks(),
            answers,
        }
    }

    /// Applies a scaling operation under the exclusive lock.
    pub fn scale(&self, op: ScalingOp) -> Result<u64, ServerError> {
        self.inner.write().scale(op)
    }

    /// Applies a scaling operation and reads the post-commit
    /// `(epoch, disks)` under the *same* exclusive lock acquisition, so
    /// a serving layer can answer "scaled to epoch j with N disks,
    /// queued M moves" without racing a concurrent operator.
    pub fn scale_read(&self, op: ScalingOp) -> Result<(usize, u32, u64), ServerError> {
        let mut guard = self.inner.write();
        let queued = guard.scale(op)?;
        Ok((guard.engine().epoch(), guard.disks().disks(), queued))
    }

    /// Advances one service round under the exclusive lock.
    pub fn tick(&self) {
        self.inner.write().tick();
    }

    /// Ingests an object under the exclusive lock — the migration
    /// copy-in path a cluster orchestrator uses to materialize an
    /// object on its new shard (the shard's own `AF()` places every
    /// block, so the copy re-enters the paper's placement discipline).
    pub fn add_object(&self, blocks: u64) -> Result<ObjectId, ServerError> {
        self.inner.write().add_object(blocks)
    }

    /// Deletes an object under the exclusive lock — the migration
    /// evict path on the handoff source (pending redistribution moves
    /// for the object are cancelled with it).
    pub fn remove_object(&self, id: ObjectId) -> Result<(), ServerError> {
        self.inner.write().remove_object(id)
    }

    /// Pending redistribution moves.
    pub fn backlog(&self) -> u64 {
        self.inner.read().backlog()
    }

    /// Begins an online rehash compaction under the exclusive lock
    /// (see [`CmServer::begin_compaction`]).
    pub fn begin_compaction(&self) -> Result<u64, ServerError> {
        self.inner.write().begin_compaction()
    }

    /// Progress of the in-flight compaction, if any, read under the
    /// shared lock.
    pub fn compaction_progress(&self) -> Option<crate::compaction::CompactionProgress> {
        self.inner.read().compaction_progress()
    }

    /// The current `(epoch, disks)` pair read under one shared lock
    /// acquisition — the reference point concurrent-read checkers
    /// compare their [`EpochRead`]s against.
    pub fn epoch_view(&self) -> (usize, u32) {
        let guard = self.inner.read();
        (guard.engine().epoch(), guard.disks().disks())
    }

    /// Runs `f` with shared access to the server.
    pub fn with_read<R>(&self, f: impl FnOnce(&CmServer) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive access to the server.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut CmServer) -> R) -> R {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn reads_are_epoch_consistent_during_scaling() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(17)).unwrap();
        let object = server.add_object(5_000).unwrap();
        let shared = SharedServer::new(server);
        let stop = AtomicBool::new(false);
        let total_reads = AtomicU64::new(0);

        crossbeam::scope(|scope| {
            // Reader threads hammer lookups and assert internal
            // consistency of every observation.
            for t in 0..4 {
                let shared = &shared;
                let stop = &stop;
                let total_reads = &total_reads;
                scope.spawn(move |_| {
                    let mut block = t * 131;
                    while !stop.load(Ordering::Relaxed) {
                        block = (block + 1) % 5_000;
                        let r = shared.locate(object, block).expect("lookup");
                        // Torn-state detector: the disk must be valid for
                        // the disk count observed in the same read.
                        assert!(
                            r.disk.0 < r.disks,
                            "torn read: disk {} of {} at epoch {}",
                            r.disk.0,
                            r.disks,
                            r.epoch
                        );
                        // Epochs imply disk counts 4..=8 in this test.
                        assert_eq!(r.disks, 4 + r.epoch as u32);
                        total_reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Operator thread: four scaling operations with service
            // rounds in between, paced so every epoch is observed by
            // readers (fast optimized builds can otherwise finish all
            // four ops before a reader gets scheduled).
            for _ in 0..4 {
                let seen = total_reads.load(Ordering::Relaxed);
                shared.scale(ScalingOp::Add { count: 1 }).expect("scale");
                while shared.backlog() > 0 {
                    shared.tick();
                }
                while total_reads.load(Ordering::Relaxed) < seen + 50 {
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads join cleanly");
        assert!(total_reads.load(Ordering::Relaxed) >= 200);

        assert_eq!(shared.with_read(|s| s.disks().disks()), 8);
        assert!(shared.with_read(|s| s.residency_consistent()));
    }

    #[test]
    fn batch_reads_are_epoch_consistent_during_scaling() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(9)).unwrap();
        let object = server.add_object(3_000).unwrap();
        let shared = SharedServer::new(server);
        let stop = AtomicBool::new(false);
        let total_batches = AtomicU64::new(0);
        let window: Vec<u64> = (0..64).collect();

        crossbeam::scope(|scope| {
            for _ in 0..2 {
                let shared = &shared;
                let stop = &stop;
                let total_batches = &total_batches;
                let window = &window;
                scope.spawn(move |_| {
                    while !stop.load(Ordering::Relaxed) {
                        let (epoch, disks) =
                            shared.locate_batch(object, window).expect("batch lookup");
                        // Single-epoch guarantee: re-locating the same
                        // window at the same epoch must agree entirely.
                        let (epoch2, disks2) =
                            shared.locate_batch(object, window).expect("batch lookup");
                        if epoch == epoch2 {
                            assert_eq!(disks, disks2, "torn batch at epoch {epoch}");
                        }
                        total_batches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..3 {
                let seen = total_batches.load(Ordering::Relaxed);
                shared.scale(ScalingOp::Add { count: 1 }).expect("scale");
                while shared.backlog() > 0 {
                    shared.tick();
                }
                while total_batches.load(Ordering::Relaxed) < seen + 20 {
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads join cleanly");
        assert_eq!(shared.with_read(|s| s.disks().disks()), 7);
    }

    #[test]
    fn coalesced_read_agrees_with_individual_lookups() {
        let mut server = CmServer::new(ServerConfig::new(5).with_catalog_seed(23)).unwrap();
        let object = server.add_object(2_000).unwrap();
        let shared = SharedServer::new(server);
        shared.scale(ScalingOp::Add { count: 2 }).unwrap();
        while shared.backlog() > 0 {
            shared.tick();
        }

        let window: Vec<u64> = (100..140).collect();
        let queries = [
            LocateQuery::One { object, block: 7 },
            LocateQuery::Many {
                object,
                blocks: &window,
            },
            LocateQuery::One {
                object,
                block: 1_999,
            },
            // Out-of-range block: fails alone, must not poison the rest.
            LocateQuery::One {
                object,
                block: 2_000,
            },
        ];
        let read = shared.locate_coalesced(&queries);
        assert_eq!((read.epoch, read.disks), shared.epoch_view());
        assert_eq!(read.answers.len(), queries.len());

        let single = shared.locate(object, 7).unwrap();
        assert_eq!(read.answers[0], Ok(LocateAnswer::One(single.disk)));
        let batch = shared.locate_batch_read(object, &window).unwrap();
        assert_eq!(read.answers[1], Ok(LocateAnswer::Many(batch.locations)));
        let last = shared.locate(object, 1_999).unwrap();
        assert_eq!(read.answers[2], Ok(LocateAnswer::One(last.disk)));
        assert!(read.answers[3].is_err(), "out-of-range block must fail");
    }

    #[test]
    fn coalesced_reads_are_epoch_consistent_during_scaling() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(41)).unwrap();
        let object = server.add_object(3_000).unwrap();
        let shared = SharedServer::new(server);
        let stop = AtomicBool::new(false);
        let total = AtomicU64::new(0);
        let window: Vec<u64> = (0..32).collect();

        crossbeam::scope(|scope| {
            for t in 0..3u64 {
                let shared = &shared;
                let stop = &stop;
                let total = &total;
                let window = &window;
                scope.spawn(move |_| {
                    let mut block = t * 977;
                    while !stop.load(Ordering::Relaxed) {
                        block = (block + 13) % 3_000;
                        let queries = [
                            LocateQuery::One { object, block },
                            LocateQuery::Many {
                                object,
                                blocks: window,
                            },
                        ];
                        let read = shared.locate_coalesced(&queries);
                        // Epochs imply disk counts 4..=7 in this test;
                        // a torn coalesced read would break the pairing
                        // or place a block outside the epoch's array.
                        assert_eq!(read.disks, 4 + read.epoch as u32);
                        match &read.answers[0] {
                            Ok(LocateAnswer::One(disk)) => assert!(disk.0 < read.disks),
                            other => panic!("unexpected answer {other:?}"),
                        }
                        match &read.answers[1] {
                            Ok(LocateAnswer::Many(locs)) => {
                                assert_eq!(locs.len(), window.len());
                            }
                            other => panic!("unexpected answer {other:?}"),
                        }
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..3 {
                let seen = total.load(Ordering::Relaxed);
                shared.scale(ScalingOp::Add { count: 1 }).expect("scale");
                while shared.backlog() > 0 {
                    shared.tick();
                }
                while total.load(Ordering::Relaxed) < seen + 30 {
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads join cleanly");
        assert_eq!(shared.with_read(|s| s.disks().disks()), 7);
    }

    #[test]
    fn coalesced_with_fires_the_hook_after_lock_acquisition() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(3)).unwrap();
        let object = server.add_object(1_000).unwrap();
        let shared = SharedServer::new(server);
        let fired = AtomicU64::new(0);
        let queries = [LocateQuery::One { object, block: 5 }];
        let read = shared.locate_coalesced_with(&queries, || {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires exactly once");
        // The hooked variant answers identically to the plain one.
        let plain = shared.locate_coalesced(&queries);
        assert_eq!((read.epoch, read.disks), (plain.epoch, plain.disks));
        assert_eq!(read.answers, plain.answers);
    }

    #[test]
    fn with_write_allows_full_mutation() {
        let server = CmServer::new(ServerConfig::new(2).with_catalog_seed(1)).unwrap();
        let shared = SharedServer::new(server);
        let id = shared.with_write(|s| s.add_object(100)).unwrap();
        let read = shared.locate(id, 0).unwrap();
        assert!(read.disk.0 < 2);
        assert_eq!(read.epoch, 0);
    }
}
