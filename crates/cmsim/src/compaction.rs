//! Online rehash compaction: migrating a server to its next placement
//! generation while it keeps serving.
//!
//! SCADDAR's §4.3 budget eventually runs out: after enough scaling
//! operations the REMAP chain is long and statistically stale, and the
//! paper's prescribed escape hatch is a full rehash. Doing that offline
//! would violate the §1 no-downtime requirement, so the server runs it
//! like any other redistribution: [`CmServer::begin_compaction`] opens a
//! staging engine at the next generation (fresh `X_0 mod N` seed, empty
//! scaling log — see [`Scaddar::open_next_generation`]) and enqueues one
//! move per block whose new-generation placement differs from its
//! current residency. While those moves drain through the rate-limited
//! executor the server serves from **both** generations: a lookup first
//! consults the migrated set (new-generation residency), then falls back
//! to the old engine — the same never-served-twice discipline the
//! cluster handoff uses. When the last move lands the server flips
//! atomically: the staging engine becomes *the* engine, locate collapses
//! back to a single O(1) hash, and the fairness budget is full again.
//!
//! [`CmServer::begin_compaction`]: crate::server::CmServer::begin_compaction
//! [`Scaddar::open_next_generation`]: scaddar_core::Scaddar::open_next_generation

use scaddar_core::{BlockRef, Scaddar};
use std::collections::HashSet;

/// In-flight state of one compaction: the staging next-generation engine
/// plus the set of blocks already resident at their new-generation
/// placement.
#[derive(Debug, Clone)]
pub(crate) struct CompactionState {
    /// The next-generation engine blocks are migrating toward. Serves
    /// lookups for migrated blocks; becomes the live engine at flip.
    pub(crate) staging: Scaddar,
    /// Blocks whose residency already matches the staging placement.
    pub(crate) migrated: HashSet<BlockRef>,
    /// Catalog blocks at begin (progress denominator; object churn
    /// during the compaction adjusts it).
    pub(crate) total: u64,
}

/// A point-in-time view of compaction progress, for operators
/// (`scaddar health`, fleet dashboards) and trigger policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionProgress {
    /// The generation being retired.
    pub from_generation: u64,
    /// The generation being migrated to.
    pub to_generation: u64,
    /// Blocks the compaction must account for.
    pub total_blocks: u64,
    /// Blocks already at their new-generation placement.
    pub migrated_blocks: u64,
    /// Compaction moves still queued in the executor.
    pub backlog: u64,
}

impl CompactionProgress {
    /// Migrated fraction in `[0, 1]` (1.0 for an empty catalog).
    pub fn fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            1.0
        } else {
            self.migrated_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Renders like `gen 0->1 41.2% (4120/10000, 5880 queued)`.
    pub fn render(&self) -> String {
        format!(
            "gen {}->{} {:.1}% ({}/{}, {} queued)",
            self.from_generation,
            self.to_generation,
            self.fraction() * 100.0,
            self.migrated_blocks,
            self.total_blocks,
            self.backlog
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_empty_and_partial() {
        let p = CompactionProgress {
            from_generation: 0,
            to_generation: 1,
            total_blocks: 0,
            migrated_blocks: 0,
            backlog: 0,
        };
        assert_eq!(p.fraction(), 1.0);
        let p = CompactionProgress {
            from_generation: 2,
            to_generation: 3,
            total_blocks: 1_000,
            migrated_blocks: 250,
            backlog: 750,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
        let text = p.render();
        assert!(text.contains("gen 2->3"), "{text}");
        assert!(text.contains("25.0%"), "{text}");
        assert!(text.contains("250/1000"), "{text}");
    }
}
