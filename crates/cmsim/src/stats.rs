//! Server telemetry: the registry-backed metric handles a [`CmServer`]
//! records into when observability is attached.
//!
//! [`crate::metrics::Metrics`] keeps the windowed per-round records the
//! experiments consume; `ServerStats` is the *export surface* — the same
//! totals as lock-free registry counters plus gauges and latency
//! histograms, renderable as Prometheus text or a JSON snapshot. When
//! stats are attached, [`crate::metrics::Metrics::push`] mirrors every
//! round into the registry, so a `RoundRecord`'s running totals and the
//! registry never disagree.
//!
//! Naming follows `DESIGN.md` §9: `cmsim_<subsystem>_<what>[_total]`,
//! with per-disk series labeled inline
//! (`cmsim_disk_queue_depth{disk="3"}`).
//!
//! [`CmServer`]: crate::server::CmServer

use scaddar_baselines::PhysicalDiskId;
use scaddar_obs::{Clock, Counter, Gauge, Histogram, MonotonicClock, Registry};
use std::sync::Arc;

/// Metric handles for one simulated server.
#[derive(Debug)]
pub struct ServerStats {
    /// Service rounds simulated (`tick` calls).
    pub rounds: Counter,
    /// Blocks requested by playing streams.
    pub requested: Counter,
    /// Blocks delivered on time.
    pub served: Counter,
    /// Requests that missed their round.
    pub hiccups: Counter,
    /// Requests served from a §6 mirror after a disk failure.
    pub recovered: Counter,
    /// Redistribution block-moves completed.
    pub moves: Counter,
    /// Redistribution moves queued by `scale()`.
    pub moves_queued: Counter,
    /// Pending redistribution moves right now.
    pub backlog: Gauge,
    /// Live streams right now.
    pub active_streams: Gauge,
    /// Streams admitted.
    pub streams_opened: Counter,
    /// Streams that finished playback (or were reaped with their
    /// object).
    pub streams_closed: Counter,
    /// Online scaling operations accepted.
    pub scale_ops: Counter,
    /// End-to-end `scale()` latency (plan + queue), nanoseconds.
    pub scale_ns: Histogram,
    /// Per-round `tick()` latency, nanoseconds.
    pub tick_ns: Histogram,
    /// Unexpected disk failures injected.
    pub disk_failures: Counter,
    /// Round records evicted from the in-memory retention window.
    pub rounds_evicted: Counter,
    /// Rehash compactions begun.
    pub compactions_started: Counter,
    /// Rehash compactions that flipped to the new generation.
    pub compactions_completed: Counter,
    /// 1 while a compaction is migrating blocks, else 0.
    pub compaction_active: Gauge,
    /// The placement generation currently serving.
    pub compaction_generation: Gauge,
    /// The generation an in-flight compaction is migrating toward.
    pub compaction_target_generation: Gauge,
    /// Blocks an in-flight compaction has not yet migrated.
    pub compaction_remaining: Gauge,
    /// Blocks the in-flight compaction must account for.
    pub compaction_total: Gauge,
    /// Time source for the latency histograms.
    pub clock: Arc<dyn Clock>,
    registry: Registry,
}

impl ServerStats {
    /// Registers the server metric family in `registry`, timing with
    /// `clock`.
    pub fn register(registry: &Registry, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(ServerStats {
            rounds: registry.counter("cmsim_server_rounds_total", "Service rounds simulated"),
            requested: registry.counter(
                "cmsim_streams_requested_total",
                "Blocks requested by playing streams",
            ),
            served: registry.counter("cmsim_streams_served_total", "Blocks delivered on time"),
            hiccups: registry.counter(
                "cmsim_streams_hiccups_total",
                "Requests that missed their round (stream stalls)",
            ),
            recovered: registry.counter(
                "cmsim_recovery_mirror_reads_total",
                "Requests served from a mirror after a disk failure",
            ),
            moves: registry.counter(
                "cmsim_redistribution_moves_total",
                "Redistribution block-moves completed",
            ),
            moves_queued: registry.counter(
                "cmsim_redistribution_moves_queued_total",
                "Redistribution moves queued by scale()",
            ),
            backlog: registry.gauge("cmsim_server_backlog", "Pending redistribution moves"),
            active_streams: registry.gauge("cmsim_server_active_streams", "Live streams"),
            streams_opened: registry.counter("cmsim_streams_opened_total", "Streams admitted"),
            streams_closed: registry.counter(
                "cmsim_streams_closed_total",
                "Streams that finished playback or were reaped",
            ),
            scale_ops: registry.counter(
                "cmsim_server_scale_ops_total",
                "Online scaling operations accepted",
            ),
            scale_ns: registry.histogram(
                "cmsim_server_scale_ns",
                "End-to-end scale() latency: plan + queue (ns)",
            ),
            tick_ns: registry.histogram("cmsim_server_tick_ns", "Per-round tick() latency (ns)"),
            disk_failures: registry.counter(
                "cmsim_faults_disk_failures_total",
                "Unexpected disk failures injected",
            ),
            rounds_evicted: registry.counter(
                "cmsim_metrics_rounds_evicted_total",
                "Round records evicted from the retention window",
            ),
            compactions_started: registry.counter(
                "cmsim_compactions_started_total",
                "Rehash compactions begun",
            ),
            compactions_completed: registry.counter(
                "cmsim_compactions_completed_total",
                "Rehash compactions that flipped to the new generation",
            ),
            compaction_active: registry.gauge(
                "cmsim_compaction_active",
                "1 while a rehash compaction is migrating blocks",
            ),
            compaction_generation: registry.gauge(
                "cmsim_compaction_generation",
                "Placement generation currently serving",
            ),
            compaction_target_generation: registry.gauge(
                "cmsim_compaction_target_generation",
                "Generation an in-flight compaction is migrating toward",
            ),
            compaction_remaining: registry.gauge(
                "cmsim_compaction_remaining_blocks",
                "Blocks an in-flight compaction has not yet migrated",
            ),
            compaction_total: registry.gauge(
                "cmsim_compaction_total_blocks",
                "Blocks the in-flight compaction must account for",
            ),
            clock,
            registry: registry.clone(),
        })
    }

    /// [`ServerStats::register`] with the default wall clock.
    pub fn register_monotonic(registry: &Registry) -> Arc<Self> {
        Self::register(registry, Arc::new(MonotonicClock::new()))
    }

    /// Per-disk gauge: pending moves sourced from `disk`. Labeled
    /// series are registered on first touch and stable thereafter.
    pub fn disk_queue_depth(&self, disk: PhysicalDiskId) -> Gauge {
        self.registry.gauge(
            &format!("cmsim_disk_queue_depth{{disk=\"{}\"}}", disk.0),
            "Pending redistribution moves sourced from this disk",
        )
    }

    /// Per-disk gauge: blocks resident on `disk` (the load census).
    pub fn disk_load(&self, disk: PhysicalDiskId) -> Gauge {
        self.registry.gauge(
            &format!("cmsim_disk_load_blocks{{disk=\"{}\"}}", disk.0),
            "Blocks resident on this disk",
        )
    }

    /// The per-disk load census as currently published in the registry
    /// (`(physical disk id, blocks)` pairs, sorted by disk id) — the
    /// read side of [`ServerStats::disk_load`], consumed by health
    /// monitors that poll the registry instead of the server. Stale
    /// until the first [`tick`](crate::server::CmServer::tick) with
    /// stats attached refreshes the gauges; gauges of drained (removed)
    /// disks remain with a load of 0.
    pub fn disk_load_census(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .registry
            .gauges_with_prefix("cmsim_disk_load_blocks{disk=\"")
            .into_iter()
            .filter_map(|(name, value)| {
                let id = name
                    .strip_prefix("cmsim_disk_load_blocks{disk=\"")?
                    .strip_suffix("\"}")?
                    .parse::<u64>()
                    .ok()?;
                Some((id, value.max(0) as u64))
            })
            .collect();
        // Name order is lexicographic ("10" < "2"); census order is
        // numeric.
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_disk_gauges_are_stable_labeled_series() {
        let registry = Registry::new();
        let stats = ServerStats::register_monotonic(&registry);
        stats.disk_queue_depth(PhysicalDiskId(3)).set(7);
        stats.disk_queue_depth(PhysicalDiskId(3)).add(-2);
        assert_eq!(stats.disk_queue_depth(PhysicalDiskId(3)).get(), 5);
        stats.disk_load(PhysicalDiskId(0)).set(100);
        let text = registry.render_prometheus();
        assert!(text.contains("cmsim_disk_queue_depth{disk=\"3\"} 5"));
        assert!(text.contains("cmsim_disk_load_blocks{disk=\"0\"} 100"));
    }

    #[test]
    fn disk_load_census_reads_back_in_numeric_order() {
        let registry = Registry::new();
        let stats = ServerStats::register_monotonic(&registry);
        // Register out of order, with a double-digit id to catch
        // lexicographic-vs-numeric ordering bugs ("10" < "2").
        stats.disk_load(PhysicalDiskId(10)).set(30);
        stats.disk_load(PhysicalDiskId(2)).set(20);
        stats.disk_load(PhysicalDiskId(0)).set(10);
        // Queue-depth gauges share the `cmsim_disk_` prefix but must
        // not leak into the load census.
        stats.disk_queue_depth(PhysicalDiskId(1)).set(99);
        assert_eq!(stats.disk_load_census(), vec![(0, 10), (2, 20), (10, 30)]);
    }
}
