//! A physical disk-drive model: where "blocks per round" comes from.
//!
//! The CM-server literature the paper builds on (\[2\], \[16\], \[18\]) sizes
//! service rounds from drive physics: a round must fit `k` block
//! retrievals, each paying a seek, rotational latency, and transfer
//! time. This module models a ca.-2001 drive (defaults resemble a
//! Seagate Cheetah X15: 3.9 ms average seek, 15k RPM, ~45 MB/s sustained
//! transfer) and derives
//!
//! * the worst-case time to serve `k` blocks in one seek-optimized sweep
//!   ([`DiskModel::sweep_time`], C-SCAN: `k` seeks bounded by the
//!   full-stroke/k amortization + `k` rotational latencies + transfers);
//! * the maximum blocks per round of a given duration
//!   ([`DiskModel::blocks_per_round`]) — the number the rest of the
//!   simulator abstracts as `disk_bandwidth`;
//! * the continuous-display constraint: a round must not exceed the time
//!   `k` consumers take to play a block ([`DiskModel::max_streams`]).
//!
//! The model is deliberately first-order (no zoning, no cache): its role
//! is to ground the simulator's bandwidth abstraction in real units and
//! expose the knobs (block size, round length) CM-server papers sweep.

/// Parameters of a disk drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time, seconds.
    pub avg_seek_s: f64,
    /// Full-stroke (worst-case) seek time, seconds.
    pub max_seek_s: f64,
    /// Spindle speed, revolutions per minute.
    pub rpm: f64,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bps: f64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

impl DiskModel {
    /// A ca.-2001 15k-RPM enterprise drive (Cheetah X15-class).
    pub fn cheetah_2001() -> Self {
        DiskModel {
            avg_seek_s: 0.0039,
            max_seek_s: 0.0087,
            rpm: 15_000.0,
            transfer_bps: 45.0e6,
            capacity_bytes: 18 * 1024 * 1024 * 1024,
        }
    }

    /// A ca.-2001 7200-RPM commodity drive (Barracuda-class) — the
    /// "older generation" in heterogeneous-array scenarios.
    pub fn barracuda_2001() -> Self {
        DiskModel {
            avg_seek_s: 0.0085,
            max_seek_s: 0.016,
            rpm: 7_200.0,
            transfer_bps: 25.0e6,
            capacity_bytes: 40 * 1024 * 1024 * 1024,
        }
    }

    /// Worst-case rotational latency: one full revolution, seconds.
    pub fn rotation_s(&self) -> f64 {
        60.0 / self.rpm
    }

    /// Transfer time for one block of `block_bytes`, seconds.
    pub fn transfer_s(&self, block_bytes: u64) -> f64 {
        block_bytes as f64 / self.transfer_bps
    }

    /// Worst-case time to retrieve `k` blocks in one C-SCAN sweep:
    /// the `k` seeks of a sweep jointly cover at most one full stroke
    /// plus per-request settle (approximated by `max_seek/k + avg_seek/2`
    /// each, the standard amortization), plus a worst-case rotation and
    /// a transfer per block.
    pub fn sweep_time(&self, k: u32, block_bytes: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k_f = f64::from(k);
        let seek_total = self.max_seek_s + k_f * (self.avg_seek_s / 2.0);
        seek_total + k_f * (self.rotation_s() + self.transfer_s(block_bytes))
    }

    /// The largest `k` whose worst-case sweep fits in `round_s` seconds.
    pub fn blocks_per_round(&self, round_s: f64, block_bytes: u64) -> u32 {
        assert!(round_s > 0.0);
        let mut k = 0u32;
        while self.sweep_time(k + 1, block_bytes) <= round_s {
            k += 1;
            if k == 1_000_000 {
                break; // absurd configuration; avoid spinning
            }
        }
        k
    }

    /// Continuous display: a stream consuming media at `consume_bps`
    /// plays one `block_bytes` block in `block_bytes / consume_bps`
    /// seconds; the round must be exactly that long. Returns the
    /// resulting `(round_s, blocks_per_round)` pair.
    pub fn round_for_rate(&self, block_bytes: u64, consume_bps: f64) -> (f64, u32) {
        assert!(consume_bps > 0.0);
        let round_s = block_bytes as f64 / consume_bps;
        (round_s, self.blocks_per_round(round_s, block_bytes))
    }

    /// Maximum simultaneous streams one disk sustains at the given block
    /// size and consumption rate — `blocks_per_round` under the
    /// continuous-display round.
    pub fn max_streams(&self, block_bytes: u64, consume_bps: f64) -> u32 {
        self.round_for_rate(block_bytes, consume_bps).1
    }

    /// Block capacity at a given block size.
    pub fn capacity_blocks(&self, block_bytes: u64) -> u64 {
        assert!(block_bytes > 0);
        self.capacity_bytes / block_bytes
    }
}

/// Sweeps block sizes and reports `(block_bytes, round_s, streams)` —
/// the classic CM-server provisioning table (bigger blocks amortize
/// seeks toward the transfer-rate bound; smaller blocks cut latency and
/// buffer memory).
pub fn provisioning_table(model: &DiskModel, consume_bps: f64) -> Vec<(u64, f64, u32)> {
    [64u64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .map(|kib| {
            let bytes = kib * 1024;
            let (round, streams) = model.round_for_rate(bytes, consume_bps);
            (bytes, round, streams)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBPS4: f64 = 4.0e6 / 8.0 * 8.0; // 4 Mbit/s MPEG-2 in bytes/s is 0.5e6; keep explicit below.

    #[test]
    fn rotation_matches_rpm() {
        let d = DiskModel::cheetah_2001();
        assert!((d.rotation_s() - 0.004).abs() < 1e-9);
        let slow = DiskModel::barracuda_2001();
        assert!((slow.rotation_s() - 60.0 / 7200.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_time_is_monotone_and_superlinear_in_overheads() {
        let d = DiskModel::cheetah_2001();
        let block = 256 * 1024;
        let mut prev = 0.0;
        for k in 1..50 {
            let t = d.sweep_time(k, block);
            assert!(t > prev);
            prev = t;
        }
        // Zero requests, zero time.
        assert_eq!(d.sweep_time(0, block), 0.0);
    }

    #[test]
    fn blocks_per_round_inverts_sweep_time() {
        let d = DiskModel::cheetah_2001();
        let block = 256 * 1024;
        for round_s in [0.25, 0.5, 1.0, 2.0] {
            let k = d.blocks_per_round(round_s, block);
            assert!(d.sweep_time(k, block) <= round_s);
            assert!(d.sweep_time(k + 1, block) > round_s);
        }
    }

    #[test]
    fn continuous_display_numbers_are_sane_for_mpeg2() {
        // 4 Mbit/s MPEG-2 = 0.5 MB/s consumption, 256 KiB blocks:
        // round = 0.524 s; a Cheetah-class disk should sustain dozens of
        // streams, a Barracuda fewer.
        let consume = 0.5e6;
        let block = 256 * 1024;
        let fast = DiskModel::cheetah_2001().max_streams(block, consume);
        let slow = DiskModel::barracuda_2001().max_streams(block, consume);
        assert!(fast > slow, "faster disk must admit more streams");
        assert!(
            (20..100).contains(&fast),
            "Cheetah MPEG-2 streams out of plausible range: {fast}"
        );
        assert!(slow >= 10, "Barracuda too weak: {slow}");
        let _ = MBPS4;
    }

    #[test]
    fn bigger_blocks_amortize_seeks() {
        // At a fixed *round length*, bigger blocks mean fewer blocks but
        // more payload; the delivered bandwidth must increase toward the
        // transfer bound.
        let d = DiskModel::cheetah_2001();
        let round = 1.0;
        let mut prev_payload = 0.0;
        for kib in [64u64, 256, 1024] {
            let bytes = kib * 1024;
            let k = d.blocks_per_round(round, bytes);
            let payload = (k as f64) * bytes as f64;
            assert!(
                payload > prev_payload,
                "payload should grow with block size"
            );
            prev_payload = payload;
        }
        assert!(prev_payload < d.transfer_bps * round);
    }

    #[test]
    fn provisioning_table_shape() {
        let table = provisioning_table(&DiskModel::cheetah_2001(), 0.5e6);
        assert_eq!(table.len(), 6);
        // Streams grow with block size under continuous display.
        assert!(table.windows(2).all(|w| w[1].2 >= w[0].2));
        // Rounds scale linearly with block size.
        assert!((table[1].1 / table[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_blocks() {
        let d = DiskModel::cheetah_2001();
        assert_eq!(d.capacity_blocks(256 * 1024), 18 * 1024 * 4);
    }
}
