//! Fault tolerance by mirroring (§6): "Mirrored blocks could be placed at
//! a fixed offset determined by a function f(N_j). For example, f(N_j)
//! could return N_j/2 as an offset."
//!
//! The mirror of a block on logical disk `d` sits on logical disk
//! `(d + f(N)) mod N`. Because the offset is a pure function of the disk
//! count, mirrors stay directory-free: `AF()` gives the primary, one add
//! and one mod give the mirror. The guarantee is loss of any *single*
//! disk never loses data (for `N >= 2`, the offset is nonzero, so primary
//! and mirror never coincide); a pair of disks exactly `f(N)` apart is
//! the minimal fatal combination.

use crate::server::CmServer;
use scaddar_core::{DiskIndex, ObjectId, ScaddarError};

/// The paper's example offset function: `f(N) = N/2`, floored, but never
/// zero for `N >= 2` (for `N = 1` mirroring is impossible and the offset
/// is 0).
pub fn mirror_offset(disks: u32) -> u32 {
    if disks < 2 {
        0
    } else {
        (disks / 2).max(1)
    }
}

/// The mirror disk of logical `primary` among `disks` disks.
pub fn mirror_of(primary: DiskIndex, disks: u32) -> DiskIndex {
    DiskIndex((primary.0 + mirror_offset(disks)) % disks)
}

/// Mirrored read-path resolution over a [`CmServer`]: where can block
/// `(object, block)` be read from if the given logical disks have failed?
///
/// Returns the surviving logical disk holding a copy, or `None` if both
/// primary and mirror are down (data loss for that block).
pub fn locate_with_failures(
    server: &CmServer,
    object: ObjectId,
    block: u64,
    failed: &[DiskIndex],
) -> Result<Option<DiskIndex>, ScaddarError> {
    let n = server.disks().disks();
    let primary = server.engine().locate(object, block)?;
    let mirror = mirror_of(primary, n);
    let down = |d: DiskIndex| failed.contains(&d);
    Ok(if !down(primary) {
        Some(primary)
    } else if !down(mirror) && mirror != primary {
        Some(mirror)
    } else {
        None
    })
}

/// Availability census under a failure set: `(readable, lost)` block
/// counts across the whole catalog.
pub fn availability_census(
    server: &CmServer,
    failed: &[DiskIndex],
) -> Result<(u64, u64), ScaddarError> {
    let mut readable = 0u64;
    let mut lost = 0u64;
    let objects: Vec<(ObjectId, u64)> = server
        .engine()
        .catalog()
        .objects()
        .iter()
        .map(|o| (o.id, o.blocks))
        .collect();
    for (id, blocks) in objects {
        for b in 0..blocks {
            match locate_with_failures(server, id, b, failed)? {
                Some(_) => readable += 1,
                None => lost += 1,
            }
        }
    }
    Ok((readable, lost))
}

/// The storage overhead of mirroring: a factor of exactly 2 (every block
/// has one mirror). The paper's §6 notes parity as the future
/// lower-overhead alternative; [`parity_group_overhead`] quantifies what
/// that would save.
pub fn mirroring_overhead() -> f64 {
    2.0
}

/// Storage overhead of an (n, n-1) parity scheme with group size `g`:
/// `g/(g-1)` (one parity block per `g-1` data blocks).
pub fn parity_group_overhead(group: u32) -> f64 {
    assert!(group >= 2, "parity group needs at least 2 members");
    f64::from(group) / f64::from(group - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use scaddar_core::ScalingOp;

    fn server(disks: u32, blocks: u64) -> (CmServer, ObjectId) {
        let mut s = CmServer::new(ServerConfig::new(disks).with_catalog_seed(13)).unwrap();
        let id = s.add_object(blocks).unwrap();
        (s, id)
    }

    #[test]
    fn offset_function_matches_paper() {
        assert_eq!(mirror_offset(6), 3);
        assert_eq!(mirror_offset(7), 3);
        assert_eq!(mirror_offset(2), 1);
        assert_eq!(mirror_offset(1), 0);
    }

    #[test]
    fn mirror_never_coincides_with_primary_for_n_ge_2() {
        for n in 2u32..50 {
            for d in 0..n {
                assert_ne!(mirror_of(DiskIndex(d), n), DiskIndex(d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn single_disk_failure_loses_nothing() {
        let (s, _) = server(6, 3_000);
        for d in 0..6 {
            let (readable, lost) = availability_census(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "disk {d} failure lost data");
            assert_eq!(readable, 3_000);
        }
    }

    #[test]
    fn opposite_pair_failure_loses_exactly_their_shared_blocks() {
        let (s, id) = server(6, 3_000);
        // Disks 0 and 3 are mirror partners (offset 3).
        let (readable, lost) = availability_census(&s, &[DiskIndex(0), DiskIndex(3)]).unwrap();
        assert!(lost > 0, "opposite pair must be fatal for some blocks");
        assert_eq!(readable + lost, 3_000);
        // The lost blocks are exactly those whose primary is 0 or 3
        // (mirror on the other failed disk).
        let mut expected_lost = 0;
        for b in 0..3_000 {
            let p = s.engine().locate(id, b).unwrap();
            if p == DiskIndex(0) || p == DiskIndex(3) {
                expected_lost += 1;
            }
        }
        assert_eq!(lost, expected_lost);
    }

    #[test]
    fn non_partner_pair_failure_loses_nothing() {
        let (s, _) = server(6, 3_000);
        // Disks 0 and 2 are not partners under offset 3 (0<->3, 2<->5).
        let (_, lost) = availability_census(&s, &[DiskIndex(0), DiskIndex(2)]).unwrap();
        assert_eq!(lost, 0);
    }

    #[test]
    fn mirror_offset_tracks_scaling() {
        let (mut s, id) = server(6, 100);
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        // Now 8 disks: offset must be 4.
        let p = s.engine().locate(id, 0).unwrap();
        assert_eq!(mirror_of(p, 8).0, (p.0 + 4) % 8);
    }

    #[test]
    fn parity_beats_mirroring_on_overhead() {
        assert!(parity_group_overhead(5) < mirroring_overhead());
        assert!((parity_group_overhead(2) - 2.0).abs() < 1e-12);
    }
}
