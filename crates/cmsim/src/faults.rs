//! Fault tolerance by mirroring (§6): "Mirrored blocks could be placed at
//! a fixed offset determined by a function f(N_j). For example, f(N_j)
//! could return N_j/2 as an offset."
//!
//! The mirror of a block on logical disk `d` sits on logical disk
//! `(d + f(N)) mod N`. Because the offset is a pure function of the disk
//! count, mirrors stay directory-free: `AF()` gives the primary, one add
//! and one mod give the mirror. The guarantee is loss of any *single*
//! disk never loses data (for `N >= 2`, the offset is nonzero, so primary
//! and mirror never coincide); a pair of disks exactly `f(N)` apart is
//! the minimal fatal combination.

use crate::server::CmServer;
use scaddar_core::{DiskIndex, ObjectId, ScaddarError};

/// The paper's example offset function: `f(N) = N/2`, floored, but never
/// zero for `N >= 2` (for `N = 1` mirroring is impossible and the offset
/// is 0).
///
/// # Scaling-epoch edge
///
/// The offset is a pure function of the **current** disk count `N_j`.
/// It is *not* stable across scaling operations: after a removal both
/// the offset value and the survivors' logical indices (the paper's
/// `new()` renumbering) change, so the disk that mirrored a primary at
/// epoch `j-1` is in general **not** the renumbering of that primary's
/// mirror at epoch `j`. Concretely, removing disk 0 from `N = 6`:
/// primary 1 renumbers to 0 and its old mirror 4 (offset 3) renumbers
/// to 3, but the epoch-`j` mirror of 0 among 5 disks (offset 2) is
/// disk 2.
///
/// Correct use is therefore: a mirror written before an operation must
/// be **re-derived, never renumbered** — readers compute
/// `mirror_of(AF(block), N_now)` per access, and the redistribution
/// that moves primaries implicitly re-pairs every mirror. Callers that
/// cache a partner disk across an epoch (or mix a write-epoch offset
/// with read-epoch indices) silently lose single-failure tolerance;
/// the regression tests below pin this invariant.
pub fn mirror_offset(disks: u32) -> u32 {
    if disks < 2 {
        0
    } else {
        (disks / 2).max(1)
    }
}

/// The mirror disk of logical `primary` among `disks` disks.
///
/// `disks` must be the disk count of the **same epoch** `primary` was
/// resolved at (see the epoch edge on [`mirror_offset`]): both the
/// offset and the logical numbering are per-epoch, so pairing an old
/// primary with a new count (or vice versa) names the wrong disk.
pub fn mirror_of(primary: DiskIndex, disks: u32) -> DiskIndex {
    DiskIndex((primary.0 + mirror_offset(disks)) % disks)
}

/// Mirrored read-path resolution over a [`CmServer`]: where can block
/// `(object, block)` be read from if the given logical disks have failed?
///
/// Returns the surviving logical disk holding a copy, or `None` if both
/// primary and mirror are down (data loss for that block).
pub fn locate_with_failures(
    server: &CmServer,
    object: ObjectId,
    block: u64,
    failed: &[DiskIndex],
) -> Result<Option<DiskIndex>, ScaddarError> {
    let n = server.disks().disks();
    let primary = server.engine().locate(object, block)?;
    let mirror = mirror_of(primary, n);
    let down = |d: DiskIndex| failed.contains(&d);
    Ok(if !down(primary) {
        Some(primary)
    } else if !down(mirror) && mirror != primary {
        Some(mirror)
    } else {
        None
    })
}

/// Availability census under a failure set: `(readable, lost)` block
/// counts across the whole catalog.
pub fn availability_census(
    server: &CmServer,
    failed: &[DiskIndex],
) -> Result<(u64, u64), ScaddarError> {
    let mut readable = 0u64;
    let mut lost = 0u64;
    let objects: Vec<(ObjectId, u64)> = server
        .engine()
        .catalog()
        .objects()
        .iter()
        .map(|o| (o.id, o.blocks))
        .collect();
    for (id, blocks) in objects {
        for b in 0..blocks {
            match locate_with_failures(server, id, b, failed)? {
                Some(_) => readable += 1,
                None => lost += 1,
            }
        }
    }
    Ok((readable, lost))
}

/// The storage overhead of mirroring: a factor of exactly 2 (every block
/// has one mirror). The paper's §6 notes parity as the future
/// lower-overhead alternative; [`parity_group_overhead`] quantifies what
/// that would save.
pub fn mirroring_overhead() -> f64 {
    2.0
}

/// Storage overhead of an (n, n-1) parity scheme with group size `g`:
/// `g/(g-1)` (one parity block per `g-1` data blocks).
pub fn parity_group_overhead(group: u32) -> f64 {
    assert!(group >= 2, "parity group needs at least 2 members");
    f64::from(group) / f64::from(group - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use scaddar_core::ScalingOp;

    fn server(disks: u32, blocks: u64) -> (CmServer, ObjectId) {
        let mut s = CmServer::new(ServerConfig::new(disks).with_catalog_seed(13)).unwrap();
        let id = s.add_object(blocks).unwrap();
        (s, id)
    }

    #[test]
    fn offset_function_matches_paper() {
        assert_eq!(mirror_offset(6), 3);
        assert_eq!(mirror_offset(7), 3);
        assert_eq!(mirror_offset(2), 1);
        assert_eq!(mirror_offset(1), 0);
    }

    #[test]
    fn mirror_never_coincides_with_primary_for_n_ge_2() {
        for n in 2u32..50 {
            for d in 0..n {
                assert_ne!(mirror_of(DiskIndex(d), n), DiskIndex(d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn single_disk_failure_loses_nothing() {
        let (s, _) = server(6, 3_000);
        for d in 0..6 {
            let (readable, lost) = availability_census(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "disk {d} failure lost data");
            assert_eq!(readable, 3_000);
        }
    }

    #[test]
    fn opposite_pair_failure_loses_exactly_their_shared_blocks() {
        let (s, id) = server(6, 3_000);
        // Disks 0 and 3 are mirror partners (offset 3).
        let (readable, lost) = availability_census(&s, &[DiskIndex(0), DiskIndex(3)]).unwrap();
        assert!(lost > 0, "opposite pair must be fatal for some blocks");
        assert_eq!(readable + lost, 3_000);
        // The lost blocks are exactly those whose primary is 0 or 3
        // (mirror on the other failed disk).
        let mut expected_lost = 0;
        for b in 0..3_000 {
            let p = s.engine().locate(id, b).unwrap();
            if p == DiskIndex(0) || p == DiskIndex(3) {
                expected_lost += 1;
            }
        }
        assert_eq!(lost, expected_lost);
    }

    #[test]
    fn non_partner_pair_failure_loses_nothing() {
        let (s, _) = server(6, 3_000);
        // Disks 0 and 2 are not partners under offset 3 (0<->3, 2<->5).
        let (_, lost) = availability_census(&s, &[DiskIndex(0), DiskIndex(2)]).unwrap();
        assert_eq!(lost, 0);
    }

    #[test]
    fn mirror_offset_tracks_scaling() {
        let (mut s, id) = server(6, 100);
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        // Now 8 disks: offset must be 4.
        let p = s.engine().locate(id, 0).unwrap();
        assert_eq!(mirror_of(p, 8).0, (p.0 + 4) % 8);
    }

    #[test]
    fn parity_beats_mirroring_on_overhead() {
        assert!(parity_group_overhead(5) < mirroring_overhead());
        assert!((parity_group_overhead(2) - 2.0).abs() < 1e-12);
    }

    /// Regression (removal-epoch edge): renumbering an old mirror is not
    /// the same disk as re-deriving the mirror at the new epoch. Pins
    /// the concrete example from the `mirror_offset` docs.
    #[test]
    fn renumbered_old_mirror_is_not_the_new_mirror() {
        use scaddar_core::RemovedSet;
        // Remove disk 0 from N=6. Survivor primary 1 renumbers to 0.
        let removed = RemovedSet::new(&[0], 6).unwrap();
        let old_primary = DiskIndex(1);
        let old_mirror = mirror_of(old_primary, 6);
        assert_eq!(old_mirror, DiskIndex(4), "offset 3 at N=6");
        let new_primary = DiskIndex(removed.renumber(old_primary.0));
        assert_eq!(new_primary, DiskIndex(0));
        let renumbered_old_mirror = DiskIndex(removed.renumber(old_mirror.0));
        let rederived_mirror = mirror_of(new_primary, 5);
        assert_eq!(renumbered_old_mirror, DiskIndex(3));
        assert_eq!(rederived_mirror, DiskIndex(2), "offset 2 at N=5");
        assert_ne!(
            renumbered_old_mirror, rederived_mirror,
            "a cached mirror partner must not survive a removal epoch"
        );
    }

    /// Regression (removal-epoch edge, end to end): across a removal,
    /// single-disk failure tolerance holds at the *new* epoch exactly
    /// when mirrors are re-derived from current `AF()` and current `N` —
    /// i.e. `availability_census` (which re-derives per access) reports
    /// zero loss for every single failure, before and after the op.
    #[test]
    fn single_failure_tolerance_survives_removal_epoch() {
        let (mut s, _) = server(6, 2_000);
        for d in 0..6 {
            let (_, lost) = availability_census(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "pre-op: disk {d}");
        }
        s.scale_offline(ScalingOp::remove_one(0)).unwrap();
        // 5 disks now; every logical index changed meaning, the offset
        // changed from 3 to 2, and yet re-derived mirroring is whole.
        for d in 0..5 {
            let (readable, lost) = availability_census(&s, &[DiskIndex(d)]).unwrap();
            assert_eq!(lost, 0, "post-op: disk {d}");
            assert_eq!(readable, 2_000);
        }
        // The minimal fatal pair also moved: it is now (d, d+2) mod 5,
        // not the old (d, d+3) mod 6.
        let (_, lost) = availability_census(&s, &[DiskIndex(1), DiskIndex(3)]).unwrap();
        assert!(lost > 0, "new-offset partners must be the fatal pair");
    }

    /// Regression (epoch mixing): pairing a pre-removal primary index
    /// with the post-removal disk count (or vice versa) names a wrong
    /// disk — the failure mode the `mirror_of` docs warn about.
    #[test]
    fn mixing_epochs_names_the_wrong_partner() {
        let (mut s, id) = server(6, 500);
        let pre: Vec<DiskIndex> = (0..500)
            .map(|b| s.engine().locate(id, b).unwrap())
            .collect();
        s.scale_offline(ScalingOp::remove_one(2)).unwrap();
        let n_now = s.disks().disks();
        let mut mixed_diverges = false;
        for (b, &old_primary) in pre.iter().enumerate() {
            let current = s.engine().locate(id, b as u64).unwrap();
            let correct = mirror_of(current, n_now);
            // Write-epoch primary with read-epoch count: out of range or
            // simply a different disk than the true partner.
            let mixed = mirror_of(old_primary, n_now);
            if mixed != correct {
                mixed_diverges = true;
            }
            assert!(correct.0 < n_now);
        }
        assert!(
            mixed_diverges,
            "stale-primary mirror derivation must diverge somewhere"
        );
    }
}
