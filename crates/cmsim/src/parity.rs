//! Parity-based fault tolerance — the paper's stated future work (§6:
//! "We also plan to investigate using data parity bits to handle faults
//! with less required storage space").
//!
//! Scheme: each object's blocks are partitioned into **parity groups**
//! of `g-1` consecutive data blocks plus one parity block (XOR of the
//! group). Parity blocks are placed by the same directory-free
//! discipline as data: a pseudo-random number derived from
//! `(object seed, group index)` run through the ordinary access
//! function, with a deterministic probe past any disk already holding a
//! group member (the parity must never share a disk with a member it
//! protects).
//!
//! Reconstruction of an unreadable block requires *every other* group
//! member: a failure set that hits two members of one group loses the
//! group's blocks on failed disks. With random placement, two *data*
//! members of a group share a disk with probability ~`g²/2N` — the
//! declustering problem that makes parity genuinely harder than the §6
//! mirroring sketch, and the reason real deployments re-stripe parity
//! after scaling. [`parity_availability_census`] measures exactly this
//! trade-off against mirroring's strict 2x storage (experiment E13).

use crate::server::CmServer;
use scaddar_core::{DiskIndex, ObjectId, ScaddarError};

/// Number of data blocks per parity group for group size `g` (`g-1`).
fn data_per_group(group_size: u32) -> u64 {
    u64::from(group_size - 1)
}

/// The parity group index of a data block.
pub fn group_of(block: u64, group_size: u32) -> u64 {
    assert!(group_size >= 2, "parity group needs >= 2 members");
    block / data_per_group(group_size)
}

/// The data-block indices of group `group` within an object of
/// `object_blocks` blocks (the last group may be short).
pub fn group_members(group: u64, group_size: u32, object_blocks: u64) -> std::ops::Range<u64> {
    let per = data_per_group(group_size);
    let start = group * per;
    start..object_blocks.min(start + per)
}

/// Number of parity groups an object of `blocks` blocks needs.
pub fn group_count(blocks: u64, group_size: u32) -> u64 {
    blocks.div_ceil(data_per_group(group_size))
}

/// Deterministic placement randomness for a parity block: an avalanche
/// over (object seed, group), independent of the data blocks' stream.
fn parity_x0(object_seed: u64, group: u64, bits: scaddar_prng::Bits) -> u64 {
    // Same mixing family as the seed deriver; any fixed avalanche works
    // as long as it is reproducible and decorrelated from p_r(s_m).
    let folded = scaddar_prng::derive_object_seed(object_seed ^ 0xA5A5_5A5A_F00D_BEEF, group);
    bits.truncate(folded)
}

/// Where the parity block of `group` of `object` lives, at the current
/// epoch, given the disks of the group's data members (to probe past).
///
/// The probe walks logical disks from the pseudo-random base until it
/// finds one not hosting a member — still a pure function of metadata,
/// so the parity block needs no directory entry either.
pub fn parity_disk(
    server: &CmServer,
    object: ObjectId,
    group: u64,
    group_size: u32,
) -> Result<DiskIndex, ScaddarError> {
    let engine = server.engine();
    let obj = *engine
        .catalog()
        .object(object)
        .ok_or(ScaddarError::UnknownObject(object))?;
    let members = group_members(group, group_size, obj.blocks);
    let mut member_disks = Vec::with_capacity(group_size as usize);
    for b in members {
        member_disks.push(engine.locate(object, b)?);
    }
    let n = server.disks().disks();
    let x = parity_x0(obj.seed, group, engine.catalog().bits());
    let base = scaddar_core::locate(x, engine.log());
    for probe in 0..n {
        let candidate = DiskIndex((base.0 + probe) % n);
        if !member_disks.contains(&candidate) {
            return Ok(candidate);
        }
    }
    // Only possible when the group spans every disk (g-1 >= N) — the
    // caller chose an unservable configuration.
    Ok(base)
}

/// Outcome of reading one data block under a failure set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParityRead {
    /// The block's own disk is alive: one access.
    Direct(DiskIndex),
    /// Rebuilt from the surviving members + parity: `g-1` accesses.
    Reconstructed {
        /// The disks read to reconstruct (other data members + parity).
        from: Vec<DiskIndex>,
    },
    /// Two or more group members are down: unrecoverable.
    Lost,
}

/// Resolves a data-block read under failures, with reconstruction.
pub fn parity_read(
    server: &CmServer,
    object: ObjectId,
    block: u64,
    group_size: u32,
    failed: &[DiskIndex],
) -> Result<ParityRead, ScaddarError> {
    let engine = server.engine();
    let obj = *engine
        .catalog()
        .object(object)
        .ok_or(ScaddarError::UnknownObject(object))?;
    let down = |d: DiskIndex| failed.contains(&d);
    let own = engine.locate(object, block)?;
    if !down(own) {
        return Ok(ParityRead::Direct(own));
    }
    // Gather the rest of the group (data siblings + parity).
    let group = group_of(block, group_size);
    let mut sources = Vec::with_capacity(group_size as usize);
    for sibling in group_members(group, group_size, obj.blocks) {
        if sibling == block {
            continue;
        }
        let d = engine.locate(object, sibling)?;
        if down(d) {
            return Ok(ParityRead::Lost);
        }
        sources.push(d);
    }
    let p = parity_disk(server, object, group, group_size)?;
    if down(p) {
        return Ok(ParityRead::Lost);
    }
    sources.push(p);
    Ok(ParityRead::Reconstructed { from: sources })
}

/// Availability census of the whole catalog under a failure set:
/// `(direct, reconstructed, lost)` block counts.
pub fn parity_availability_census(
    server: &CmServer,
    group_size: u32,
    failed: &[DiskIndex],
) -> Result<(u64, u64, u64), ScaddarError> {
    let mut direct = 0u64;
    let mut reconstructed = 0u64;
    let mut lost = 0u64;
    let objects: Vec<(ObjectId, u64)> = server
        .engine()
        .catalog()
        .objects()
        .iter()
        .map(|o| (o.id, o.blocks))
        .collect();
    for (id, blocks) in objects {
        for b in 0..blocks {
            match parity_read(server, id, b, group_size, failed)? {
                ParityRead::Direct(_) => direct += 1,
                ParityRead::Reconstructed { .. } => reconstructed += 1,
                ParityRead::Lost => lost += 1,
            }
        }
    }
    Ok((direct, reconstructed, lost))
}

/// Expected fraction of groups with an internal data-data co-location
/// (the declustering hazard): `1 - prod_{i<g-1}(1 - i/N)`, the birthday
/// bound over group members on `N` disks.
pub fn colocation_hazard(group_size: u32, disks: u32) -> f64 {
    let n = f64::from(disks);
    let mut p_clean = 1.0;
    for i in 0..(group_size - 1) {
        p_clean *= 1.0 - f64::from(i) / n;
    }
    1.0 - p_clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use scaddar_core::ScalingOp;

    fn server(disks: u32, blocks: u64) -> (CmServer, ObjectId) {
        let mut s = CmServer::new(ServerConfig::new(disks).with_catalog_seed(42)).unwrap();
        let id = s.add_object(blocks).unwrap();
        (s, id)
    }

    #[test]
    fn group_arithmetic() {
        // g=5: 4 data blocks per group.
        assert_eq!(group_of(0, 5), 0);
        assert_eq!(group_of(3, 5), 0);
        assert_eq!(group_of(4, 5), 1);
        assert_eq!(group_count(8, 5), 2);
        assert_eq!(group_count(9, 5), 3);
        assert_eq!(group_members(2, 5, 10), 8..10); // short tail group
    }

    #[test]
    fn parity_never_shares_a_disk_with_members() {
        let (s, id) = server(8, 4_000);
        for group in 0..group_count(4_000, 5) {
            let p = parity_disk(&s, id, group, 5).unwrap();
            for b in group_members(group, 5, 4_000) {
                assert_ne!(p, s.engine().locate(id, b).unwrap(), "group {group}");
            }
        }
    }

    #[test]
    fn parity_disk_is_deterministic_and_tracks_scaling() {
        let (mut s, id) = server(8, 1_000);
        let before = parity_disk(&s, id, 3, 5).unwrap();
        assert_eq!(before, parity_disk(&s, id, 3, 5).unwrap());
        s.scale_offline(ScalingOp::Add { count: 2 }).unwrap();
        let after = parity_disk(&s, id, 3, 5).unwrap();
        assert!(after.0 < 10);
        // Still valid (collision-free) at the new epoch.
        for b in group_members(3, 5, 1_000) {
            assert_ne!(after, s.engine().locate(id, b).unwrap());
        }
    }

    #[test]
    fn healthy_array_reads_directly() {
        let (s, id) = server(8, 500);
        for b in (0..500).step_by(17) {
            assert!(matches!(
                parity_read(&s, id, b, 5, &[]).unwrap(),
                ParityRead::Direct(_)
            ));
        }
    }

    #[test]
    fn single_failure_reconstructs_unless_coresident() {
        let (s, _id) = server(12, 6_000);
        let g = 4u32;
        for d in 0..12 {
            let (direct, reconstructed, lost) =
                parity_availability_census(&s, g, &[DiskIndex(d)]).unwrap();
            assert_eq!(direct + reconstructed + lost, 6_000);
            // Loss happens only for groups with two members on disk d;
            // the hazard bound says it is rare but nonzero at g=4, N=12.
            let loss_rate = lost as f64 / 6_000.0;
            let hazard = colocation_hazard(g, 12);
            assert!(
                loss_rate < hazard,
                "disk {d}: loss {loss_rate} exceeds hazard bound {hazard}"
            );
        }
    }

    #[test]
    fn reconstruction_reads_g_minus_one_disks() {
        let (s, id) = server(10, 300);
        let own = s.engine().locate(id, 42).unwrap();
        match parity_read(&s, id, 42, 5, &[own]).unwrap() {
            ParityRead::Reconstructed { from } => {
                // 3 data siblings + 1 parity.
                assert_eq!(from.len(), 4);
                assert!(!from.contains(&own));
            }
            ParityRead::Lost => {
                // Possible if a sibling shares `own` — verify that's why.
                let group = group_of(42, 5);
                let shared = group_members(group, 5, 300)
                    .filter(|&b| b != 42)
                    .any(|b| s.engine().locate(id, b).unwrap() == own);
                assert!(shared, "Lost without a co-resident sibling");
            }
            ParityRead::Direct(_) => panic!("own disk is down"),
        }
    }

    #[test]
    fn hazard_bound_shape() {
        // Bigger groups and fewer disks are riskier.
        assert!(colocation_hazard(8, 16) > colocation_hazard(4, 16));
        assert!(colocation_hazard(4, 8) > colocation_hazard(4, 32));
        assert_eq!(colocation_hazard(2, 10), 0.0); // one data member only
    }

    #[test]
    fn unknown_object_errors() {
        let (s, _) = server(4, 10);
        assert!(parity_disk(&s, ObjectId(99), 0, 4).is_err());
        assert!(parity_read(&s, ObjectId(99), 0, 4, &[]).is_err());
    }

    /// Reconstruction after loss, spanning a scaling epoch: a disk dies
    /// *after* the array has been scaled, and every block it held is
    /// either rebuilt from live disks only, or lost for exactly the
    /// co-location reason (a group sibling or the parity shared the
    /// dead disk).
    #[test]
    fn reconstruction_after_loss_spans_scaling() {
        let (mut s, id) = server(9, 2_500);
        let g = 5u32;
        s.scale_offline(ScalingOp::Add { count: 3 }).unwrap();
        s.scale_offline(ScalingOp::remove_one(1)).unwrap();
        let n = s.disks().disks();
        let dead = DiskIndex(4);
        let mut reconstructed = 0u64;
        for b in 0..2_500u64 {
            let own = s.engine().locate(id, b).unwrap();
            if own != dead {
                continue;
            }
            match parity_read(&s, id, b, g, &[dead]).unwrap() {
                ParityRead::Reconstructed { from } => {
                    reconstructed += 1;
                    // 3 or fewer data siblings (tail group) + 1 parity,
                    // all alive, all valid at the current epoch.
                    let group = group_of(b, g);
                    let members = group_members(group, g, 2_500);
                    assert_eq!(from.len() as u64, members.end - members.start);
                    for d in &from {
                        assert_ne!(*d, dead, "block {b} read from the dead disk");
                        assert!(d.0 < n);
                    }
                }
                ParityRead::Lost => {
                    let group = group_of(b, g);
                    let sibling_down = group_members(group, g, 2_500)
                        .filter(|&sib| sib != b)
                        .any(|sib| s.engine().locate(id, sib).unwrap() == dead);
                    let parity_down = parity_disk(&s, id, group, g).unwrap() == dead;
                    assert!(
                        sibling_down || parity_down,
                        "block {b} lost without a co-located group member"
                    );
                }
                ParityRead::Direct(_) => panic!("block {b}'s own disk is down"),
            }
        }
        assert!(reconstructed > 0, "no block exercised reconstruction");
    }
}
