//! The closed-loop simulation driver: workload generator + server.
//!
//! [`Simulation`] owns a [`CmServer`] and a [`WorkloadGen`] and advances
//! them together: each round it admits Poisson arrivals onto
//! Zipf-selected objects, lets existing streams issue VCR operations,
//! and ticks the server. Experiments use it to measure service quality
//! *while scaling operations run*.

use crate::config::ServerConfig;
use crate::server::{CmServer, ServerError};
use crate::stream::{PlayState, StreamId};
use crate::workload::{VcrAction, WorkloadConfig, WorkloadGen};
use scaddar_core::ObjectId;

/// A self-driving simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    server: CmServer,
    workload: WorkloadGen,
    rejected: u64,
}

impl Simulation {
    /// Builds a server with `objects` objects of `blocks_per_object`
    /// blocks each and wires up the workload generator.
    pub fn new(
        config: ServerConfig,
        workload: WorkloadConfig,
        workload_seed: u64,
        objects: u32,
        blocks_per_object: u64,
    ) -> Result<Self, ServerError> {
        let mut server = CmServer::new(config)?;
        let mut catalog = Vec::with_capacity(objects as usize);
        for _ in 0..objects {
            let id = server.add_object(blocks_per_object)?;
            catalog.push((id, blocks_per_object));
        }
        Ok(Simulation {
            server,
            workload: WorkloadGen::new(workload_seed, workload, catalog),
            rejected: 0,
        })
    }

    /// Wraps an *existing* server in a simulation, deriving the workload
    /// catalog from the server's current object catalog. This is the
    /// entry point for drivers (like the deterministic harness) that
    /// interleave object churn with workload phases: `WorkloadGen`'s
    /// catalog is fixed at construction, so after adding or removing
    /// objects a fresh wrap is required or [`Simulation::round`] would
    /// open streams on stale objects.
    pub fn from_server(server: CmServer, workload: WorkloadConfig, workload_seed: u64) -> Self {
        let catalog: Vec<(ObjectId, u64)> = server
            .engine()
            .catalog()
            .objects()
            .iter()
            .map(|o| (o.id, o.blocks))
            .collect();
        Simulation {
            server,
            workload: WorkloadGen::new(workload_seed, workload, catalog),
            rejected: 0,
        }
    }

    /// Unwraps the simulation, handing the server back to the caller
    /// (the inverse of [`Simulation::from_server`]).
    pub fn into_server(self) -> CmServer {
        self.server
    }

    /// The server (read-only).
    pub fn server(&self) -> &CmServer {
        &self.server
    }

    /// Mutable server access, for scaling operations mid-run.
    pub fn server_mut(&mut self) -> &mut CmServer {
        &mut self.server
    }

    /// Streams rejected by admission control so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Advances one round: arrivals, VCR actions, service.
    pub fn round(&mut self) {
        // Arrivals.
        for _ in 0..self.workload.arrivals() {
            let (object, _) = self.workload.pick_object();
            match self.server.open_stream(object) {
                Ok(_) => {}
                Err(ServerError::AdmissionRejected) => self.rejected += 1,
                Err(e) => panic!("unexpected open_stream error: {e}"),
            }
        }
        // VCR actions on a snapshot of live stream ids.
        let ids: Vec<(StreamId, ObjectId, bool, u64)> = self
            .server
            .streams_snapshot()
            .into_iter()
            .map(|s| {
                (
                    s.id,
                    s.object,
                    s.state == PlayState::Playing,
                    s.object_blocks,
                )
            })
            .collect();
        for (id, _object, playing, blocks) in ids {
            match self.workload.vcr_action(playing, blocks) {
                VcrAction::None => {}
                VcrAction::Pause => self.server.stream_mut(id).expect("live").pause(),
                VcrAction::Resume => self.server.stream_mut(id).expect("live").resume(),
                VcrAction::Seek(to) => self.server.stream_mut(id).expect("live").seek(to),
            }
        }
        // Service.
        self.server.tick();
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::ScalingOp;

    fn sim(arrival: f64) -> Simulation {
        Simulation::new(
            ServerConfig::new(8).with_catalog_seed(7),
            WorkloadConfig::interactive(arrival),
            99,
            20,
            1_000,
        )
        .unwrap()
    }

    #[test]
    fn runs_and_serves() {
        let mut s = sim(2.0);
        s.run(200);
        assert_eq!(s.server().metrics().len(), 200);
        assert!(s.server().metrics().total_served() > 0);
        // 8 disks x 32 bandwidth, ~2 arrivals/round on 1000-block
        // objects: far below capacity, so service is clean.
        assert!(s.server().metrics().hiccup_rate() < 0.01);
    }

    #[test]
    fn survives_scaling_mid_run() {
        let mut s = sim(1.0);
        s.run(50);
        s.server_mut().scale(ScalingOp::Add { count: 2 }).unwrap();
        s.run(300);
        assert_eq!(s.server().backlog(), 0, "redistribution must drain");
        assert!(s.server().residency_consistent() || s.server().active_streams() > 0);
        // After draining, residency must agree with AF().
        while s.server().backlog() > 0 {
            s.round();
        }
        assert!(s.server().residency_consistent());
    }

    #[test]
    fn heavy_load_triggers_rejections() {
        // Capacity: 0.8 * 1 disk * 4 = 3 streams; arrivals 5/round.
        let mut s = Simulation::new(
            ServerConfig::new(1).with_bandwidth(4).with_catalog_seed(2),
            WorkloadConfig::sequential(5.0),
            3,
            5,
            10_000,
        )
        .unwrap();
        s.run(20);
        assert!(s.rejected() > 0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut s = sim(1.5);
            s.run(100);
            (
                s.server().metrics().total_served(),
                s.server().metrics().total_hiccups(),
                s.rejected(),
            )
        };
        assert_eq!(run(), run());
    }
}
