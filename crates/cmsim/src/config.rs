//! Server configuration.

use scaddar_prng::{Bits, RngKind};

/// Static configuration of a simulated CM server.
///
/// Defaults mirror the paper's §5 setup where it is specified (32-bit
/// randomness, `eps = 5%`) and pick representative round-robin-era
/// hardware numbers elsewhere (documented per field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Initial number of disks `N_0`.
    pub initial_disks: u32,
    /// Blocks each disk can deliver per service round. A 2001-era disk
    /// streaming ~8 MB/s with 256 KB blocks and ~1 s rounds serves ~30
    /// blocks/round; we default to 32.
    pub disk_bandwidth: u32,
    /// Block capacity per disk (storage, not bandwidth). Defaults to
    /// "effectively infinite" for placement experiments; capacity-bound
    /// scenarios set it explicitly.
    pub disk_capacity: u64,
    /// Bit width of placement randomness (§5 uses 32).
    pub bits: Bits,
    /// Placement generator family.
    pub rng: RngKind,
    /// Catalog seed (decorrelates per-object seeds).
    pub catalog_seed: u64,
    /// Fairness tolerance `eps` for the §4.3 precondition (§5 uses 5%).
    pub epsilon: f64,
    /// Bandwidth per disk per round reserved for redistribution moves
    /// (source and target each spend one unit per moved block). The
    /// remainder serves streams first; redistribution may also consume
    /// leftover stream bandwidth.
    pub redistribution_bandwidth: u32,
    /// How many per-round metric records the server retains in memory
    /// (run totals are accumulators and outlive the window).
    pub metrics_retention: usize,
    /// When true, the serving layer's compaction controller may begin a
    /// rehash compaction on its own once the §4.3 budget runs low (see
    /// `auto_compact_threshold`); when false, compaction only happens on
    /// an operator's explicit `compact` command.
    pub auto_compact: bool,
    /// Remaining-safe-operations level at or below which auto-compaction
    /// fires (0 = only once no further op fits the fairness tolerance,
    /// i.e. at the monitor's `rehash-advised` CRIT).
    pub auto_compact_threshold: u32,
}

impl ServerConfig {
    /// A paper-flavoured default configuration.
    pub fn new(initial_disks: u32) -> Self {
        ServerConfig {
            initial_disks,
            disk_bandwidth: 32,
            disk_capacity: u64::MAX,
            bits: Bits::B32,
            rng: RngKind::SplitMix64,
            catalog_seed: 0,
            epsilon: 0.05,
            redistribution_bandwidth: 4,
            metrics_retention: crate::metrics::DEFAULT_RETENTION,
            auto_compact: false,
            auto_compact_threshold: 0,
        }
    }

    /// Enables (or disables) automatic rehash compaction.
    pub fn with_auto_compact(mut self, enabled: bool) -> Self {
        self.auto_compact = enabled;
        self
    }

    /// Overrides the remaining-safe-ops level that triggers
    /// auto-compaction (implies nothing about `auto_compact` itself).
    pub fn with_auto_compact_threshold(mut self, remaining_ops: u32) -> Self {
        self.auto_compact_threshold = remaining_ops;
        self
    }

    /// Overrides the per-round metrics retention window.
    pub fn with_metrics_retention(mut self, rounds: usize) -> Self {
        self.metrics_retention = rounds;
        self
    }

    /// Overrides the per-disk stream bandwidth (blocks per round).
    pub fn with_bandwidth(mut self, blocks_per_round: u32) -> Self {
        self.disk_bandwidth = blocks_per_round;
        self
    }

    /// Derives bandwidth and capacity from a physical
    /// [`DiskModel`](crate::diskmodel::DiskModel) under the
    /// continuous-display round for `block_bytes` blocks consumed at
    /// `consume_bps` — grounding the simulator's abstract "blocks per
    /// round" in drive physics.
    pub fn with_disk_model(
        mut self,
        model: &crate::diskmodel::DiskModel,
        block_bytes: u64,
        consume_bps: f64,
    ) -> Self {
        self.disk_bandwidth = model.max_streams(block_bytes, consume_bps);
        self.disk_capacity = model.capacity_blocks(block_bytes);
        self
    }

    /// Overrides the redistribution bandwidth reservation.
    pub fn with_redistribution_bandwidth(mut self, blocks_per_round: u32) -> Self {
        self.redistribution_bandwidth = blocks_per_round;
        self
    }

    /// Overrides the catalog seed.
    pub fn with_catalog_seed(mut self, seed: u64) -> Self {
        self.catalog_seed = seed;
        self
    }

    /// Overrides the placement bit width.
    pub fn with_bits(mut self, bits: Bits) -> Self {
        self.bits = bits;
        self
    }

    /// Overrides the placement generator family.
    pub fn with_rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_model_grounds_bandwidth() {
        let model = crate::diskmodel::DiskModel::cheetah_2001();
        let c = ServerConfig::new(8).with_disk_model(&model, 256 * 1024, 0.5e6);
        assert_eq!(c.disk_bandwidth, model.max_streams(256 * 1024, 0.5e6));
        assert_eq!(c.disk_capacity, model.capacity_blocks(256 * 1024));
        assert!(c.disk_bandwidth > 0);
    }

    #[test]
    fn builder_chain_applies() {
        let c = ServerConfig::new(8)
            .with_bandwidth(16)
            .with_redistribution_bandwidth(2)
            .with_catalog_seed(9)
            .with_bits(Bits::B64)
            .with_rng(RngKind::Pcg64)
            .with_auto_compact(true)
            .with_auto_compact_threshold(2);
        assert_eq!(c.initial_disks, 8);
        assert_eq!(c.disk_bandwidth, 16);
        assert_eq!(c.redistribution_bandwidth, 2);
        assert_eq!(c.catalog_seed, 9);
        assert_eq!(c.bits, Bits::B64);
        assert_eq!(c.rng, RngKind::Pcg64);
        assert!(c.auto_compact);
        assert_eq!(c.auto_compact_threshold, 2);
    }

    #[test]
    fn auto_compaction_defaults_off() {
        let c = ServerConfig::new(4);
        assert!(!c.auto_compact);
        assert_eq!(c.auto_compact_threshold, 0);
    }
}
