//! Service metrics: what "uninterrupted service during scaling" means,
//! measured.
//!
//! The paper's motivation (§1) is qualitative — no downtime, no broken
//! streams during maintenance. The simulator makes it measurable: every
//! round records demand, service, *hiccups* (a playing stream whose block
//! could not be delivered this round), and redistribution traffic.

/// One round's aggregate record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Blocks requested by playing streams.
    pub requested: u64,
    /// Blocks delivered on time.
    pub served: u64,
    /// Requests that missed their round (stream stalls).
    pub hiccups: u64,
    /// Requests served from a mirror because the primary disk has
    /// failed (§6 fault tolerance in action).
    pub recovered: u64,
    /// Redistribution block-moves completed this round.
    pub moves: u64,
    /// Redistribution moves still pending after this round.
    pub backlog: u64,
    /// Active streams at the end of the round.
    pub active_streams: u64,
}

/// Accumulated simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rounds: Vec<RoundRecord>,
}

impl Metrics {
    /// An empty metrics sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one round.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// All round records, in order.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Total rounds simulated.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total hiccups across the run.
    pub fn total_hiccups(&self) -> u64 {
        self.rounds.iter().map(|r| r.hiccups).sum()
    }

    /// Total blocks served.
    pub fn total_served(&self) -> u64 {
        self.rounds.iter().map(|r| r.served).sum()
    }

    /// Total redistribution moves executed.
    pub fn total_moves(&self) -> u64 {
        self.rounds.iter().map(|r| r.moves).sum()
    }

    /// Total mirror-served (recovered) reads.
    pub fn total_recovered(&self) -> u64 {
        self.rounds.iter().map(|r| r.recovered).sum()
    }

    /// Hiccup rate: hiccups / requests (0 when idle).
    pub fn hiccup_rate(&self) -> f64 {
        let requested: u64 = self.rounds.iter().map(|r| r.requested).sum();
        if requested == 0 {
            0.0
        } else {
            self.total_hiccups() as f64 / requested as f64
        }
    }

    /// Rounds until the redistribution backlog drained to zero, measured
    /// from the first round with a backlog; `None` if it never drained.
    pub fn drain_time(&self) -> Option<usize> {
        let start = self.rounds.iter().position(|r| r.backlog > 0)?;
        let end = self.rounds[start..].iter().position(|r| r.backlog == 0)?;
        Some(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(requested: u64, served: u64, hiccups: u64, moves: u64, backlog: u64) -> RoundRecord {
        RoundRecord {
            requested,
            served,
            hiccups,
            recovered: 0,
            moves,
            backlog,
            active_streams: 0,
        }
    }

    #[test]
    fn totals_and_rates() {
        let mut m = Metrics::new();
        m.push(rec(10, 10, 0, 0, 0));
        m.push(rec(10, 8, 2, 3, 5));
        m.push(rec(10, 10, 0, 5, 0));
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_hiccups(), 2);
        assert_eq!(m.total_served(), 28);
        assert_eq!(m.total_moves(), 8);
        assert!((m.hiccup_rate() - 2.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn drain_time_measures_backlog() {
        let mut m = Metrics::new();
        m.push(rec(0, 0, 0, 0, 0));
        m.push(rec(0, 0, 0, 2, 8)); // backlog appears
        m.push(rec(0, 0, 0, 4, 4));
        m.push(rec(0, 0, 0, 4, 0)); // drained
        assert_eq!(m.drain_time(), Some(2));
    }

    #[test]
    fn drain_time_none_cases() {
        let mut m = Metrics::new();
        m.push(rec(1, 1, 0, 0, 0));
        assert_eq!(m.drain_time(), None, "no backlog ever");
        m.push(rec(1, 1, 0, 1, 7));
        assert_eq!(m.drain_time(), None, "backlog never drained");
    }

    #[test]
    fn idle_run_has_zero_rate() {
        let m = Metrics::new();
        assert_eq!(m.hiccup_rate(), 0.0);
        assert!(m.is_empty());
    }
}
