//! Service metrics: what "uninterrupted service during scaling" means,
//! measured.
//!
//! The paper's motivation (§1) is qualitative — no downtime, no broken
//! streams during maintenance. The simulator makes it measurable: every
//! round records demand, service, *hiccups* (a playing stream whose block
//! could not be delivered this round), and redistribution traffic.
//!
//! Per-round records are kept in a bounded retention window (a ring
//! buffer of the last [`Metrics::retention`] rounds) so week-long
//! simulated runs hold steady-state memory; the run-level totals and
//! drain intervals are maintained as saturating accumulators at push
//! time and therefore survive eviction. With a
//! [`ServerStats`](crate::stats::ServerStats) attached, every push also
//! mirrors into the shared metric registry, making the registry a live
//! view of the same totals.

use crate::stats::ServerStats;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default retention window: enough for every experiment in the repo
/// while bounding a long-running simulation's memory.
pub const DEFAULT_RETENTION: usize = 4096;

/// One round's aggregate record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Blocks requested by playing streams.
    pub requested: u64,
    /// Blocks delivered on time.
    pub served: u64,
    /// Requests that missed their round (stream stalls).
    pub hiccups: u64,
    /// Requests served from a mirror because the primary disk has
    /// failed (§6 fault tolerance in action).
    pub recovered: u64,
    /// Redistribution block-moves completed this round.
    pub moves: u64,
    /// Redistribution moves still pending after this round.
    pub backlog: u64,
    /// Active streams at the end of the round.
    pub active_streams: u64,
}

/// Accumulated simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rounds: VecDeque<RoundRecord>,
    retention: usize,
    total_rounds: u64,
    total_requested: u64,
    total_served: u64,
    total_hiccups: u64,
    total_recovered: u64,
    total_moves: u64,
    evicted: u64,
    /// Completed drain intervals, in order of completion.
    drains: Vec<usize>,
    /// Round index at which the currently-draining backlog appeared.
    drain_started: Option<u64>,
    stats: Option<Arc<ServerStats>>,
}

impl Metrics {
    /// An empty metrics sink with the default retention window.
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_RETENTION)
    }

    /// An empty metrics sink retaining the last `retention` (≥ 1) round
    /// records. Totals and drain intervals are unaffected by the window.
    pub fn with_retention(retention: usize) -> Self {
        Metrics {
            retention: retention.max(1),
            ..Metrics::default()
        }
    }

    /// Mirrors every subsequent push into `stats`' registry handles.
    pub fn attach_stats(&mut self, stats: Arc<ServerStats>) {
        self.stats = Some(stats);
    }

    /// The retention window (maximum rounds kept in memory).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Records one round.
    pub fn push(&mut self, record: RoundRecord) {
        // Accumulate first: totals must not depend on the window.
        self.total_requested = self.total_requested.saturating_add(record.requested);
        self.total_served = self.total_served.saturating_add(record.served);
        self.total_hiccups = self.total_hiccups.saturating_add(record.hiccups);
        self.total_recovered = self.total_recovered.saturating_add(record.recovered);
        self.total_moves = self.total_moves.saturating_add(record.moves);
        // Drain-interval tracking: an interval opens at the first round
        // with a backlog and closes at the next backlog-free round. A
        // backlog reappearing later (another scale op) opens a new one.
        match self.drain_started {
            None if record.backlog > 0 => self.drain_started = Some(self.total_rounds),
            Some(start) if record.backlog == 0 => {
                self.drains.push((self.total_rounds - start) as usize);
                self.drain_started = None;
            }
            _ => {}
        }
        self.total_rounds += 1;
        if self.rounds.len() == self.retention {
            self.rounds.pop_front();
            self.evicted += 1;
        }
        self.rounds.push_back(record);
        if let Some(stats) = &self.stats {
            stats.rounds.inc();
            stats.requested.add(record.requested);
            stats.served.add(record.served);
            stats.hiccups.add(record.hiccups);
            stats.recovered.add(record.recovered);
            stats.moves.add(record.moves);
            stats
                .backlog
                .set(record.backlog.min(i64::MAX as u64) as i64);
            stats
                .active_streams
                .set(record.active_streams.min(i64::MAX as u64) as i64);
            if self.evicted > stats.rounds_evicted.get() {
                stats.rounds_evicted.inc();
            }
        }
    }

    /// The retained round records, oldest first (at most
    /// [`Metrics::retention`] of them; earlier rounds have been evicted
    /// but remain in the totals).
    pub fn rounds(&self) -> &VecDeque<RoundRecord> {
        &self.rounds
    }

    /// Total rounds simulated — including rounds already evicted from
    /// the retention window.
    pub fn len(&self) -> usize {
        self.total_rounds as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total_rounds == 0
    }

    /// Round records evicted from the retention window so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total hiccups across the run.
    pub fn total_hiccups(&self) -> u64 {
        self.total_hiccups
    }

    /// Total blocks served.
    pub fn total_served(&self) -> u64 {
        self.total_served
    }

    /// Total redistribution moves executed.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Total mirror-served (recovered) reads.
    pub fn total_recovered(&self) -> u64 {
        self.total_recovered
    }

    /// Hiccup rate: hiccups / requests (0 when idle).
    pub fn hiccup_rate(&self) -> f64 {
        if self.total_requested == 0 {
            0.0
        } else {
            self.total_hiccups as f64 / self.total_requested as f64
        }
    }

    /// Rounds until the *first* redistribution backlog drained to zero,
    /// measured from the first round with a backlog; `None` if no
    /// backlog ever appeared or it has not drained yet.
    ///
    /// A run with several scale operations has several drain intervals —
    /// see [`Metrics::drain_times`] for all of them.
    pub fn drain_time(&self) -> Option<usize> {
        self.drains.first().copied()
    }

    /// Every completed drain interval, in order: for each time a
    /// redistribution backlog appeared, the number of rounds until it
    /// reached zero. A backlog still draining is not included.
    pub fn drain_times(&self) -> &[usize] {
        &self.drains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(requested: u64, served: u64, hiccups: u64, moves: u64, backlog: u64) -> RoundRecord {
        RoundRecord {
            requested,
            served,
            hiccups,
            recovered: 0,
            moves,
            backlog,
            active_streams: 0,
        }
    }

    #[test]
    fn totals_and_rates() {
        let mut m = Metrics::new();
        m.push(rec(10, 10, 0, 0, 0));
        m.push(rec(10, 8, 2, 3, 5));
        m.push(rec(10, 10, 0, 5, 0));
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_hiccups(), 2);
        assert_eq!(m.total_served(), 28);
        assert_eq!(m.total_moves(), 8);
        assert!((m.hiccup_rate() - 2.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn drain_time_measures_backlog() {
        let mut m = Metrics::new();
        m.push(rec(0, 0, 0, 0, 0));
        m.push(rec(0, 0, 0, 2, 8)); // backlog appears
        m.push(rec(0, 0, 0, 4, 4));
        m.push(rec(0, 0, 0, 4, 0)); // drained
        assert_eq!(m.drain_time(), Some(2));
        assert_eq!(m.drain_times(), &[2]);
    }

    #[test]
    fn drain_time_none_cases() {
        let mut m = Metrics::new();
        m.push(rec(1, 1, 0, 0, 0));
        assert_eq!(m.drain_time(), None, "no backlog ever");
        m.push(rec(1, 1, 0, 1, 7));
        assert_eq!(m.drain_time(), None, "backlog never drained");
        assert!(m.drain_times().is_empty());
    }

    /// Regression: a second scale op's backlog after the first drained
    /// used to be invisible — `drain_time` stopped at the first
    /// interval. `drain_times` reports every completed interval.
    #[test]
    fn backlog_reappearing_yields_multiple_drain_intervals() {
        let mut m = Metrics::new();
        m.push(rec(0, 0, 0, 0, 0));
        m.push(rec(0, 0, 0, 2, 8)); // scale #1: backlog appears
        m.push(rec(0, 0, 0, 4, 4));
        m.push(rec(0, 0, 0, 4, 0)); // drained after 2 rounds
        m.push(rec(0, 0, 0, 0, 0));
        m.push(rec(0, 0, 0, 1, 6)); // scale #2: backlog reappears
        m.push(rec(0, 0, 0, 2, 4));
        m.push(rec(0, 0, 0, 2, 2));
        m.push(rec(0, 0, 0, 2, 0)); // drained after 3 rounds
        assert_eq!(m.drain_times(), &[2, 3]);
        assert_eq!(m.drain_time(), Some(2), "first drain, unchanged");
        // A third backlog still draining stays out of the list.
        m.push(rec(0, 0, 0, 0, 9));
        assert_eq!(m.drain_times(), &[2, 3]);
    }

    #[test]
    fn idle_run_has_zero_rate() {
        let m = Metrics::new();
        assert_eq!(m.hiccup_rate(), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn retention_window_bounds_memory_but_not_totals() {
        let mut m = Metrics::with_retention(4);
        for i in 0..10u64 {
            m.push(rec(10, 9, 1, i, if i % 2 == 0 { 1 } else { 0 }));
        }
        assert_eq!(m.rounds().len(), 4, "window holds the last 4 rounds");
        assert_eq!(m.evicted(), 6);
        assert_eq!(m.len(), 10, "len counts evicted rounds");
        // Totals accumulated at push time, unaffected by eviction.
        assert_eq!(m.total_served(), 90);
        assert_eq!(m.total_hiccups(), 10);
        assert_eq!(m.total_moves(), (0..10).sum::<u64>());
        assert!((m.hiccup_rate() - 0.1).abs() < 1e-12);
        // The window really is the *last* rounds.
        assert_eq!(m.rounds()[3].moves, 9);
        assert_eq!(m.rounds()[0].moves, 6);
        // Drain intervals kept as accumulators too: backlog alternated
        // 1,0 so every appearance drained in one round.
        assert_eq!(m.drain_times(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let mut m = Metrics::with_retention(2);
        m.push(rec(u64::MAX, u64::MAX, u64::MAX, u64::MAX, 0));
        m.push(rec(100, 100, 100, 100, 0));
        assert_eq!(m.total_served(), u64::MAX);
        assert_eq!(m.total_hiccups(), u64::MAX);
        assert_eq!(m.total_moves(), u64::MAX);
        assert!((m.hiccup_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attached_stats_mirror_totals_into_the_registry() {
        use scaddar_obs::Registry;
        let registry = Registry::new();
        let stats = crate::stats::ServerStats::register_monotonic(&registry);
        let mut m = Metrics::with_retention(2);
        m.attach_stats(stats.clone());
        m.push(rec(10, 8, 2, 3, 5));
        m.push(rec(10, 10, 0, 5, 0));
        m.push(rec(4, 4, 0, 0, 0));
        assert_eq!(stats.rounds.get(), 3);
        assert_eq!(stats.requested.get(), 24);
        assert_eq!(stats.served.get(), 22);
        assert_eq!(stats.hiccups.get(), 2);
        assert_eq!(stats.moves.get(), 8);
        assert_eq!(stats.backlog.get(), 0, "gauge tracks the latest round");
        assert_eq!(stats.rounds_evicted.get(), m.evicted());
        // The registry is a live view of the same totals.
        assert_eq!(stats.served.get(), m.total_served());
    }
}
