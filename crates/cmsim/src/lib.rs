//! # cmsim — a continuous media server simulator around SCADDAR
//!
//! The paper's setting is a CM (video/audio) server that must keep
//! streaming while disks are added and removed. This crate builds that
//! setting so the placement algorithm can be evaluated *in situ*:
//!
//! * [`disk`] — physical disks with bandwidth/capacity behind SCADDAR's
//!   logical indices;
//! * [`store`] — actual block residency (which lags placement during
//!   online redistribution);
//! * [`stream`], [`workload`], [`admission`] — client sessions with VCR
//!   interactivity, Zipf popularity, Poisson arrivals, statistical
//!   admission control;
//! * [`redistribute`] — the rate-limited online redistribution executor;
//! * [`compaction`] — online rehash to the next placement generation
//!   (dual-generation serving during cutover, atomic flip);
//! * [`server`] — the round-based server tying it all together;
//! * [`sim`] — the closed-loop driver (workload + server);
//! * [`concurrent`] — thread-safe online access during scaling
//!   (lookups never see torn epochs);
//! * [`faults`] — §6's mirroring extension (`f(N_j) = N_j/2` offset);
//! * [`hetero`] — §6's heterogeneous-array extension via weighted
//!   logical disks;
//! * [`metrics`], [`config`] — measurement and configuration.
//!
//! ## Quick example
//!
//! ```
//! use cmsim::{CmServer, ServerConfig};
//! use scaddar_core::ScalingOp;
//!
//! let mut server = CmServer::new(ServerConfig::new(4)).unwrap();
//! let movie = server.add_object(1_000).unwrap();
//! let viewer = server.open_stream(movie).unwrap();
//!
//! // Scale online: moves are queued, streams keep playing.
//! server.scale(ScalingOp::Add { count: 1 }).unwrap();
//! while server.backlog() > 0 {
//!     server.tick();
//! }
//! assert!(server.residency_consistent());
//! assert_eq!(server.metrics().total_hiccups(), 0);
//! # let _ = viewer;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod compaction;
pub mod concurrent;
pub mod config;
pub mod decluster;
pub mod disk;
pub mod diskmodel;
pub mod faults;
pub mod hetero;
pub mod metrics;
pub mod parity;
pub mod redistribute;
pub mod scrub;
pub mod server;
pub mod sim;
pub mod stats;
pub mod store;
pub mod stream;
pub mod workload;

pub use admission::AdmissionController;
pub use compaction::CompactionProgress;
pub use concurrent::{
    BatchRead, CoalescedRead, EpochRead, LocateAnswer, LocateQuery, SharedServer,
};
pub use config::ServerConfig;
pub use decluster::{DeclusteredParity, RepairStats};
pub use disk::{DiskArray, DiskSpec};
pub use diskmodel::{provisioning_table, DiskModel};
pub use faults::{availability_census, locate_with_failures, mirror_of, mirror_offset};
pub use hetero::{HeteroDiskId, HeteroMap};
pub use metrics::{Metrics, RoundRecord, DEFAULT_RETENTION};
pub use parity::{parity_availability_census, parity_disk, parity_read, ParityRead};
pub use redistribute::{PendingMove, RedistributionExecutor};
pub use scrub::{ScrubReport, Scrubber};
pub use server::{CmServer, ServerError};
pub use sim::Simulation;
pub use stats::ServerStats;
pub use store::BlockStore;
pub use stream::{PlayState, Stream, StreamId};
pub use workload::{VcrAction, WorkloadConfig, WorkloadGen, Zipf};
