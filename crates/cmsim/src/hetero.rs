//! Heterogeneous disk arrays via logical disks (§6 future work, following
//! Zimmermann & Ghandeharizadeh's heterogeneous-display technique, the
//! paper's reference \[18\]).
//!
//! SCADDAR places over *homogeneous logical disks*. A heterogeneous
//! physical array is presented to it by carving each physical disk into a
//! number of logical disks proportional to its capability (its weight):
//! a disk twice as fast/large backs twice as many logical disks and so
//! receives twice the blocks and twice the expected demand. Scaling a
//! physical disk in or out becomes a *group* addition or removal of its
//! logical disks — exactly the disk-group operations SCADDAR supports.

use scaddar_core::{DiskIndex, ScalingError, ScalingOp};

/// Stable identity of a heterogeneous physical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeteroDiskId(pub u64);

/// The logical-over-physical mapping of a heterogeneous array.
#[derive(Debug, Clone, Default)]
pub struct HeteroMap {
    /// One entry per logical disk (dense, in SCADDAR's logical order):
    /// the physical disk backing it.
    backing: Vec<HeteroDiskId>,
    /// `(id, weight)` of live physical disks, insertion order.
    physicals: Vec<(HeteroDiskId, u32)>,
    next_id: u64,
}

impl HeteroMap {
    /// An empty array.
    pub fn new() -> Self {
        HeteroMap::default()
    }

    /// Number of logical disks (what SCADDAR sees as `N`).
    pub fn logical_disks(&self) -> u32 {
        self.backing.len() as u32
    }

    /// Number of physical disks.
    pub fn physical_disks(&self) -> usize {
        self.physicals.len()
    }

    /// Live physical disks and their weights.
    pub fn physicals(&self) -> &[(HeteroDiskId, u32)] {
        &self.physicals
    }

    /// The physical disk backing a logical index.
    pub fn backing(&self, logical: DiskIndex) -> HeteroDiskId {
        self.backing[logical.0 as usize]
    }

    /// Attaches a physical disk of the given weight (number of logical
    /// disks it backs; proportional to its bandwidth/capacity). Returns
    /// its id and the scaling operation to feed SCADDAR.
    pub fn attach(&mut self, weight: u32) -> Result<(HeteroDiskId, ScalingOp), ScalingError> {
        if weight == 0 {
            return Err(ScalingError::EmptyAddition);
        }
        let id = HeteroDiskId(self.next_id);
        self.next_id += 1;
        for _ in 0..weight {
            self.backing.push(id);
        }
        self.physicals.push((id, weight));
        Ok((id, ScalingOp::Add { count: weight }))
    }

    /// Detaches a physical disk: returns the group-removal operation for
    /// its logical disks and updates the mapping (with the same rank
    /// renumbering SCADDAR applies).
    pub fn detach(&mut self, id: HeteroDiskId) -> Result<ScalingOp, ScalingError> {
        let logical_indices: Vec<u32> = self
            .backing
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == id).then_some(i as u32))
            .collect();
        if logical_indices.is_empty() {
            return Err(ScalingError::EmptyRemoval);
        }
        if logical_indices.len() == self.backing.len() {
            return Err(ScalingError::WouldRemoveAllDisks);
        }
        self.backing.retain(|&b| b != id);
        self.physicals.retain(|&(p, _)| p != id);
        Ok(ScalingOp::Remove {
            disks: logical_indices,
        })
    }

    /// Expected share of the total load on each physical disk
    /// (weight / total weight), in `physicals()` order — the target
    /// distribution a balanced heterogeneous placement should achieve.
    pub fn expected_shares(&self) -> Vec<f64> {
        let total: u32 = self.physicals.iter().map(|&(_, w)| w).sum();
        self.physicals
            .iter()
            .map(|&(_, w)| f64::from(w) / f64::from(total.max(1)))
            .collect()
    }

    /// Aggregates a logical-disk census into a physical-disk census
    /// (in `physicals()` order).
    pub fn aggregate_census(&self, logical_census: &[u64]) -> Vec<u64> {
        assert_eq!(
            logical_census.len(),
            self.backing.len(),
            "census size mismatch"
        );
        self.physicals
            .iter()
            .map(|&(id, _)| {
                self.backing
                    .iter()
                    .zip(logical_census)
                    .filter_map(|(&b, &c)| (b == id).then_some(c))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::{Scaddar, ScaddarConfig};

    #[test]
    fn attach_detach_bookkeeping() {
        let mut h = HeteroMap::new();
        let (a, op_a) = h.attach(2).unwrap();
        let (b, op_b) = h.attach(4).unwrap();
        assert_eq!(op_a, ScalingOp::Add { count: 2 });
        assert_eq!(op_b, ScalingOp::Add { count: 4 });
        assert_eq!(h.logical_disks(), 6);
        assert_eq!(h.physical_disks(), 2);
        // Detach the first: its logical indices are 0 and 1.
        let op = h.detach(a).unwrap();
        assert_eq!(op, ScalingOp::Remove { disks: vec![0, 1] });
        assert_eq!(h.logical_disks(), 4);
        assert!(h.backing.iter().all(|&x| x == b));
    }

    #[test]
    fn shares_follow_weights() {
        let mut h = HeteroMap::new();
        h.attach(1).unwrap();
        h.attach(3).unwrap();
        let shares = h.expected_shares();
        assert!((shares[0] - 0.25).abs() < 1e-12);
        assert!((shares[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn detach_errors() {
        let mut h = HeteroMap::new();
        let (a, _) = h.attach(2).unwrap();
        assert_eq!(h.detach(HeteroDiskId(99)), Err(ScalingError::EmptyRemoval));
        assert_eq!(h.detach(a), Err(ScalingError::WouldRemoveAllDisks));
    }

    /// Detach renumbering agrees with SCADDAR's own `new()` rank map:
    /// applying the detach op's [`RemovedSet`] renumbering to every
    /// surviving pre-detach logical index reproduces the map's updated
    /// backing table, through interleaved attach/detach churn.
    #[test]
    fn detach_renumbering_matches_removed_set_ranks() {
        use scaddar_core::RemovedSet;
        let mut h = HeteroMap::new();
        let (_a, _) = h.attach(3).unwrap();
        let (b, _) = h.attach(2).unwrap();
        let (_c, _) = h.attach(4).unwrap();
        let before = h.backing.clone();
        let disks_before = h.logical_disks();
        let op = h.detach(b).unwrap();
        let removed = match &op {
            ScalingOp::Remove { disks } => RemovedSet::new(disks, disks_before).unwrap(),
            _ => unreachable!("detach emits removals"),
        };
        for (old_idx, &backer) in before.iter().enumerate() {
            let old_idx = old_idx as u32;
            if removed.contains(old_idx) {
                assert_eq!(backer, b, "only b's logical disks are removed");
            } else {
                let new_idx = removed.renumber(old_idx);
                assert_eq!(
                    h.backing(DiskIndex(new_idx)),
                    backer,
                    "survivor {old_idx} -> {new_idx} changed backers"
                );
            }
        }
        assert_eq!(h.logical_disks(), disks_before - removed.len());
    }

    /// Weighting sanity under churn: shares always sum to 1, follow the
    /// declared weights, and the census aggregation conserves blocks.
    #[test]
    fn weighting_sanity_through_churn() {
        let mut h = HeteroMap::new();
        let (a, _) = h.attach(1).unwrap();
        h.attach(5).unwrap();
        h.attach(2).unwrap();
        let shares = h.expected_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 1.0 / 8.0).abs() < 1e-12);
        assert!((shares[1] - 5.0 / 8.0).abs() < 1e-12);
        h.detach(a).unwrap();
        let shares = h.expected_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 5.0 / 7.0).abs() < 1e-12);

        let logical_census: Vec<u64> = (0..h.logical_disks() as u64).map(|i| 10 + i).collect();
        let phys = h.aggregate_census(&logical_census);
        assert_eq!(
            phys.iter().sum::<u64>(),
            logical_census.iter().sum::<u64>(),
            "aggregation conserves blocks"
        );
        assert_eq!(phys.len(), h.physical_disks());
    }

    /// End to end with SCADDAR: a 1:3 weighted pair receives load in a
    /// 1:3 ratio, and detaching a physical disk moves only its share.
    #[test]
    fn scaddar_over_heterogeneous_array_balances_by_weight() {
        let mut h = HeteroMap::new();
        let (_, op1) = h.attach(2).unwrap();
        // SCADDAR starts once the first group exists.
        let count1 = match op1 {
            ScalingOp::Add { count } => count,
            _ => unreachable!(),
        };
        let mut engine = Scaddar::new(ScaddarConfig::new(count1).with_catalog_seed(4)).unwrap();
        engine.add_object(60_000);
        let (fat, op2) = h.attach(6).unwrap();
        engine.scale(op2).unwrap();

        let logical_census = engine.load_distribution();
        let phys = h.aggregate_census(&logical_census);
        let shares = h.expected_shares();
        let total: u64 = phys.iter().sum();
        for (i, (&got, &want)) in phys.iter().zip(&shares).enumerate() {
            let frac = got as f64 / total as f64;
            assert!(
                (frac - want).abs() < 0.02,
                "physical {i}: share {frac} vs expected {want}"
            );
        }

        // Detaching the heavy disk moves ~its share and no more.
        let op = h.detach(fat).unwrap();
        let plan = engine.scale(op).unwrap();
        assert!((plan.moved_fraction() - 0.75).abs() < 0.02);
    }
}
