//! Compaction smoke run: boots a single cmsim shard, burns the §4.3
//! fairness budget with remove/add round-trips until the monitor goes
//! CRIT, then lets the auto-compaction policy fire and serves a seeded
//! lookup workload through the entire dual-generation cutover.
//!
//! Emits criterion-shim-compatible JSON (`compact/*` rows) that
//! `bench_report` folds into `BENCH_compact.json`. Exits nonzero on:
//!
//! * any **hiccup** (a lookup that errored or landed out of range at
//!   any point of the cutover);
//! * any **unknown object** (a cataloged block the serving path could
//!   not place, audited by full-catalog sweeps before, during, and
//!   after the migration);
//! * a post-compaction locate slower than 1.2× a fresh chain-length-0
//!   engine over the same catalog (the collapse-to-O(1) acceptance
//!   gate);
//! * a flip that leaves residency inconsistent or the budget unfilled.
//!
//! ```text
//! cargo run --release -p scaddar-compact --bin compaction_smoke -- \
//!     [--seed N] [--objects N] [--blocks N] [--disks N] [--out PATH]
//! ```
//!
//! `--seed` defaults to `HARNESS_SEED` when set, so CI can pin and
//! upload the seed alongside the artifacts.

use cmsim::{CmServer, ServerConfig};
use scaddar_compact::CompactionController;
use scaddar_core::ScalingOp;
use scaddar_monitor::{HealthMonitor, MonitorConfig, Severity};
use scaddar_obs::VirtualClock;
use scaddar_prng::{Pcg64, SeededRng};
use std::fmt::Write as _;
use std::sync::Arc;

/// Lookups timed per measurement repetition; the best of three
/// repetitions is reported so scheduler noise cannot fake a ratio.
const TIMED_LOOKUPS: u64 = 200_000;
/// Lookups served between executor ticks while the migration drains.
const LOOKUPS_PER_ROUND: u64 = 32;

fn push_result(out: &mut String, bench: &str, value: f64) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    write!(
        out,
        "  {{\"group\": \"compact\", \"bench\": \"{bench}\", \"ns_per_iter\": {value:.6}, \"iterations\": 1}}"
    )
    .expect("write to string");
}

/// Mean ns per `locate_current` over the seeded workload, best of
/// three repetitions (wall time; the checksum defeats dead-code
/// elimination).
fn measure_locate(server: &CmServer, objects: u64, blocks: u64, seed: u64) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..3u64 {
        let mut rng = Pcg64::from_seed(seed ^ (0xBE_AC << 8) ^ rep);
        let start = std::time::Instant::now();
        let mut checksum = 0u64;
        for _ in 0..TIMED_LOOKUPS {
            let object = scaddar_core::ObjectId(rng.next_u64() % objects);
            let block = rng.next_u64() % blocks;
            let disk = server.locate_current(object, block).expect("catalog block");
            checksum = checksum.wrapping_add(u64::from(disk.0));
        }
        let ns = start.elapsed().as_nanos() as f64 / TIMED_LOOKUPS as f64;
        std::hint::black_box(checksum);
        best = best.min(ns);
    }
    best
}

/// Full-catalog sweep: every block of every cataloged object must
/// resolve to an in-range disk through the generation-aware path.
/// Returns the number of unplaceable blocks (the unknown-object gate).
fn audit_catalog(server: &CmServer) -> u64 {
    let disks = server.engine().disks();
    let mut unknown = 0u64;
    for obj in server.engine().catalog().objects() {
        for block in 0..obj.blocks {
            match server.locate_current(obj.id, block) {
                Ok(d) if d.0 < disks => {}
                _ => unknown += 1,
            }
        }
    }
    unknown
}

fn main() {
    let mut seed: u64 = std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5CADDA);
    let mut objects: u64 = 24;
    let mut blocks: u64 = 2_000;
    let mut disks: u32 = 8;
    let mut out_path = "target/criterion-json/compact.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric --seed"),
            "--objects" => objects = value("--objects").parse().expect("numeric --objects"),
            "--blocks" => blocks = value("--blocks").parse().expect("numeric --blocks"),
            "--disks" => disks = value("--disks").parse().expect("numeric --disks"),
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!("compaction_smoke: seed={seed} objects={objects} blocks={blocks} disks={disks}");

    let config = ServerConfig::new(disks)
        .with_catalog_seed(seed)
        .with_auto_compact(true)
        .with_auto_compact_threshold(0);
    let mut server = CmServer::new(config).expect("server boot");
    for _ in 0..objects {
        server.add_object(blocks).expect("add object");
    }
    let clock = Arc::new(VirtualClock::new());
    let mut monitor =
        HealthMonitor::for_engine(MonitorConfig::default(), clock.clone(), server.engine());
    let mut controller = CompactionController::from_config(&config);

    // Burn the §4.3 budget: remove/add round-trips are the fastest
    // spenders, each drained offline so the executor stays idle.
    while server.next_op_is_safe(&ScalingOp::remove_one(0)) {
        server
            .scale_offline(ScalingOp::remove_one(0))
            .expect("remove");
        server
            .scale_offline(ScalingOp::Add { count: 1 })
            .expect("add");
    }
    monitor.observe_engine(server.engine());
    let chain_before = server.engine().log().epoch() as u64;
    let budget_before = u64::from(monitor.budget_remaining());
    let verdict_before = monitor.report().verdict();
    println!(
        "compaction_smoke: budget burned — chain {chain_before} ops, \
         {budget_before} safe op(s) left, verdict {verdict_before:?}"
    );
    assert_eq!(
        verdict_before,
        Severity::Crit,
        "the burn loop must drive the monitor to CRIT before compaction"
    );
    let mut unknown_objects = audit_catalog(&server);
    let locate_before_ns = measure_locate(&server, objects, blocks, seed);
    println!("compaction_smoke: long-chain locate {locate_before_ns:.1} ns");

    // The auto policy fires on the first step (budget 0 ≤ threshold 0);
    // the shard keeps serving the seeded workload through the cutover.
    let mut rng = Pcg64::from_seed(seed ^ 0xC0_4A_C7);
    let mut hiccups = 0u64;
    let mut lookups_served = 0u64;
    let mut moved_blocks = 0u64;
    let mut midway_audited = false;
    let total_blocks = server.engine().catalog().total_blocks();
    let mut rounds = 0u64;
    loop {
        clock.advance(1_000);
        for event in controller.step(&mut server, &mut monitor) {
            println!("compaction_smoke: {event}");
            if let scaddar_compact::ControllerEvent::Started { queued, .. } = event {
                moved_blocks = queued;
            }
        }
        if !server.compaction_active() && !controller.in_flight() {
            break;
        }
        for _ in 0..LOOKUPS_PER_ROUND {
            let object = scaddar_core::ObjectId(rng.next_u64() % objects);
            let block = rng.next_u64() % blocks;
            match server.locate_current(object, block) {
                Ok(d) if d.0 < server.engine().disks() => lookups_served += 1,
                _ => hiccups += 1,
            }
        }
        // One full sweep while the migration is genuinely half-done:
        // the unknown-object gate must hold under dual-generation
        // serving, not just at the endpoints.
        if !midway_audited
            && server
                .compaction_progress()
                .is_some_and(|p| p.fraction() >= 0.5)
        {
            unknown_objects += audit_catalog(&server);
            midway_audited = true;
            println!("compaction_smoke: mid-cutover catalog sweep clean");
        }
        server.tick();
        rounds += 1;
        assert!(
            rounds <= total_blocks + 10_000,
            "compaction wedged after {rounds} rounds"
        );
    }
    unknown_objects += audit_catalog(&server);
    monitor.observe_engine(server.engine());
    let generation = server.generation();
    let chain_after = server.engine().log().epoch() as u64;
    let budget_after = u64::from(monitor.budget_remaining());
    let residency_ok = server.residency_consistent();
    println!(
        "compaction_smoke: flipped to generation {generation} in {rounds} round(s) — \
         chain {chain_after} ops, {budget_after} safe op(s), \
         served {lookups_served} lookup(s), {hiccups} hiccup(s), \
         {unknown_objects} unknown object(s), residency_ok={residency_ok}"
    );
    let locate_after_ns = measure_locate(&server, objects, blocks, seed);

    // Fresh-engine baseline: a brand-new shard over the same catalog
    // (chain length 0 by construction) is what "collapsed to O(1)"
    // must be indistinguishable from.
    let fresh_config = ServerConfig::new(disks).with_catalog_seed(seed);
    let mut fresh = CmServer::new(fresh_config).expect("fresh boot");
    for _ in 0..objects {
        fresh.add_object(blocks).expect("add object");
    }
    let locate_fresh_ns = measure_locate(&fresh, objects, blocks, seed);
    let locate_ratio = locate_after_ns / locate_fresh_ns;
    println!(
        "compaction_smoke: locate before={locate_before_ns:.1}ns \
         after={locate_after_ns:.1}ns fresh={locate_fresh_ns:.1}ns \
         ratio={locate_ratio:.3}"
    );

    let mut results = String::new();
    push_result(&mut results, "locate_before_ns", locate_before_ns);
    push_result(&mut results, "locate_after_ns", locate_after_ns);
    push_result(&mut results, "locate_fresh_ns", locate_fresh_ns);
    push_result(&mut results, "locate_ratio", locate_ratio);
    push_result(&mut results, "hiccups", hiccups as f64);
    push_result(&mut results, "unknown_objects", unknown_objects as f64);
    push_result(&mut results, "lookups_served", lookups_served as f64);
    push_result(&mut results, "chain_ops_before", chain_before as f64);
    push_result(&mut results, "chain_ops_after", chain_after as f64);
    push_result(&mut results, "generation", generation as f64);
    push_result(&mut results, "moved_blocks", moved_blocks as f64);
    push_result(&mut results, "total_blocks", total_blocks as f64);
    push_result(&mut results, "budget_before", budget_before as f64);
    push_result(&mut results, "budget_after", budget_after as f64);
    let json = format!("{{\"bench\": \"compact\", \"results\": [\n{results}\n]}}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("compaction_smoke: wrote {out_path}");

    let gates_ok = hiccups == 0
        && unknown_objects == 0
        && locate_ratio <= 1.2
        && residency_ok
        && generation == 1
        && chain_after == 0
        && budget_after > 0;
    if !gates_ok {
        eprintln!(
            "compaction_smoke: FAILED (hiccups={hiccups}, unknown_objects={unknown_objects}, \
             locate_ratio={locate_ratio:.3}, residency_ok={residency_ok}, \
             generation={generation}, chain_after={chain_after}, budget_after={budget_after})"
        );
        std::process::exit(1);
    }
    println!("compaction_smoke: OK");
}
