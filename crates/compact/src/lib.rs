//! # scaddar-compact — the generation manager
//!
//! SCADDAR's §4.3 budget is a *diagnosis*: after enough scaling
//! operations the REMAP chain (§4.2) grows long and the b-bit
//! randomness thins out, and the monitor fires `rehash-advised`. This
//! crate is the *remedy*. A [`CompactionController`] closes the loop
//! from that health signal to an **online rehash compaction**: the
//! serving layer opens a fresh placement generation (a new `X_0 mod
//! N_j` seed with an empty scaling log), migrates every block to its
//! new home through the same rate-limited executor that serves
//! redistribution, keeps serving from *both* generations during the
//! cutover, and flips atomically once the last move lands — collapsing
//! every lookup back to a single O(1) hash and refilling the fairness
//! budget.
//!
//! Two triggers, one mechanism:
//!
//! * **manual** — an operator's `compact` command calls
//!   [`CompactionController::request`];
//! * **auto** — with [`cmsim::ServerConfig::auto_compact`] enabled, the
//!   controller watches the monitor's remaining-safe-ops number and
//!   fires once it sinks to
//!   [`auto_compact_threshold`](cmsim::ServerConfig::auto_compact_threshold).
//!
//! Either way, [`CompactionController::step`] is the whole control
//! loop: call it once per service round (right after
//! [`cmsim::CmServer::tick`]) and it begins, tracks, and completes
//! compactions, narrating each transition into the health monitor's
//! event stream (`compaction-active` / `compaction-complete`).
//!
//! ```
//! use cmsim::{CmServer, ServerConfig};
//! use scaddar_compact::CompactionController;
//! use scaddar_monitor::{HealthMonitor, MonitorConfig};
//! use scaddar_obs::VirtualClock;
//! use std::sync::Arc;
//!
//! let config = ServerConfig::new(6).with_catalog_seed(7);
//! let mut server = CmServer::new(config).unwrap();
//! server.add_object(5_000).unwrap();
//! let mut monitor = HealthMonitor::for_engine(
//!     MonitorConfig::default(),
//!     Arc::new(VirtualClock::new()),
//!     server.engine(),
//! );
//! let mut controller = CompactionController::from_config(&config);
//!
//! controller.request(); // operator: `compact`
//! while {
//!     controller.step(&mut server, &mut monitor);
//!     server.compaction_active() || controller.in_flight()
//! } {
//!     server.tick();
//! }
//! assert_eq!(server.generation(), 1); // chain length 0 again
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cmsim::{CmServer, ServerConfig, ServerError, SharedServer};
use scaddar_monitor::HealthMonitor;

/// One observable transition of the compaction control loop, returned
/// by [`CompactionController::step`] so callers (daemons, consoles,
/// harnesses) can narrate without re-deriving state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerEvent {
    /// A compaction began: generation `from` -> `to` with `queued`
    /// migration moves.
    Started {
        /// Generation being compacted away.
        from_generation: u64,
        /// Generation being migrated toward.
        to_generation: u64,
        /// Migration moves queued on the executor.
        queued: u64,
    },
    /// A trigger fired but the server could not begin (e.g. scaling
    /// redistribution still draining); the controller retries on the
    /// next step.
    Deferred {
        /// The server's refusal, verbatim.
        reason: String,
    },
    /// The cutover flipped: every lookup is a single hash again.
    Completed {
        /// Generation now serving.
        generation: u64,
        /// Blocks accounted for at flip time.
        total_blocks: u64,
    },
}

impl std::fmt::Display for ControllerEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerEvent::Started {
                from_generation,
                to_generation,
                queued,
            } => write!(
                f,
                "compaction started: generation {from_generation} -> {to_generation} \
                 ({queued} block move(s) queued)"
            ),
            ControllerEvent::Deferred { reason } => {
                write!(f, "compaction deferred: {reason}")
            }
            ControllerEvent::Completed {
                generation,
                total_blocks,
            } => write!(
                f,
                "compaction complete: serving generation {generation} \
                 ({total_blocks} block(s), chain length 0)"
            ),
        }
    }
}

/// The generation manager: decides *when* to begin a rehash compaction
/// and narrates its lifecycle; the mechanics (dual-generation serving,
/// rate-limited migration, the atomic flip) live in
/// [`cmsim::CmServer`].
///
/// The controller is deliberately stateless about block-level progress
/// — the server owns that. It remembers only the trigger policy, a
/// pending manual request, and which generation hand-off it is
/// watching, so it survives being rebuilt mid-compaction (it re-adopts
/// an in-flight compaction it did not start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionController {
    auto: bool,
    threshold: u32,
    requested: bool,
    /// `(from, to)` generations of the compaction being watched.
    watching: Option<(u64, u64)>,
}

impl CompactionController {
    /// A controller with an explicit trigger policy.
    pub fn new(auto: bool, threshold: u32) -> Self {
        CompactionController {
            auto,
            threshold,
            requested: false,
            watching: None,
        }
    }

    /// A controller with the policy a [`ServerConfig`] declares.
    pub fn from_config(config: &ServerConfig) -> Self {
        Self::new(config.auto_compact, config.auto_compact_threshold)
    }

    /// Queues a manual compaction (the `compact` command). Honored on
    /// the next [`step`](Self::step); sticky across refusals, so a
    /// request placed while scaling redistribution drains fires as
    /// soon as the executor is idle.
    pub fn request(&mut self) {
        self.requested = true;
    }

    /// Is a manual request still waiting to begin?
    pub fn pending_request(&self) -> bool {
        self.requested
    }

    /// Is the controller watching an in-flight compaction?
    pub fn in_flight(&self) -> bool {
        self.watching.is_some()
    }

    /// One control-loop iteration against a directly owned server.
    ///
    /// In order: (1) syncs the monitor with the engine (so the budget
    /// probe reads current reality — and resets after a flip), (2)
    /// completes a watched compaction that has flipped, (3) adopts an
    /// in-flight compaction it did not start, (4) fires a pending
    /// manual request or the auto policy. Returns every transition
    /// that happened, oldest first.
    pub fn step(
        &mut self,
        server: &mut CmServer,
        monitor: &mut HealthMonitor,
    ) -> Vec<ControllerEvent> {
        monitor.observe_engine(server.engine());
        let mut events = Vec::new();
        // Completion: the watched hand-off flipped since last step.
        if let Some((_, to)) = self.watching {
            if !server.compaction_active() {
                self.watching = None;
                let total_blocks = server.engine().catalog().total_blocks();
                monitor.note_compaction_completed(to, total_blocks);
                // The flipped engine carries a fresh scaling log; this
                // replay is what refills the §4.3 budget probe.
                monitor.observe_engine(server.engine());
                events.push(ControllerEvent::Completed {
                    generation: to,
                    total_blocks,
                });
            }
        }
        // Adoption: someone else (another console, a restore) began a
        // compaction; watch it to completion rather than double-firing.
        if self.watching.is_none() {
            if let Some(p) = server.compaction_progress() {
                self.watching = Some((p.from_generation, p.to_generation));
            }
        }
        // Trigger: manual request, or the auto policy's budget floor.
        if self.watching.is_none() && self.should_fire(monitor) {
            let from = server.generation();
            match server.begin_compaction() {
                Ok(queued) => {
                    self.requested = false;
                    let to = from + 1;
                    monitor.note_compaction_started(from, to, queued);
                    events.push(ControllerEvent::Started {
                        from_generation: from,
                        to_generation: to,
                        queued,
                    });
                    if server.compaction_active() {
                        self.watching = Some((from, to));
                    } else {
                        // Nothing to migrate: begin flipped instantly.
                        let total_blocks = server.engine().catalog().total_blocks();
                        monitor.note_compaction_completed(to, total_blocks);
                        monitor.observe_engine(server.engine());
                        events.push(ControllerEvent::Completed {
                            generation: to,
                            total_blocks,
                        });
                    }
                }
                Err(e) => {
                    debug_assert!(
                        !matches!(e, ServerError::CompactionActive),
                        "trigger path only runs when no compaction is active"
                    );
                    events.push(ControllerEvent::Deferred {
                        reason: e.to_string(),
                    });
                }
            }
        }
        events
    }

    /// [`step`](Self::step) through a [`SharedServer`]'s exclusive
    /// lock — the daemon-side control loop.
    pub fn step_shared(
        &mut self,
        server: &SharedServer,
        monitor: &mut HealthMonitor,
    ) -> Vec<ControllerEvent> {
        server.with_write(|s| self.step(s, monitor))
    }

    fn should_fire(&self, monitor: &HealthMonitor) -> bool {
        self.requested || (self.auto && monitor.budget_remaining() <= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmsim::ServerConfig;
    use scaddar_core::ScalingOp;
    use scaddar_monitor::{MonitorConfig, Severity};
    use scaddar_obs::VirtualClock;
    use std::sync::Arc;

    fn rig(config: ServerConfig, blocks: u64) -> (CmServer, HealthMonitor, CompactionController) {
        let mut server = CmServer::new(config).unwrap();
        if blocks > 0 {
            server.add_object(blocks).unwrap();
        }
        let monitor = HealthMonitor::for_engine(
            MonitorConfig::default(),
            Arc::new(VirtualClock::new()),
            server.engine(),
        );
        let controller = CompactionController::from_config(&config);
        (server, monitor, controller)
    }

    /// Remove/add round-trips burn the §4.3 budget fastest; each op is
    /// drained offline so the executor stays idle.
    fn exhaust_budget(server: &mut CmServer) {
        while server.next_op_is_safe(&ScalingOp::remove_one(0)) {
            server.scale_offline(ScalingOp::remove_one(0)).unwrap();
            server.scale_offline(ScalingOp::Add { count: 1 }).unwrap();
        }
    }

    fn drive_to_completion(
        server: &mut CmServer,
        monitor: &mut HealthMonitor,
        controller: &mut CompactionController,
    ) -> Vec<ControllerEvent> {
        let mut events = Vec::new();
        for _ in 0..10_000 {
            events.extend(controller.step(server, monitor));
            if !server.compaction_active()
                && !controller.in_flight()
                && !controller.pending_request()
            {
                return events;
            }
            server.tick();
        }
        panic!("compaction never completed; events so far: {events:?}");
    }

    #[test]
    fn manual_request_compacts_and_refills_the_budget() {
        let (mut server, mut monitor, mut controller) =
            rig(ServerConfig::new(8).with_catalog_seed(3), 4_000);
        exhaust_budget(&mut server);
        controller.step(&mut server, &mut monitor);
        assert_eq!(monitor.budget_remaining(), 0);
        assert_eq!(monitor.report().verdict(), Severity::Crit);

        controller.request();
        let events = drive_to_completion(&mut server, &mut monitor, &mut controller);
        assert!(matches!(
            events.first(),
            Some(ControllerEvent::Started {
                from_generation: 0,
                to_generation: 1,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(ControllerEvent::Completed {
                generation: 1,
                total_blocks: 4_000,
            })
        ));
        assert_eq!(server.generation(), 1);
        assert!(server.residency_consistent());
        // The closed loop: CRIT -> compact -> budget refilled -> Ok.
        assert!(monitor.budget_remaining() > 0);
        assert_eq!(monitor.report().verdict(), Severity::Ok);
        let kinds: Vec<&str> = monitor.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"rehash-advised"));
        assert!(kinds.contains(&"compaction-active"));
        assert!(kinds.contains(&"compaction-complete"));
    }

    #[test]
    fn auto_policy_fires_at_the_budget_floor_and_only_once() {
        let config = ServerConfig::new(8)
            .with_catalog_seed(5)
            .with_auto_compact(true)
            .with_auto_compact_threshold(0);
        let (mut server, mut monitor, mut controller) = rig(config, 3_000);
        // Healthy budget: the policy must hold fire.
        assert!(controller.step(&mut server, &mut monitor).is_empty());
        assert_eq!(server.generation(), 0);

        exhaust_budget(&mut server);
        let events = drive_to_completion(&mut server, &mut monitor, &mut controller);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Started { .. }))
                .count(),
            1,
            "{events:?}"
        );
        assert_eq!(server.generation(), 1);
        // Post-flip the budget is full again; further steps are quiet.
        for _ in 0..5 {
            assert!(controller.step(&mut server, &mut monitor).is_empty());
        }
        assert_eq!(server.generation(), 1);
    }

    #[test]
    fn request_defers_while_redistribution_drains_then_fires() {
        let (mut server, mut monitor, mut controller) =
            rig(ServerConfig::new(4).with_catalog_seed(2), 3_000);
        server.scale(ScalingOp::Add { count: 1 }).unwrap();
        assert!(server.backlog() > 0);
        controller.request();
        let events = controller.step(&mut server, &mut monitor);
        assert!(
            matches!(events.as_slice(), [ControllerEvent::Deferred { .. }]),
            "{events:?}"
        );
        assert!(controller.pending_request(), "request is sticky");
        let events = drive_to_completion(&mut server, &mut monitor, &mut controller);
        assert!(events
            .iter()
            .any(|e| matches!(e, ControllerEvent::Completed { generation: 1, .. })));
    }

    #[test]
    fn controller_adopts_a_compaction_it_did_not_start() {
        let (mut server, mut monitor, mut controller) =
            rig(ServerConfig::new(5).with_catalog_seed(9), 2_000);
        server.begin_compaction().unwrap();
        assert!(controller.step(&mut server, &mut monitor).is_empty());
        assert!(controller.in_flight());
        let events = drive_to_completion(&mut server, &mut monitor, &mut controller);
        assert!(
            matches!(
                events.as_slice(),
                [ControllerEvent::Completed { generation: 1, .. }]
            ),
            "{events:?}"
        );
    }

    #[test]
    fn empty_catalog_compaction_is_a_single_step() {
        let (mut server, mut monitor, mut controller) =
            rig(ServerConfig::new(4).with_catalog_seed(1), 0);
        controller.request();
        let events = controller.step(&mut server, &mut monitor);
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(matches!(
            events[0],
            ControllerEvent::Started { queued: 0, .. }
        ));
        assert!(matches!(
            events[1],
            ControllerEvent::Completed {
                generation: 1,
                total_blocks: 0,
            }
        ));
        assert!(!controller.in_flight());
    }

    #[test]
    fn step_shared_drives_a_shared_server() {
        let config = ServerConfig::new(6).with_catalog_seed(4);
        let mut server = CmServer::new(config).unwrap();
        server.add_object(2_500).unwrap();
        let mut monitor = HealthMonitor::for_engine(
            MonitorConfig::default(),
            Arc::new(VirtualClock::new()),
            server.engine(),
        );
        let shared = SharedServer::new(server);
        let mut controller = CompactionController::from_config(&config);
        controller.request();
        let mut events = Vec::new();
        for _ in 0..10_000 {
            events.extend(controller.step_shared(&shared, &mut monitor));
            if !controller.in_flight() && !controller.pending_request() {
                break;
            }
            // Reads stay serviceable mid-cutover through the shared lock.
            assert!(shared.locate(scaddar_core::ObjectId(0), 1_234).is_ok());
            shared.tick();
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, ControllerEvent::Completed { generation: 1, .. })));
        assert_eq!(shared.with_read(|s| s.generation()), 1);
    }

    #[test]
    fn events_render_for_operator_logs() {
        let started = ControllerEvent::Started {
            from_generation: 0,
            to_generation: 1,
            queued: 42,
        };
        assert_eq!(
            started.to_string(),
            "compaction started: generation 0 -> 1 (42 block move(s) queued)"
        );
        let done = ControllerEvent::Completed {
            generation: 1,
            total_blocks: 42,
        };
        assert!(done.to_string().contains("chain length 0"));
        assert!(ControllerEvent::Deferred { reason: "x".into() }
            .to_string()
            .contains("deferred"));
    }
}
