//! Lightweight structured tracing: named spans with enter/exit
//! timestamps and `key=value` events, recorded into a bounded ring
//! buffer.
//!
//! This is the flight recorder, not a logging framework: the last N
//! spans are always available for a post-mortem (`cli spans`, harness
//! failure reports) at a fixed memory ceiling. Timestamps come from the
//! tracer's [`Clock`], so a harness driving a
//! [`VirtualClock`](crate::VirtualClock) gets byte-identical timelines
//! for the same seed.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static call-site label, e.g. `server.scale`).
    pub name: String,
    /// Clock reading at span entry, nanoseconds.
    pub start_ns: u64,
    /// Clock reading at span exit, nanoseconds.
    pub end_ns: u64,
    /// `key=value` events attached while the span was open, in order.
    pub events: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// One deterministic timeline line:
    /// `[start..end ns] name key=value ...`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{:>10} ..{:>10} ns] {}",
            self.start_ns, self.end_ns, self.name
        );
        for (k, v) in &self.events {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

#[derive(Debug)]
struct Recorder {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

/// The span recorder: hands out [`SpanGuard`]s and keeps the last
/// `capacity` completed spans.
#[derive(Debug, Clone)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    recorder: Arc<Mutex<Recorder>>,
}

impl Tracer {
    /// A tracer reading time from `clock`, retaining the last
    /// `capacity` spans (at least 1).
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Tracer {
            clock,
            recorder: Arc::new(Mutex::new(Recorder {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// The tracer's clock (shared with sampled metrics and the driver).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Opens a span; it records itself when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            record: SpanRecord {
                name: name.to_string(),
                start_ns: self.clock.now_ns(),
                end_ns: 0,
                events: Vec::new(),
            },
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        if rec.spans.len() == rec.capacity {
            rec.spans.pop_front();
            rec.dropped += 1;
        }
        rec.spans.push_back(record);
    }

    /// The last `n` completed spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.spans
            .iter()
            .skip(rec.spans.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Completed spans evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }

    /// Deterministic multi-line timeline of the last `n` spans, oldest
    /// first; empty string when nothing has been recorded.
    pub fn render_recent(&self, n: usize) -> String {
        let mut out = String::new();
        for span in self.recent(n) {
            let _ = writeln!(out, "{}", span.render());
        }
        out
    }
}

/// An open span; completes (and records itself) on drop.
#[must_use = "a span records itself when dropped; binding it to `_` closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    record: SpanRecord,
}

impl SpanGuard {
    /// Attaches a `key=value` event to the span.
    pub fn event(&mut self, key: &str, value: impl std::fmt::Display) {
        self.record
            .events
            .push((key.to_string(), value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let mut record = std::mem::replace(
            &mut self.record,
            SpanRecord {
                name: String::new(),
                start_ns: 0,
                end_ns: 0,
                events: Vec::new(),
            },
        );
        record.end_ns = self.tracer.clock.now_ns().max(record.start_ns);
        self.tracer.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn fixture() -> (Arc<VirtualClock>, Tracer) {
        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone(), 4);
        (clock, tracer)
    }

    #[test]
    fn spans_record_timing_and_events() {
        let (clock, tracer) = fixture();
        {
            let mut span = tracer.span("scale");
            clock.advance(120);
            span.event("op", "Add{count: 2}");
            span.event("moves", 42);
        }
        let spans = tracer.recent(10);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scale");
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].end_ns, 120);
        assert_eq!(spans[0].duration_ns(), 120);
        assert_eq!(
            spans[0].render(),
            "[         0 ..       120 ns] scale op=Add{count: 2} moves=42"
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let (clock, tracer) = fixture();
        for i in 0..6u64 {
            let _span = tracer.span(&format!("s{i}"));
            clock.advance(1);
        }
        let spans = tracer.recent(10);
        assert_eq!(spans.len(), 4, "capacity bounds retention");
        assert_eq!(spans[0].name, "s2");
        assert_eq!(spans[3].name, "s5");
        assert_eq!(tracer.dropped(), 2);
        assert_eq!(tracer.recent(2).len(), 2);
        assert_eq!(tracer.recent(2)[0].name, "s4");
    }

    #[test]
    fn timelines_are_deterministic_under_a_virtual_clock() {
        let run = || {
            let (clock, tracer) = fixture();
            for i in 0..3u64 {
                let mut span = tracer.span("step");
                clock.advance(10 + i);
                span.event("i", i);
            }
            tracer.render_recent(8)
        };
        let a = run();
        assert_eq!(a, run(), "virtual clock must make traces reproducible");
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn nested_spans_both_record() {
        let (clock, tracer) = fixture();
        {
            let _outer = tracer.span("outer");
            clock.advance(5);
            {
                let _inner = tracer.span("inner");
                clock.advance(3);
            }
            clock.advance(2);
        }
        let spans = tracer.recent(10);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].duration_ns(), 3);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].duration_ns(), 10);
    }
}
