//! Lightweight structured tracing: named spans with enter/exit
//! timestamps and `key=value` events, recorded into a bounded ring
//! buffer.
//!
//! This is the flight recorder, not a logging framework: the last N
//! spans are always available for a post-mortem (`cli spans`, harness
//! failure reports) at a fixed memory ceiling. Timestamps come from the
//! tracer's [`Clock`], so a harness driving a
//! [`VirtualClock`](crate::VirtualClock) gets byte-identical timelines
//! for the same seed.

use crate::clock::Clock;
use crate::events::EventLog;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// SplitMix64 finalizer (Steele et al.), matching `scaddar-prng`'s
/// stream — inlined so the obs crate stays dependency-free. Trace and
/// span ids come from here: pure functions of the seed, so a harness
/// run under a [`VirtualClock`](crate::VirtualClock) gets the same ids
/// every time.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The distributed-trace identity a request carries across process
/// boundaries: which trace it belongs to and which span is currently
/// open on the sender's side. Serialized into the optional trace
/// trailer on request frames (see `scaddar-net`); each receiver derives
/// its own child context with [`TraceContext::child`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identity, shared by every span in the trace. Never 0 (0
    /// marks "untraced" on a [`SpanRecord`]).
    pub trace_id: u64,
    /// The sender's currently open span — the parent of whatever span
    /// the receiver opens next.
    pub span_id: u64,
    /// Whether downstream hops should record spans. Unsampled contexts
    /// still propagate ids (so logs can correlate) but ask receivers
    /// to skip the flight recorder.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh root context: trace and root-span ids are SplitMix64
    /// draws from `(seed, sequence)`, so a seeded client issues the
    /// same trace ids on every run.
    pub fn root(seed: u64, sequence: u64) -> TraceContext {
        let trace_id = splitmix64(seed ^ splitmix64(sequence)).max(1);
        TraceContext {
            trace_id,
            span_id: splitmix64(trace_id),
            sampled: true,
        }
    }

    /// The child context a receiver continues under: same trace, a new
    /// span id derived from `(trace_id, parent span, salt)`. `salt`
    /// disambiguates siblings continuing from the same parent — e.g.
    /// two shards both serving hops of one locate — so pass something
    /// locally unique (shard id, endpoint hash).
    pub fn child(&self, salt: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.trace_id ^ self.span_id.rotate_left(23) ^ salt),
            sampled: self.sampled,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static call-site label, e.g. `server.scale`).
    pub name: String,
    /// Clock reading at span entry, nanoseconds.
    pub start_ns: u64,
    /// Clock reading at span exit, nanoseconds.
    pub end_ns: u64,
    /// `key=value` events attached while the span was open, in order.
    pub events: Vec<(String, String)>,
    /// Distributed trace this span belongs to; 0 = untraced local span.
    pub trace_id: u64,
    /// This span's id within the trace; 0 = untraced.
    pub span_id: u64,
    /// Parent span id; 0 = root (or untraced).
    pub parent_id: u64,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// One deterministic timeline line:
    /// `[start..end ns] name key=value ...`, with
    /// `trace=… span=… parent=…` appended on traced spans.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{:>10} ..{:>10} ns] {}",
            self.start_ns, self.end_ns, self.name
        );
        for (k, v) in &self.events {
            let _ = write!(out, " {k}={v}");
        }
        if self.trace_id != 0 {
            let _ = write!(
                out,
                " trace={:016x} span={:016x} parent={:016x}",
                self.trace_id, self.span_id, self.parent_id
            );
        }
        out
    }
}

/// Renders one distributed trace as a deterministic tree: the spans of
/// `trace_id` (drawn from any mix of tracers — client plus every
/// shard), roots first, children indented under their parent, siblings
/// ordered by start time then span id. Spans whose parent is absent
/// from `spans` (e.g. evicted from a ring) render at top level, marked
/// `~orphan`. Empty string when no span matches.
pub fn render_trace_dump(spans: &[SpanRecord], trace_id: u64) -> String {
    let mut trace: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.trace_id == trace_id && s.trace_id != 0)
        .collect();
    trace.sort_by_key(|s| (s.start_ns, s.span_id));
    let present: std::collections::BTreeSet<u64> = trace.iter().map(|s| s.span_id).collect();
    let mut out = String::new();
    fn emit(out: &mut String, trace: &[&SpanRecord], parent: u64, depth: usize) {
        for s in trace.iter().filter(|s| s.parent_id == parent) {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), s.render());
            emit(out, trace, s.span_id, depth + 1);
        }
    }
    emit(&mut out, &trace, 0, 0);
    // Orphans: parented on a span we never saw.
    let orphans: Vec<&&SpanRecord> = trace
        .iter()
        .filter(|s| s.parent_id != 0 && !present.contains(&s.parent_id))
        .collect();
    for s in orphans {
        let _ = writeln!(out, "{} ~orphan", s.render());
        emit(&mut out, &trace, s.span_id, 1);
    }
    out
}

#[derive(Debug)]
struct Recorder {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

/// The span recorder: hands out [`SpanGuard`]s and keeps the last
/// `capacity` completed spans.
#[derive(Debug, Clone)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    recorder: Arc<Mutex<Recorder>>,
}

impl Tracer {
    /// A tracer reading time from `clock`, retaining the last
    /// `capacity` spans (at least 1).
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Tracer {
            clock,
            recorder: Arc::new(Mutex::new(Recorder {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// The tracer's clock (shared with sampled metrics and the driver).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Opens a span; it records itself when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            record: SpanRecord {
                name: name.to_string(),
                start_ns: self.clock.now_ns(),
                end_ns: 0,
                events: Vec::new(),
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
            },
        }
    }

    /// Opens a span inside a distributed trace: the span carries
    /// `ctx`'s trace and span ids and points at `parent_id` (0 for the
    /// trace root; the wire-received parent span id on a continuing
    /// hop).
    pub fn span_in(&self, name: &str, ctx: &TraceContext, parent_id: u64) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            record: SpanRecord {
                name: name.to_string(),
                start_ns: self.clock.now_ns(),
                end_ns: 0,
                events: Vec::new(),
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_id,
            },
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        if rec.spans.len() == rec.capacity {
            rec.spans.pop_front();
            rec.dropped += 1;
        }
        rec.spans.push_back(record);
    }

    /// The last `n` completed spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.spans
            .iter()
            .skip(rec.spans.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Completed spans evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }

    /// Deterministic multi-line timeline of the last `n` spans, oldest
    /// first; empty string when nothing has been recorded.
    pub fn render_recent(&self, n: usize) -> String {
        let mut out = String::new();
        for span in self.recent(n) {
            let _ = writeln!(out, "{}", span.render());
        }
        out
    }

    /// Every retained span belonging to `trace_id`, oldest first — one
    /// process's contribution to a distributed trace. Feed the
    /// concatenation across tracers to [`render_trace_dump`].
    pub fn spans_for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.spans
            .iter()
            .filter(|s| s.trace_id == trace_id && trace_id != 0)
            .cloned()
            .collect()
    }

    /// Flight-recorder capture: emits the last `n` retained spans into
    /// `log` as `span-capture` events (one per span, oldest first,
    /// fields name/start/end/trace/span/parent plus the span's own
    /// events). The SLO engine calls this on a CRIT transition so the
    /// JSONL event log carries the post-mortem timeline alongside the
    /// alert that triggered it. Returns the number of spans captured.
    pub fn capture_into(&self, log: &EventLog, n: usize) -> usize {
        let spans = self.recent(n);
        for s in &spans {
            let mut fields: Vec<(String, String)> = vec![
                ("name".to_string(), s.name.clone()),
                ("start_ns".to_string(), s.start_ns.to_string()),
                ("end_ns".to_string(), s.end_ns.to_string()),
            ];
            if s.trace_id != 0 {
                fields.push(("trace".to_string(), format!("{:016x}", s.trace_id)));
                fields.push(("span".to_string(), format!("{:016x}", s.span_id)));
                fields.push(("parent".to_string(), format!("{:016x}", s.parent_id)));
            }
            for (k, v) in &s.events {
                fields.push((format!("e_{k}"), v.clone()));
            }
            log.emit("span-capture", fields);
        }
        spans.len()
    }
}

/// An open span; completes (and records itself) on drop.
#[must_use = "a span records itself when dropped; binding it to `_` closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    record: SpanRecord,
}

impl SpanGuard {
    /// Attaches a `key=value` event to the span.
    pub fn event(&mut self, key: &str, value: impl std::fmt::Display) {
        self.record
            .events
            .push((key.to_string(), value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let mut record = std::mem::replace(
            &mut self.record,
            SpanRecord {
                name: String::new(),
                start_ns: 0,
                end_ns: 0,
                events: Vec::new(),
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
            },
        );
        record.end_ns = self.tracer.clock.now_ns().max(record.start_ns);
        self.tracer.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn fixture() -> (Arc<VirtualClock>, Tracer) {
        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone(), 4);
        (clock, tracer)
    }

    #[test]
    fn spans_record_timing_and_events() {
        let (clock, tracer) = fixture();
        {
            let mut span = tracer.span("scale");
            clock.advance(120);
            span.event("op", "Add{count: 2}");
            span.event("moves", 42);
        }
        let spans = tracer.recent(10);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scale");
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].end_ns, 120);
        assert_eq!(spans[0].duration_ns(), 120);
        assert_eq!(
            spans[0].render(),
            "[         0 ..       120 ns] scale op=Add{count: 2} moves=42"
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let (clock, tracer) = fixture();
        for i in 0..6u64 {
            let _span = tracer.span(&format!("s{i}"));
            clock.advance(1);
        }
        let spans = tracer.recent(10);
        assert_eq!(spans.len(), 4, "capacity bounds retention");
        assert_eq!(spans[0].name, "s2");
        assert_eq!(spans[3].name, "s5");
        assert_eq!(tracer.dropped(), 2);
        assert_eq!(tracer.recent(2).len(), 2);
        assert_eq!(tracer.recent(2)[0].name, "s4");
    }

    #[test]
    fn timelines_are_deterministic_under_a_virtual_clock() {
        let run = || {
            let (clock, tracer) = fixture();
            for i in 0..3u64 {
                let mut span = tracer.span("step");
                clock.advance(10 + i);
                span.event("i", i);
            }
            tracer.render_recent(8)
        };
        let a = run();
        assert_eq!(a, run(), "virtual clock must make traces reproducible");
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn trace_context_ids_are_deterministic_and_distinct() {
        let a = TraceContext::root(42, 0);
        let b = TraceContext::root(42, 0);
        assert_eq!(a, b, "same (seed, sequence) → same ids");
        assert_ne!(a.trace_id, 0);
        assert_ne!(a, TraceContext::root(42, 1));
        assert_ne!(a, TraceContext::root(43, 0));
        // Sibling children continuing from the same parent stay
        // distinct when salted differently (two shards, one hop each).
        let c0 = a.child(0);
        let c1 = a.child(1);
        assert_eq!(c0.trace_id, a.trace_id);
        assert_ne!(c0.span_id, c1.span_id);
        assert_ne!(c0.span_id, a.span_id);
        assert_eq!(a.child(0), c0, "child derivation is a pure function");
        assert!(c0.sampled);
    }

    #[test]
    fn traced_spans_render_ids_and_untraced_spans_do_not() {
        let (clock, tracer) = fixture();
        let ctx = TraceContext::root(7, 0);
        {
            let mut span = tracer.span_in("client.locate", &ctx, 0);
            clock.advance(9);
            span.event("object", 3);
        }
        {
            let _plain = tracer.span("local");
        }
        let spans = tracer.recent(10);
        assert_eq!(spans[0].trace_id, ctx.trace_id);
        assert_eq!(spans[0].span_id, ctx.span_id);
        assert_eq!(spans[0].parent_id, 0);
        assert!(spans[0]
            .render()
            .contains(&format!("trace={:016x}", ctx.trace_id)));
        assert_eq!(spans[1].trace_id, 0);
        assert!(!spans[1].render().contains("trace="));
    }

    #[test]
    fn trace_dump_stitches_spans_across_tracers_into_one_tree() {
        let clock = Arc::new(VirtualClock::new());
        let client = Tracer::new(clock.clone(), 16);
        let shard0 = Tracer::new(clock.clone(), 16);
        let shard1 = Tracer::new(clock.clone(), 16);
        let root = TraceContext::root(5, 0);
        {
            let mut root_span = client.span_in("client.locate", &root, 0);
            clock.advance(2);
            {
                // Stale shard answers WrongShard.
                let hop = root.child(0);
                let mut s = shard0.span_in("shard0.locate", &hop, root.span_id);
                clock.advance(3);
                s.event("verdict", "wrong-shard");
            }
            clock.advance(1);
            {
                let hop = root.child(1);
                let _s = shard1.span_in("shard1.locate", &hop, root.span_id);
                clock.advance(4);
            }
            root_span.event("hops", 2);
        }
        let mut all = client.spans_for_trace(root.trace_id);
        all.extend(shard0.spans_for_trace(root.trace_id));
        all.extend(shard1.spans_for_trace(root.trace_id));
        assert_eq!(all.len(), 3);
        let dump = render_trace_dump(&all, root.trace_id);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("client.locate"), "root first: {dump}");
        assert!(lines[1].starts_with("  ") && lines[1].contains("shard0.locate"));
        assert!(lines[2].starts_with("  ") && lines[2].contains("shard1.locate"));
        assert!(!dump.contains("~orphan"));
        // Unrelated trace ids render nothing.
        assert_eq!(render_trace_dump(&all, root.trace_id ^ 1), "");
        // A child whose parent never recorded is marked, not dropped.
        let orphan_dump = render_trace_dump(&all[1..], root.trace_id);
        assert!(orphan_dump.contains("~orphan"));
    }

    #[test]
    fn capture_into_exports_spans_as_jsonl_events() {
        use crate::events::EventLog;
        let (clock, tracer) = fixture();
        let log = EventLog::new(clock.clone());
        let ctx = TraceContext::root(11, 3);
        {
            let mut s = tracer.span_in("shard.locate", &ctx, 0);
            clock.advance(5);
            s.event("gate", "waited");
        }
        {
            let _s = tracer.span("plain");
        }
        assert_eq!(tracer.capture_into(&log, 8), 2);
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "span-capture");
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "trace" && *v == format!("{:016x}", ctx.trace_id)));
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "e_gate" && v == "waited"));
        assert!(!events[1].fields.iter().any(|(k, _)| k == "trace"));
        for line in log.render_jsonl().lines() {
            assert!(
                crate::registry::try_parse_json_values(line).is_ok(),
                "capture must stay valid JSONL: {line}"
            );
        }
    }

    #[test]
    fn nested_spans_both_record() {
        let (clock, tracer) = fixture();
        {
            let _outer = tracer.span("outer");
            clock.advance(5);
            {
                let _inner = tracer.span("inner");
                clock.advance(3);
            }
            clock.advance(2);
        }
        let spans = tracer.recent(10);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].duration_ns(), 3);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].duration_ns(), 10);
    }
}
