//! Cooperative sampling profiler: per-thread state words plus a
//! ~1 kHz sampler that accumulates state-residency profiles.
//!
//! Classic profilers interrupt threads and unwind stacks; that is
//! neither portable nor deterministic, and it is forbidden in a
//! workspace that vendors no libc bindings. This module takes the
//! cooperative route instead: every participating thread owns a
//! [`StateHandle`] — one atomic byte — and publishes *what it is
//! doing right now* ([`ThreadState`]) with a single relaxed store at
//! each phase boundary. A sampler (a thread on a real server, or the
//! harness calling [`Profiler::sample_once`] directly under a
//! `VirtualClock`) reads every state word per round and bumps one
//! residency counter per thread.
//!
//! ## Determinism contract
//!
//! Sampling rounds are the unit of time, not wall-clock seconds: a
//! round reads each registered thread's word exactly once, so for
//! every thread the invariant
//!
//! ```text
//! sum(counts[state] for state in states) == samples_observed
//! ```
//!
//! holds *exactly* (the harness `profile-conserves` invariant). Under
//! a `VirtualClock` with scripted state transitions, the same seed
//! produces byte-identical [`ProfileSnapshot::render_folded`] output
//! run after run — there is no `Instant::now` anywhere in the
//! accounting path.
//!
//! ## Overhead budget
//!
//! The instrumented thread pays one relaxed `AtomicU8` store per
//! state change (sub-nanosecond on x86); the sampler pays one mutex
//! acquisition plus `n_threads` relaxed loads per round. At 1 kHz
//! with a dozen threads that is ~10 µs/s of sampler CPU — invisible
//! next to the 1.10× locate-path overhead gate, which the
//! `obs_profile_overhead` bench group pins down.

use crate::clock::Clock;
use crate::registry::Registry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a cooperating thread is doing right now.
///
/// The discriminant is the state word's stored byte and the index
/// into every residency-count array; the wire format and the folded
/// renderer both rely on these values being stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ThreadState {
    /// Parked or between duties (also the initial state).
    Idle = 0,
    /// Blocked in the readiness poller (`epoll_wait`/`poll`).
    Epoll = 1,
    /// Draining sockets and decoding frames.
    Decode = 2,
    /// Waiting to acquire the engine read/write lock.
    LockWait = 3,
    /// Executing inside the engine (locate/scale/tick).
    Engine = 4,
    /// Encoding response frames.
    Encode = 5,
    /// Flushing response bytes to sockets.
    Write = 6,
    /// Running an offloaded heavy operation (scale/tick thread).
    Offload = 7,
}

/// Number of distinct [`ThreadState`] values.
pub const THREAD_STATES: usize = 8;

/// Stable lowercase state names, indexed by discriminant. These are
/// the folded-stack leaf names and the Prometheus `state` label
/// values — renaming one is a wire-visible change.
pub const THREAD_STATE_NAMES: [&str; THREAD_STATES] = [
    "idle",
    "epoll",
    "decode",
    "lock-wait",
    "engine",
    "encode",
    "write",
    "offload",
];

impl ThreadState {
    /// The state for discriminant `v`, if in range.
    pub fn from_u8(v: u8) -> Option<ThreadState> {
        Some(match v {
            0 => ThreadState::Idle,
            1 => ThreadState::Epoll,
            2 => ThreadState::Decode,
            3 => ThreadState::LockWait,
            4 => ThreadState::Engine,
            5 => ThreadState::Encode,
            6 => ThreadState::Write,
            7 => ThreadState::Offload,
            _ => return None,
        })
    }

    /// The stable lowercase name for this state.
    pub fn name(self) -> &'static str {
        THREAD_STATE_NAMES[self as usize]
    }
}

/// A registered thread's handle for publishing its current state.
///
/// Cloning shares the same state word; the handle is `Send` so a
/// worker can move it into its thread. Publishing is one relaxed
/// store — cheap enough to mark every phase boundary unconditionally.
#[derive(Debug, Clone)]
pub struct StateHandle {
    word: Arc<AtomicU8>,
}

impl StateHandle {
    /// A handle not attached to any profiler: stores vanish. Lets
    /// call sites keep one unconditional code path when profiling is
    /// disabled or the thread predates the profiler.
    pub fn detached() -> StateHandle {
        StateHandle {
            word: Arc::new(AtomicU8::new(ThreadState::Idle as u8)),
        }
    }

    /// Publishes `state` as this thread's current activity.
    pub fn set(&self, state: ThreadState) {
        self.word.store(state as u8, Ordering::Relaxed);
    }

    /// Publishes `state` and returns a guard that restores the
    /// previous state on drop — the shape for nested phases (e.g.
    /// `engine` inside `decode` returns to `decode`, not `idle`).
    pub fn enter(&self, state: ThreadState) -> StateGuard<'_> {
        let prev = self.word.swap(state as u8, Ordering::Relaxed);
        StateGuard {
            word: &self.word,
            prev,
        }
    }

    /// The raw state byte (test/diagnostic use).
    pub fn current(&self) -> u8 {
        self.word.load(Ordering::Relaxed)
    }
}

/// Restores the pre-[`enter`](StateHandle::enter) state on drop.
#[derive(Debug)]
pub struct StateGuard<'a> {
    word: &'a AtomicU8,
    prev: u8,
}

impl Drop for StateGuard<'_> {
    fn drop(&mut self) {
        self.word.store(self.prev, Ordering::Relaxed);
    }
}

/// One registered thread: its shared word plus sampler-owned tallies.
#[derive(Debug)]
struct ThreadSlot {
    name: String,
    word: Arc<AtomicU8>,
    /// Rounds that have observed this thread (it may register late).
    samples: u64,
    counts: [u64; THREAD_STATES],
}

/// The always-on cooperative profiler: a table of per-thread state
/// words and the residency counts accumulated by sampling them.
///
/// The sampler (thread or manual [`sample_once`](Self::sample_once)
/// calls) is the only writer of the tallies; readers take snapshots.
/// All accounting lives under one short mutex — at 1 kHz the
/// contention is unmeasurable, and plain `u64` tallies keep the
/// arithmetic exact and the rendering deterministic.
#[derive(Debug)]
pub struct Profiler {
    clock: Arc<dyn Clock>,
    slots: Mutex<Vec<ThreadSlot>>,
    rounds: AtomicU64,
}

impl Profiler {
    /// An empty profiler stamping snapshots with `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Profiler> {
        Arc::new(Profiler {
            clock,
            slots: Mutex::new(Vec::new()),
            rounds: AtomicU64::new(0),
        })
    }

    /// The clock snapshots are stamped with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Registers a thread under `name` and returns its state handle.
    /// Names should be unique (`scaddard-worker-0`, …); duplicates
    /// are kept as distinct rows.
    pub fn register(&self, name: &str) -> StateHandle {
        let word = Arc::new(AtomicU8::new(ThreadState::Idle as u8));
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.push(ThreadSlot {
            name: name.to_string(),
            word: word.clone(),
            samples: 0,
            counts: [0; THREAD_STATES],
        });
        StateHandle { word }
    }

    /// Number of registered threads.
    pub fn thread_count(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Runs one sampling round: reads every registered thread's state
    /// word once and bumps the matching residency count. Returns the
    /// total number of rounds run so far.
    pub fn sample_once(&self) -> u64 {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter_mut() {
            let state = slot.word.load(Ordering::Relaxed) as usize;
            // An out-of-range byte (impossible via `StateHandle`, but
            // the word is just an atomic) lands on `idle` rather than
            // corrupting the conservation invariant.
            let idx = if state < THREAD_STATES { state } else { 0 };
            slot.counts[idx] += 1;
            slot.samples += 1;
        }
        self.rounds.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Total sampling rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every thread's residency profile,
    /// sorted by thread name (registration order breaks ties) so the
    /// rendering is deterministic.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut threads: Vec<ThreadProfile> = slots
            .iter()
            .map(|slot| ThreadProfile {
                name: slot.name.clone(),
                samples: slot.samples,
                counts: slot.counts.to_vec(),
            })
            .collect();
        threads.sort_by(|a, b| a.name.cmp(&b.name));
        ProfileSnapshot {
            at_ns: self.clock.now_ns(),
            rounds: self.rounds(),
            threads,
        }
    }

    /// Publishes the current tallies into `registry` as gauges:
    /// `profiler_state_samples{thread="...",state="..."}` (cumulative
    /// residency counts, zero rows included so dashboards see every
    /// state) plus `profiler_rounds`. Gauges — not counters — so a
    /// re-publish *sets* the absolute value instead of double-adding,
    /// while fleet federation still sums them across shards.
    pub fn publish(&self, registry: &Registry) {
        let snapshot = self.snapshot();
        registry
            .gauge("profiler_rounds", "Profiler sampling rounds run")
            .set(snapshot.rounds as i64);
        for thread in &snapshot.threads {
            for (i, &count) in thread.counts.iter().enumerate() {
                let name = format!(
                    "profiler_state_samples{{thread=\"{}\",state=\"{}\"}}",
                    thread.name,
                    state_name(i)
                );
                registry
                    .gauge(&name, "Sampled residency count per thread state")
                    .set(count as i64);
            }
        }
    }

    /// Spawns the real-time sampler thread (`obs-sampler`): one
    /// [`sample_once`](Self::sample_once) round every `period`, until
    /// `shutdown` goes true. Only for wall-clock deployments — tests
    /// and the harness drive `sample_once` directly for determinism.
    pub fn spawn_sampler(
        self: &Arc<Self>,
        period: Duration,
        shutdown: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        let profiler = Arc::clone(self);
        std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    profiler.sample_once();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn obs-sampler")
    }
}

/// The state name for count index `i` — unknown indices (a newer
/// peer's snapshot) render as `state<i>` instead of panicking.
fn state_name(i: usize) -> String {
    match THREAD_STATE_NAMES.get(i) {
        Some(name) => (*name).to_string(),
        None => format!("state{i}"),
    }
}

/// One thread's residency profile: `counts[i]` rounds were spent in
/// state `i` ([`THREAD_STATE_NAMES`]), out of `samples` total rounds
/// that observed this thread. `counts` is a `Vec` (not a fixed
/// array) so a snapshot decoded from a peer speaking a newer
/// protocol with extra states still round-trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadProfile {
    /// Thread name, e.g. `scaddard-worker-0`.
    pub name: String,
    /// Rounds that observed this thread (== sum of `counts`).
    pub samples: u64,
    /// Residency count per state index.
    pub counts: Vec<u64>,
}

impl ThreadProfile {
    /// Whether the conservation invariant holds: counts sum exactly
    /// to the rounds that observed this thread.
    pub fn conserves(&self) -> bool {
        self.counts.iter().copied().sum::<u64>() == self.samples
    }
}

/// A point-in-time profile across every registered thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Clock reading when the snapshot was taken.
    pub at_ns: u64,
    /// Total sampling rounds run by the profiler.
    pub rounds: u64,
    /// Per-thread profiles, sorted by thread name.
    pub threads: Vec<ThreadProfile>,
}

impl ProfileSnapshot {
    /// Renders the profile as folded-stack text — one
    /// `thread;state count` line per non-zero cell, sorted by thread
    /// then state index — the format `flamegraph.pl` and every
    /// flamegraph viewer ingest directly.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for thread in &self.threads {
            for (i, &count) in thread.counts.iter().enumerate() {
                if count > 0 {
                    let _ = writeln!(out, "{};{} {}", thread.name, state_name(i), count);
                }
            }
        }
        out
    }

    /// The profile accumulated *since* `earlier`: per-thread,
    /// per-state saturating count deltas (threads absent from
    /// `earlier` keep their full counts). This is how the CLI turns
    /// two cumulative dumps N seconds apart into an interval profile
    /// without any server-side blocking.
    pub fn since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let threads = self
            .threads
            .iter()
            .map(|now| {
                let base = earlier.threads.iter().find(|t| t.name == now.name);
                ThreadProfile {
                    name: now.name.clone(),
                    samples: base
                        .map(|b| now.samples.saturating_sub(b.samples))
                        .unwrap_or(now.samples),
                    counts: now
                        .counts
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            let was = base.and_then(|b| b.counts.get(i).copied()).unwrap_or(0);
                            c.saturating_sub(was)
                        })
                        .collect(),
                }
            })
            .collect();
        ProfileSnapshot {
            at_ns: self.at_ns,
            rounds: self.rounds.saturating_sub(earlier.rounds),
            threads,
        }
    }

    /// Number of distinct states with a non-zero residency count
    /// anywhere in the profile (the CI smoke gate: ≥ 3 under load).
    pub fn distinct_states(&self) -> usize {
        let mut seen = [false; THREAD_STATES];
        let mut extra = 0usize;
        for thread in &self.threads {
            for (i, &count) in thread.counts.iter().enumerate() {
                if count > 0 {
                    match seen.get_mut(i) {
                        Some(slot) => *slot = true,
                        None => extra += 1,
                    }
                }
            }
        }
        seen.iter().filter(|&&s| s).count() + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn residency_counts_follow_the_state_words() {
        let clock = Arc::new(VirtualClock::new());
        let profiler = Profiler::new(clock);
        let a = profiler.register("worker-a");
        let b = profiler.register("worker-b");
        a.set(ThreadState::Engine);
        b.set(ThreadState::Epoll);
        for _ in 0..10 {
            profiler.sample_once();
        }
        a.set(ThreadState::Write);
        for _ in 0..5 {
            profiler.sample_once();
        }
        let snap = profiler.snapshot();
        assert_eq!(snap.rounds, 15);
        let wa = &snap.threads[0];
        assert_eq!(wa.name, "worker-a");
        assert_eq!(wa.counts[ThreadState::Engine as usize], 10);
        assert_eq!(wa.counts[ThreadState::Write as usize], 5);
        let wb = &snap.threads[1];
        assert_eq!(wb.counts[ThreadState::Epoll as usize], 15);
    }

    #[test]
    fn conservation_holds_with_late_registration() {
        let profiler = Profiler::new(Arc::new(VirtualClock::new()));
        let _a = profiler.register("early");
        for _ in 0..7 {
            profiler.sample_once();
        }
        let _b = profiler.register("late");
        for _ in 0..3 {
            profiler.sample_once();
        }
        let snap = profiler.snapshot();
        for thread in &snap.threads {
            assert!(thread.conserves(), "{thread:?}");
        }
        assert_eq!(snap.threads[0].samples, 10);
        assert_eq!(snap.threads[1].samples, 3);
    }

    #[test]
    fn enter_guard_restores_the_previous_state() {
        let profiler = Profiler::new(Arc::new(VirtualClock::new()));
        let handle = profiler.register("w");
        handle.set(ThreadState::Decode);
        {
            let _g = handle.enter(ThreadState::Engine);
            assert_eq!(handle.current(), ThreadState::Engine as u8);
            {
                let _g2 = handle.enter(ThreadState::LockWait);
                assert_eq!(handle.current(), ThreadState::LockWait as u8);
            }
            assert_eq!(handle.current(), ThreadState::Engine as u8);
        }
        assert_eq!(handle.current(), ThreadState::Decode as u8);
    }

    #[test]
    fn folded_rendering_is_deterministic_per_script() {
        let run = || {
            let profiler = Profiler::new(Arc::new(VirtualClock::new()));
            let w0 = profiler.register("scaddard-worker-0");
            let w1 = profiler.register("scaddard-worker-1");
            let mut state = 42u64;
            for _ in 0..200 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                w0.set(ThreadState::from_u8((state % 8) as u8).unwrap());
                w1.set(ThreadState::from_u8(((state >> 8) % 8) as u8).unwrap());
                profiler.sample_once();
            }
            profiler.snapshot().render_folded()
        };
        let first = run();
        assert_eq!(first, run(), "same script must render byte-identically");
        assert!(first.contains("scaddard-worker-0;"));
        for line in first.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert_eq!(stack.split(';').count(), 2);
            count.parse::<u64>().expect("folded count parses");
        }
    }

    #[test]
    fn since_diffs_cumulative_snapshots() {
        let profiler = Profiler::new(Arc::new(VirtualClock::new()));
        let h = profiler.register("w");
        h.set(ThreadState::Engine);
        for _ in 0..4 {
            profiler.sample_once();
        }
        let first = profiler.snapshot();
        h.set(ThreadState::Write);
        for _ in 0..6 {
            profiler.sample_once();
        }
        let interval = profiler.snapshot().since(&first);
        assert_eq!(interval.rounds, 6);
        assert_eq!(interval.threads[0].samples, 6);
        assert_eq!(interval.threads[0].counts[ThreadState::Engine as usize], 0);
        assert_eq!(interval.threads[0].counts[ThreadState::Write as usize], 6);
        assert!(interval.threads[0].conserves());
    }

    #[test]
    fn distinct_states_counts_nonzero_columns() {
        let profiler = Profiler::new(Arc::new(VirtualClock::new()));
        let h = profiler.register("w");
        for state in [ThreadState::Decode, ThreadState::Engine, ThreadState::Write] {
            h.set(state);
            profiler.sample_once();
        }
        assert_eq!(profiler.snapshot().distinct_states(), 3);
    }

    #[test]
    fn publish_exposes_gauges_in_prometheus_output() {
        let profiler = Profiler::new(Arc::new(VirtualClock::new()));
        let h = profiler.register("scaddard-worker-0");
        h.set(ThreadState::Engine);
        profiler.sample_once();
        let registry = Registry::new();
        profiler.publish(&registry);
        let text = registry.render_prometheus();
        assert!(
            text.contains(
                "profiler_state_samples{thread=\"scaddard-worker-0\",state=\"engine\"} 1"
            ),
            "{text}"
        );
        assert!(text.contains("profiler_rounds 1"), "{text}");
        // Re-publishing sets absolute values, it does not double-add.
        profiler.publish(&registry);
        assert!(registry
            .render_prometheus()
            .contains("profiler_state_samples{thread=\"scaddard-worker-0\",state=\"engine\"} 1"));
    }

    #[test]
    fn sampler_thread_accumulates_and_joins() {
        let profiler = Profiler::new(Arc::new(crate::clock::MonotonicClock::new()));
        let h = profiler.register("w");
        h.set(ThreadState::Offload);
        let shutdown = Arc::new(AtomicBool::new(false));
        let join = profiler.spawn_sampler(Duration::from_micros(200), shutdown.clone());
        while profiler.rounds() < 5 {
            std::thread::yield_now();
        }
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap();
        let snap = profiler.snapshot();
        assert!(snap.threads[0].counts[ThreadState::Offload as usize] >= 5);
        assert!(snap.threads[0].conserves());
    }
}
