//! # scaddar-obs — vendored observability core
//!
//! The workspace builds offline (no `tracing`, no `prometheus`), so this
//! crate provides the telemetry substrate the stack instruments itself
//! with:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   log-linear [`Histogram`]s (p50/p95/p99/max) built on relaxed
//!   atomics; recording never takes a lock;
//! * [`registry`] — a global-free [`Registry`] that names metrics,
//!   renders both Prometheus text exposition and a JSON snapshot, and
//!   exposes a generic read API ([`Registry::value`],
//!   [`Registry::gauges_with_prefix`]) for monitors that poll by name;
//! * [`events`] — an [`EventLog`]: append-only typed events rendered as
//!   JSON Lines, clock-stamped for deterministic replay;
//! * [`trace`] — structured spans with enter/exit timing and `key=value`
//!   events, recorded into a bounded ring buffer by a [`Tracer`];
//! * [`profile`] — the cooperative sampling profiler: per-thread
//!   atomic state words ([`StateHandle`]) read by a [`Profiler`]
//!   sampler into state-residency profiles rendered as folded-stack
//!   text and Registry gauges;
//! * [`clock`] — the pluggable [`Clock`] trait: [`MonotonicClock`] for
//!   production, [`VirtualClock`] for deterministic harness runs (same
//!   seed → byte-identical span timelines).
//!
//! Handles are cheap `Arc` clones; the intended shape is "create a
//! [`Registry`] at the composition root, hand out handles to each
//! subsystem". Nothing here is `static` — two servers in one process get
//! two disjoint registries.
//!
//! ```
//! use scaddar_obs::{Registry, Tracer, VirtualClock};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let lookups = registry.counter("scaddar_core_locate_calls_total", "AF() lookups");
//! let latency = registry.histogram("scaddar_core_locate_ns", "AF() latency (ns)");
//! lookups.inc();
//! latency.record(42);
//! assert!(registry.render_prometheus().contains("scaddar_core_locate_calls_total 1"));
//!
//! let clock = Arc::new(VirtualClock::new());
//! let tracer = Tracer::new(clock.clone(), 128);
//! {
//!     let mut span = tracer.span("demo");
//!     clock.advance(10);
//!     span.event("k", "v");
//! }
//! assert_eq!(tracer.recent(1)[0].end_ns, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod trace;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use events::{Event, EventLog};
pub use metrics::{
    bucket_layout, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS, SUB_BITS,
    SUB_BUCKETS,
};
pub use profile::{
    ProfileSnapshot, Profiler, StateGuard, StateHandle, ThreadProfile, ThreadState, THREAD_STATES,
    THREAD_STATE_NAMES,
};
pub use registry::{
    json_escape, parse_json_values, try_parse_json_values, CounterSample, GaugeSample,
    HistogramSample, MetricValue, ParseError, Registry, RegistrySnapshot, BUCKET_LAYOUT_GAUGE,
};
pub use slo::{BurnRates, SloConfig, SloTracker, WindowBurn};
pub use trace::{render_trace_dump, SpanGuard, SpanRecord, TraceContext, Tracer};
