//! Structured event log: an append-only buffer of typed events
//! rendered as JSON Lines.
//!
//! The health monitor (and anything else with discrete findings to
//! report) emits events here instead of interleaving prints with
//! metric output. Each event is one JSON object per line:
//!
//! ```json
//! {"ts_ns": 1234, "kind": "ro2-chi-square", "severity": "warn", "p_value": "0.0001"}
//! ```
//!
//! Timestamps come from the injected [`Clock`], so a harness run under
//! a `VirtualClock` produces a byte-identical event stream per seed —
//! the property the determinism invariants assert. Field order is the
//! insertion order chosen by the emitter (deterministic by
//! construction); values are stored pre-rendered as strings and
//! escaped on render.

use crate::clock::Clock;
use crate::registry::json_escape;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One logged event: a kind tag plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock timestamp at emit time.
    pub ts_ns: u64,
    /// Event type tag, e.g. `ro1-deviation`.
    pub kind: String,
    /// Ordered extra fields (insertion order is preserved on render).
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"ts_ns\": {}, \"kind\": \"{}\"",
            self.ts_ns,
            json_escape(&self.kind)
        );
        for (key, value) in &self.fields {
            let _ = write!(
                out,
                ", \"{}\": \"{}\"",
                json_escape(key),
                json_escape(value)
            );
        }
        out.push('}');
        out
    }
}

/// A live size-capped JSONL file sink: every emitted event is also
/// appended to `path`, and when the file would exceed `max_bytes` it
/// is rolled over *once* — the current file renames to `path.1`
/// (replacing any previous rollover) and a fresh file starts. Total
/// on-disk footprint is therefore bounded by ~`2 * max_bytes` no
/// matter how long a `watch`/soak run emits.
#[derive(Debug)]
struct FileSink {
    path: PathBuf,
    max_bytes: u64,
    file: File,
    written: u64,
}

impl FileSink {
    /// Path of the single rollover file (`<path>.1`).
    fn rollover_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Appends one rendered line, rotating first if it would push the
    /// current file past the cap. Best-effort: I/O errors drop the
    /// line from the file (never from the in-memory log) rather than
    /// poisoning the emitter.
    fn append(&mut self, line: &str) {
        if self.written > 0 && self.written + line.len() as u64 > self.max_bytes {
            let _ = std::fs::rename(&self.path, Self::rollover_path(&self.path));
            match File::create(&self.path) {
                Ok(file) => {
                    self.file = file;
                    self.written = 0;
                }
                Err(_) => return,
            }
        }
        if self.file.write_all(line.as_bytes()).is_ok() {
            self.written += line.len() as u64;
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    sink: Option<FileSink>,
}

/// A cheaply clonable, append-only event sink with a JSONL renderer.
///
/// Shares one buffer across clones (like [`Registry`]); emission takes
/// a short lock. There is no capacity bound on the in-memory buffer:
/// event volume is expected to be low (alerts, state changes), unlike
/// spans or metrics. Long-running emitters that stream to disk attach
/// a size-capped rotating file via
/// [`attach_file_sink`](EventLog::attach_file_sink).
///
/// [`Registry`]: crate::registry::Registry
#[derive(Debug, Clone)]
pub struct EventLog {
    clock: Arc<dyn Clock>,
    inner: Arc<Mutex<Inner>>,
}

impl EventLog {
    /// An empty log stamping events with `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        EventLog {
            clock,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The clock used for timestamps.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Streams every future event to `path` as JSONL, rotating to a
    /// single `<path>.1` rollover whenever the file would exceed
    /// `max_bytes` (so disk usage stays bounded under soak runs). The
    /// file is created (truncated) now; events already in memory are
    /// not back-filled. Appends happen under the same lock as the
    /// in-memory push, so file order always matches
    /// [`events`](EventLog::events) order and concurrent writers
    /// never tear lines.
    pub fn attach_file_sink(&self, path: &Path, max_bytes: u64) -> std::io::Result<()> {
        let file = File::create(path)?;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.sink = Some(FileSink {
            path: path.to_path_buf(),
            max_bytes,
            file,
            written: 0,
        });
        Ok(())
    }

    /// Appends one event stamped with the current clock reading.
    /// `fields` render in the given order.
    pub fn emit<K, V>(&self, kind: &str, fields: impl IntoIterator<Item = (K, V)>)
    where
        K: Into<String>,
        V: Into<String>,
    {
        let event = Event {
            ts_ns: self.clock.now_ns(),
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = inner.sink.as_mut() {
            let mut line = event.to_json();
            line.push('\n');
            sink.append(&line);
        }
        inner.events.push(event);
    }

    /// Number of events logged so far.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.len()
    }

    /// Whether no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every logged event, in emission order.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.clone()
    }

    /// Renders the whole log as JSON Lines: one object per line,
    /// trailing newline iff non-empty.
    pub fn render_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for event in inner.events.iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL rendering to `path` (truncating).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render_jsonl())
    }

    /// Drops every logged event (the file sink, if any, is untouched).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::registry::try_parse_json_values;

    fn virtual_log() -> (EventLog, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (EventLog::new(clock.clone()), clock)
    }

    #[test]
    fn events_are_stamped_and_ordered() {
        let (log, clock) = virtual_log();
        log.emit("first", [("a", "1")]);
        clock.advance(50);
        log.emit("second", Vec::<(&str, &str)>::new());
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "first");
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[1].ts_ns, 50);
    }

    #[test]
    fn jsonl_rendering_is_one_valid_object_per_line() {
        let (log, clock) = virtual_log();
        log.emit("alert", [("probe", "ro2"), ("severity", "warn")]);
        clock.advance(7);
        log.emit("quote\"in\"kind", [("detail", "line\nbreak")]);
        let jsonl = log.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ts_ns\": 0, \"kind\": \"alert\", \"probe\": \"ro2\", \"severity\": \"warn\"}"
        );
        // Escaped payloads stay on one line and parse strictly.
        assert!(!lines[1].contains('\n'));
        for line in &lines {
            assert!(try_parse_json_values(line).is_ok(), "invalid JSON: {line}");
        }
    }

    #[test]
    fn clones_share_one_buffer() {
        let (log, _clock) = virtual_log();
        let peer = log.clone();
        log.emit("from-original", Vec::<(&str, &str)>::new());
        peer.emit("from-clone", Vec::<(&str, &str)>::new());
        assert_eq!(log.len(), 2);
        assert_eq!(peer.render_jsonl(), log.render_jsonl());
    }

    #[test]
    fn identical_emission_sequences_render_byte_identically() {
        let run = || {
            let (log, clock) = virtual_log();
            for i in 0..5 {
                log.emit("tick", [("i", i.to_string())]);
                clock.advance(13);
            }
            log.render_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn concurrent_writers_never_tear_lines_and_keep_per_writer_order() {
        // The monitor and the SLO engine now both emit into one log:
        // every event must land as exactly one complete JSONL line,
        // and each writer's own events must stay in emission order.
        let (log, _clock) = virtual_log();
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 200;
        crossbeam::scope(|s| {
            for w in 0..WRITERS {
                let log = log.clone();
                s.spawn(move |_| {
                    for i in 0..PER_WRITER {
                        log.emit("tick", [("writer", w.to_string()), ("seq", i.to_string())]);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(log.len(), WRITERS * PER_WRITER);
        let jsonl = log.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), WRITERS * PER_WRITER);
        let mut next_seq = [0usize; WRITERS];
        for line in &lines {
            try_parse_json_values(line).expect("torn or interleaved line");
            let field = |key: &str| {
                let tag = format!("\"{key}\": \"");
                let rest = &line[line.find(&tag).unwrap() + tag.len()..];
                rest[..rest.find('"').unwrap()].parse::<usize>().unwrap()
            };
            let (w, seq) = (field("writer"), field("seq"));
            assert_eq!(seq, next_seq[w], "writer {w} events out of order");
            next_seq[w] += 1;
        }
        assert!(next_seq.iter().all(|&n| n == PER_WRITER));
    }

    #[test]
    fn file_sink_rotates_once_at_the_byte_cap() {
        let (log, _clock) = virtual_log();
        let dir = std::env::temp_dir().join("scaddar-obs-eventlog-rotate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let rollover = dir.join("events.jsonl.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rollover);
        // Each line is ~45 bytes; a 256-byte cap forces several
        // rotations over 40 emits, exercising the .1 replacement.
        log.attach_file_sink(&path, 256).unwrap();
        for i in 0..40 {
            log.emit("tick", [("i", i.to_string())]);
        }
        let current = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rollover).unwrap();
        assert!(
            current.len() as u64 <= 256,
            "cap respected: {}",
            current.len()
        );
        assert!(old.len() as u64 <= 256);
        for line in current.lines().chain(old.lines()) {
            try_parse_json_values(line).expect("rotated files hold whole lines");
        }
        // The two files together are exactly a suffix of the full
        // stream — rotation loses only what aged past the rollover.
        let on_disk = format!("{old}{current}");
        assert!(log.render_jsonl().ends_with(&on_disk));
        // The in-memory log is complete regardless of rotation.
        assert_eq!(log.len(), 40);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rollover);
    }

    #[test]
    fn concurrent_writers_with_rotation_never_tear_file_lines() {
        let (log, _clock) = virtual_log();
        let dir = std::env::temp_dir().join("scaddar-obs-eventlog-rotate-mt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let rollover = dir.join("events.jsonl.1");
        let _ = std::fs::remove_file(&rollover);
        log.attach_file_sink(&path, 2048).unwrap();
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 100;
        crossbeam::scope(|s| {
            for w in 0..WRITERS {
                let log = log.clone();
                s.spawn(move |_| {
                    for i in 0..PER_WRITER {
                        log.emit("tick", [("writer", w.to_string()), ("seq", i.to_string())]);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(log.len(), WRITERS * PER_WRITER);
        let current = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rollover).expect("cap forced at least one rotation");
        let on_disk = format!("{old}{current}");
        for line in on_disk.lines() {
            try_parse_json_values(line).expect("torn line across rotation");
        }
        // File emission shares the in-memory lock: disk order is the
        // tail of the global emission order even across the rollover.
        assert!(log.render_jsonl().ends_with(&on_disk));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rollover);
    }

    #[test]
    fn seeded_replay_is_byte_identical() {
        // The determinism contract the harness invariants lean on:
        // one seed → one exact JSONL byte stream, run after run.
        let run = |seed: u64| {
            let (log, clock) = virtual_log();
            let mut state = seed;
            for i in 0..64u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                clock.advance(state % 997 + 1);
                log.emit(
                    if state.is_multiple_of(3) {
                        "probe"
                    } else {
                        "alert"
                    },
                    [("i", i.to_string()), ("v", (state % 1000).to_string())],
                );
            }
            log.render_jsonl()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(7), run(8), "the seed actually drives the stream");
    }

    #[test]
    fn write_to_persists_the_rendering() {
        let (log, _clock) = virtual_log();
        log.emit("persisted", [("ok", "yes")]);
        let dir = std::env::temp_dir().join("scaddar-obs-eventlog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        log.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), log.render_jsonl());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clear_empties_the_log() {
        let (log, _clock) = virtual_log();
        log.emit("gone", Vec::<(&str, &str)>::new());
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.render_jsonl(), "");
    }
}
