//! Time sources for telemetry.
//!
//! Everything in this crate that needs a timestamp takes it from a
//! [`Clock`], never from [`std::time::Instant`] directly. Production
//! code uses [`MonotonicClock`]; the deterministic simulation harness
//! substitutes a [`VirtualClock`] it advances by hand, so span
//! timelines are a pure function of the scenario (same seed →
//! byte-identical trace, no wall-clock jitter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since the clock's origin. Monotone non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time, measured from the clock's construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a u64 of nanoseconds covers ~584
        // years, but the cast from u128 must still be total.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually driven clock: reads return whatever the driver last set.
///
/// Thread-safe so concurrent readers (the tracer, sampled histograms)
/// can share it with the driving loop.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t=0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `delta_ns` (saturating) and returns the new
    /// reading.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        let mut current = self.ns.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(delta_ns);
            match self
                .ns
                .compare_exchange(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(observed) => current = observed,
            }
        }
    }

    /// Sets the clock to `ns` if that moves it forward (monotonicity is
    /// part of the [`Clock`] contract).
    pub fn set(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_is_driver_controlled() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.advance(5), 5);
        assert_eq!(clock.advance(7), 12);
        clock.set(10); // backwards set is ignored
        assert_eq!(clock.now_ns(), 12);
        clock.set(100);
        assert_eq!(clock.now_ns(), 100);
        clock.advance(u64::MAX); // saturates, no wrap
        assert_eq!(clock.now_ns(), u64::MAX);
    }
}
