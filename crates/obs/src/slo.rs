//! Multi-window SLO burn-rate tracking.
//!
//! An SLO ("99.9% of locates succeed", "99.9% of locates finish under
//! 100 µs") defines an *error budget*: the fraction of requests allowed
//! to be bad. The **burn rate** is how fast the fleet is spending that
//! budget — `observed bad fraction / budgeted bad fraction` — so burn
//! 1.0 spends exactly the budget over the window and burn 10 exhausts a
//! 30-day budget in 3 days. Following the multi-window pattern
//! (Google SRE workbook), each objective is evaluated over a *short*
//! (5 m) and a *long* (1 h) window: the long window proves the problem
//! is sustained, the short window proves it is still happening, and an
//! alert should fire only when **both** burn hot. [`WindowBurn::gating`]
//! returns `min(short, long)` so one hysteresis rule threshold on the
//! gating value implements that AND.
//!
//! Time comes from the injected [`Clock`]: a harness driving a
//! [`VirtualClock`](crate::VirtualClock) gets byte-identical burn-rate
//! sequences per seed. Counts live in a coarse ring of fixed-width time
//! buckets (default 10 s), pruned past the long window, so memory is
//! bounded by `long_window / bucket` regardless of traffic.
//!
//! This module is deliberately self-contained (the monitor crate
//! depends on obs, not the reverse): it computes burn rates; the
//! bridge that runs them through the hysteresis rule engine and emits
//! `HealthEvent`s lives in `scaddar-monitor`.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The objectives and windows one [`SloTracker`] evaluates.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Availability objective: target fraction of requests that
    /// succeed (e.g. `0.999` → 0.1% error budget).
    pub availability_target: f64,
    /// Latency objective in nanoseconds: a request slower than this is
    /// "slow" (the stack's north star is a sub-100 µs tail).
    pub latency_objective_ns: u64,
    /// Latency target: fraction of requests that must beat the
    /// objective (e.g. `0.999` → a p999 objective).
    pub latency_target: f64,
    /// Short ("still happening") window.
    pub short_window_ns: u64,
    /// Long ("sustained") window.
    pub long_window_ns: u64,
    /// Ring bucket width; the window resolution.
    pub bucket_ns: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_target: 0.999,
            latency_objective_ns: 100_000,
            latency_target: 0.999,
            short_window_ns: 5 * 60 * 1_000_000_000,
            long_window_ns: 60 * 60 * 1_000_000_000,
            bucket_ns: 10 * 1_000_000_000,
        }
    }
}

/// One objective's burn rate over both windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBurn {
    /// Burn over the short window.
    pub short: f64,
    /// Burn over the long window.
    pub long: f64,
}

impl WindowBurn {
    /// The multi-window gating value: `min(short, long)`. High only
    /// when the burn is both sustained (long) and ongoing (short) —
    /// threshold this, not the windows individually.
    pub fn gating(&self) -> f64 {
        self.short.min(self.long)
    }
}

/// Burn rates for both tracked objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRates {
    /// Availability (error-fraction) burn.
    pub availability: WindowBurn,
    /// Latency (slow-fraction past the objective) burn.
    pub latency: WindowBurn,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    start_ns: u64,
    total: u64,
    errors: u64,
    slow: u64,
}

/// Clock-driven request accounting for one service's SLOs; cheaply
/// clonable, clones share the ring (like [`Registry`]).
///
/// [`Registry`]: crate::registry::Registry
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    clock: Arc<dyn Clock>,
    buckets: Arc<Mutex<VecDeque<Bucket>>>,
}

impl SloTracker {
    /// A tracker with `config`, stamping buckets from `clock`.
    pub fn new(config: SloConfig, clock: Arc<dyn Clock>) -> Self {
        SloTracker {
            config,
            clock,
            buckets: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Accounts one request: `ok` for availability, `latency_ns`
    /// against the latency objective.
    pub fn record(&self, ok: bool, latency_ns: u64) {
        self.record_batch(
            1,
            u64::from(!ok),
            u64::from(latency_ns > self.config.latency_objective_ns),
        );
    }

    /// Accounts a pre-aggregated batch — the federation path, where
    /// the aggregator feeds scrape-to-scrape counter deltas (total /
    /// errored / slower-than-objective) instead of individual requests.
    pub fn record_batch(&self, total: u64, errors: u64, slow: u64) {
        if total == 0 && errors == 0 && slow == 0 {
            return;
        }
        let now = self.clock.now_ns();
        let start = now - now % self.config.bucket_ns;
        let mut ring = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        match ring.back_mut() {
            Some(back) if back.start_ns == start => {
                back.total += total;
                back.errors += errors;
                back.slow += slow;
            }
            _ => ring.push_back(Bucket {
                start_ns: start,
                total,
                errors,
                slow,
            }),
        }
        // Prune buckets wholly past the long window.
        let horizon = now.saturating_sub(self.config.long_window_ns);
        while ring
            .front()
            .is_some_and(|b| b.start_ns + self.config.bucket_ns <= horizon)
        {
            ring.pop_front();
        }
    }

    /// `(total, errors, slow)` over the trailing `window_ns`.
    fn window_counts(&self, now: u64, window_ns: u64) -> (u64, u64, u64) {
        let horizon = now.saturating_sub(window_ns);
        let ring = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let mut acc = (0u64, 0u64, 0u64);
        for b in ring.iter() {
            // Any overlap with the window counts (bucket resolution).
            if b.start_ns + self.config.bucket_ns > horizon {
                acc.0 += b.total;
                acc.1 += b.errors;
                acc.2 += b.slow;
            }
        }
        acc
    }

    fn burn(bad: u64, total: u64, target: f64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - target).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Both objectives' burn rates over both windows, as of now.
    pub fn burn_rates(&self) -> BurnRates {
        let now = self.clock.now_ns();
        let per_window = |window_ns: u64| {
            let (total, errors, slow) = self.window_counts(now, window_ns);
            (
                Self::burn(errors, total, self.config.availability_target),
                Self::burn(slow, total, self.config.latency_target),
            )
        };
        let (avail_short, lat_short) = per_window(self.config.short_window_ns);
        let (avail_long, lat_long) = per_window(self.config.long_window_ns);
        BurnRates {
            availability: WindowBurn {
                short: avail_short,
                long: avail_long,
            },
            latency: WindowBurn {
                short: lat_short,
                long: lat_long,
            },
        }
    }

    /// Total requests currently retained in the ring (all windows).
    pub fn retained_total(&self) -> u64 {
        let ring = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().map(|b| b.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn fixture() -> (Arc<VirtualClock>, SloTracker) {
        let clock = Arc::new(VirtualClock::new());
        let tracker = SloTracker::new(SloConfig::default(), clock.clone());
        (clock, tracker)
    }

    #[test]
    fn burn_is_bad_fraction_over_budget() {
        let (_clock, tracker) = fixture();
        // 1% errors against a 0.1% budget: burn 10 on both windows.
        for i in 0..1000 {
            tracker.record(i % 100 != 0, 10);
        }
        let burns = tracker.burn_rates();
        assert!((burns.availability.short - 10.0).abs() < 1e-6);
        assert!((burns.availability.long - 10.0).abs() < 1e-6);
        assert!((burns.availability.gating() - 10.0).abs() < 1e-6);
        // All requests were fast: zero latency burn.
        assert_eq!(burns.latency.gating(), 0.0);
    }

    #[test]
    fn latency_over_objective_burns_the_latency_budget() {
        let (_clock, tracker) = fixture();
        // p999 objective at 100 µs; 0.5% of traffic at 2 ms.
        for i in 0..1000u64 {
            tracker.record(true, if i % 200 == 0 { 2_000_000 } else { 40_000 });
        }
        let burns = tracker.burn_rates();
        assert!((burns.latency.short - 5.0).abs() < 1e-9);
        assert_eq!(burns.availability.gating(), 0.0);
    }

    #[test]
    fn empty_tracker_burns_nothing() {
        let (_clock, tracker) = fixture();
        let burns = tracker.burn_rates();
        assert_eq!(burns.availability.gating(), 0.0);
        assert_eq!(burns.latency.gating(), 0.0);
        assert_eq!(tracker.retained_total(), 0);
    }

    #[test]
    fn short_window_forgets_what_the_long_window_remembers() {
        let (clock, tracker) = fixture();
        let cfg = tracker.config().clone();
        // A burst of errors, then 10 minutes of clean traffic.
        for _ in 0..100 {
            tracker.record(false, 10);
        }
        clock.advance(2 * cfg.short_window_ns);
        for _ in 0..900 {
            tracker.record(true, 10);
        }
        let burns = tracker.burn_rates();
        // Short window: clean. Long window: 10% errors → burn 100.
        assert_eq!(burns.availability.short, 0.0);
        assert!((burns.availability.long - 100.0).abs() < 1e-9);
        // The gating value (AND) stays quiet: not *still happening*.
        assert_eq!(burns.availability.gating(), 0.0);
    }

    #[test]
    fn buckets_prune_past_the_long_window() {
        let (clock, tracker) = fixture();
        let cfg = tracker.config().clone();
        for _ in 0..500 {
            tracker.record(false, 10);
        }
        clock.advance(cfg.long_window_ns + 2 * cfg.bucket_ns);
        tracker.record(true, 10); // triggers pruning
        assert_eq!(tracker.retained_total(), 1, "old buckets dropped");
        let burns = tracker.burn_rates();
        assert_eq!(burns.availability.long, 0.0);
    }

    #[test]
    fn batch_and_individual_recording_agree() {
        let clock = Arc::new(VirtualClock::new());
        let a = SloTracker::new(SloConfig::default(), clock.clone());
        let b = SloTracker::new(SloConfig::default(), clock.clone());
        for i in 0..200 {
            a.record(i % 50 != 0, if i % 100 == 0 { 1_000_000 } else { 10 });
        }
        b.record_batch(200, 4, 2);
        assert_eq!(a.burn_rates(), b.burn_rates());
        // Empty batches are no-ops (no phantom buckets).
        b.record_batch(0, 0, 0);
        assert_eq!(a.burn_rates(), b.burn_rates());
    }

    #[test]
    fn burn_sequences_are_deterministic_under_a_virtual_clock() {
        let run = || {
            let (clock, tracker) = fixture();
            let mut outputs = Vec::new();
            for step in 0..50u64 {
                tracker.record(step % 7 != 0, 50_000 + step * 3_000);
                clock.advance(30_000_000_000);
                let burns = tracker.burn_rates();
                outputs.push(format!(
                    "{:.6}/{:.6}",
                    burns.availability.gating(),
                    burns.latency.gating()
                ));
            }
            outputs.join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clones_share_the_ring() {
        let (_clock, tracker) = fixture();
        let peer = tracker.clone();
        tracker.record(false, 10);
        peer.record(false, 10);
        assert_eq!(tracker.retained_total(), 2);
    }
}
