//! The metric registry: names → live metric handles, rendered on
//! demand.
//!
//! A [`Registry`] is a cheaply clonable handle to a shared name table.
//! There is deliberately no global: each composition root (a CLI
//! session, a simulated server, a bench fixture) creates its own and
//! threads it to the subsystems it observes. Registration takes a short
//! lock; *recording* through the returned handles never does.
//!
//! Naming scheme (documented in `DESIGN.md` §9): `snake_case`,
//! `<crate>_<subsystem>_<what>[_<unit>]`, e.g.
//! `scaddar_core_locate_ns`, `cmsim_server_backlog`. A name may carry a
//! fixed Prometheus label set inline (`cmsim_disk_queue_depth{disk="3"}`);
//! the text before `{` is the metric family.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A global-free registry of named metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F, G>(&self, name: &str, help: &str, extract: F, create: G) -> T
    where
        F: Fn(&Metric) -> Option<T>,
        G: FnOnce() -> (T, Metric),
    {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = entries.get(name) {
            return extract(&entry.metric).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` already registered as a {}",
                    entry.metric.kind()
                )
            });
        }
        let (handle, metric) = create();
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                metric,
            },
        );
        handle
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.keys().cloned().collect()
    }

    /// Renders the Prometheus text exposition format (v0.0.4): `# HELP`
    /// and `# TYPE` per family, one sample line per counter/gauge, and
    /// the `_bucket`/`_sum`/`_count` triplet per histogram.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, entry) in entries.iter() {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# HELP {family} {}", entry.help);
                let _ = writeln!(out, "# TYPE {family} {}", entry.metric.kind());
                last_family = family.to_string();
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (le, cum) in snap.cumulative_buckets() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot: three sorted arrays (`counters`,
    /// `gauges`, `histograms`), histograms with count/sum/max and
    /// estimated p50/p95/p99 (`null` while empty). Hand-written, no
    /// serde; [`parse_json_values`] is the matching hand parser.
    pub fn snapshot_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let (mut counters, mut gauges, mut histograms) =
            (String::new(), String::new(), String::new());
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    append_item(
                        &mut counters,
                        format!("{{\"name\": \"{name}\", \"value\": {}}}", c.get()),
                    );
                }
                Metric::Gauge(g) => {
                    append_item(
                        &mut gauges,
                        format!("{{\"name\": \"{name}\", \"value\": {}}}", g.get()),
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let q = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
                    append_item(
                        &mut histograms,
                        format!(
                            "{{\"name\": \"{name}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                            snap.count,
                            snap.sum,
                            q((snap.count > 0).then_some(snap.max)),
                            q(snap.quantile(0.50)),
                            q(snap.quantile(0.95)),
                            q(snap.quantile(0.99)),
                        ),
                    );
                }
            }
        }
        format!(
            "{{\n  \"counters\": [\n{counters}\n  ],\n  \"gauges\": [\n{gauges}\n  ],\n  \"histograms\": [\n{histograms}\n  ]\n}}\n"
        )
    }
}

fn append_item(list: &mut String, item: String) {
    if !list.is_empty() {
        list.push_str(",\n");
    }
    list.push_str("    ");
    list.push_str(&item);
}

/// Hand parser for the [`Registry::snapshot_json`] format (and any flat
/// JSON of objects with string `"name"`s and numeric/null fields):
/// returns `(name, field, value)` triples in document order. `null`
/// fields are skipped. Used by tests and tooling to round-trip the
/// snapshot without serde.
pub fn parse_json_values(json: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split('{').skip(1) {
        let obj = chunk.split('}').next().unwrap_or("");
        let mut name = None;
        let mut fields = Vec::new();
        for field in obj.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            if key == "name" {
                name = Some(value.trim_matches('"').to_string());
            } else if let Ok(v) = value.parse::<f64>() {
                fields.push((key.to_string(), v));
            }
        }
        if let Some(name) = name {
            for (field, v) in fields {
                out.push((name.clone(), field, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("alpha_total", "first").add(3);
        r.gauge("beta", "second").set(-7);
        let h = r.histogram("gamma_ns", "third");
        h.record(5);
        h.record(100);
        r
    }

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.names(), vec!["x_total".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP alpha_total first"));
        assert!(text.contains("# TYPE alpha_total counter"));
        assert!(text.contains("alpha_total 3"));
        assert!(text.contains("# TYPE beta gauge"));
        assert!(text.contains("beta -7"));
        assert!(text.contains("# TYPE gamma_ns histogram"));
        assert!(text.contains("gamma_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gamma_ns_sum 105"));
        assert!(text.contains("gamma_ns_count 2"));
        // Cumulative buckets never decrease and end at the count.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("gamma_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        // Every line is `# ...` or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn labeled_names_share_one_family_header() {
        let r = Registry::new();
        r.gauge("disk_depth{disk=\"0\"}", "queue depth").set(4);
        r.gauge("disk_depth{disk=\"1\"}", "queue depth").set(9);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE disk_depth gauge").count(), 1);
        assert!(text.contains("disk_depth{disk=\"0\"} 4"));
        assert!(text.contains("disk_depth{disk=\"1\"} 9"));
    }

    #[test]
    fn json_snapshot_round_trips_through_hand_parsing() {
        let r = sample_registry();
        let json = r.snapshot_json();
        let values = parse_json_values(&json);
        let get = |name: &str, field: &str| {
            values
                .iter()
                .find(|(n, f, _)| n == name && f == field)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(get("alpha_total", "value"), Some(3.0));
        assert_eq!(get("beta", "value"), Some(-7.0));
        assert_eq!(get("gamma_ns", "count"), Some(2.0));
        assert_eq!(get("gamma_ns", "sum"), Some(105.0));
        assert_eq!(get("gamma_ns", "max"), Some(100.0));
        assert_eq!(get("gamma_ns", "p50"), Some(7.0), "bucket bound of 5");
        assert_eq!(get("gamma_ns", "p99"), Some(100.0));
    }

    #[test]
    fn empty_histogram_snapshots_as_nulls() {
        let r = Registry::new();
        r.histogram("empty_ns", "never recorded");
        let json = r.snapshot_json();
        assert!(json.contains("\"p50\": null"));
        assert!(json.contains("\"max\": null"));
        // Nulls are skipped by the parser, count survives.
        let values = parse_json_values(&json);
        assert!(values
            .iter()
            .any(|(n, f, v)| n == "empty_ns" && f == "count" && *v == 0.0));
        assert!(!values.iter().any(|(n, f, _)| n == "empty_ns" && f == "p50"));
    }
}
