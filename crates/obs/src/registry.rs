//! The metric registry: names → live metric handles, rendered on
//! demand.
//!
//! A [`Registry`] is a cheaply clonable handle to a shared name table.
//! There is deliberately no global: each composition root (a CLI
//! session, a simulated server, a bench fixture) creates its own and
//! threads it to the subsystems it observes. Registration takes a short
//! lock; *recording* through the returned handles never does.
//!
//! Naming scheme (documented in `DESIGN.md` §9): `snake_case`,
//! `<crate>_<subsystem>_<what>[_<unit>]`, e.g.
//! `scaddar_core_locate_ns`, `cmsim_server_backlog`. A name may carry a
//! fixed Prometheus label set inline (`cmsim_disk_queue_depth{disk="3"}`);
//! the text before `{` is the metric family.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Name of the marker gauge carrying the histogram bucket-layout
/// fingerprint (see [`Registry::mark_bucket_layout`] /
/// [`Registry::absorb_checked`]).
pub const BUCKET_LAYOUT_GAUGE: &str = "obs_bucket_layout";

/// An owned sample of one registered metric, for read-side consumers
/// (the health monitor, report tooling) that poll values generically
/// instead of holding typed handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Current counter total.
    Counter(u64),
    /// Current gauge level.
    Gauge(i64),
    /// Consistent histogram snapshot (boxed: the bucket array dwarfs
    /// the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A global-free registry of named metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F, G>(&self, name: &str, help: &str, extract: F, create: G) -> T
    where
        F: Fn(&Metric) -> Option<T>,
        G: FnOnce() -> (T, Metric),
    {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = entries.get(name) {
            return extract(&entry.metric).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` already registered as a {}",
                    entry.metric.kind()
                )
            });
        }
        let (handle, metric) = create();
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                metric,
            },
        );
        handle
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.keys().cloned().collect()
    }

    /// Reads the current value of the metric named `name`, if
    /// registered. The registry's generic read API: recording goes
    /// through typed handles, but monitors and report tooling can poll
    /// any metric by name without knowing its kind up front.
    pub fn value(&self, name: &str) -> Option<MetricValue> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.get(name).map(|entry| match &entry.metric {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
        })
    }

    /// Current values of every *gauge* whose name starts with `prefix`,
    /// in name order. The natural reader for inline-labeled families
    /// (`cmsim_disk_load_blocks{disk="3"}`): pass the family name and
    /// get every labeled series back.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, i64)> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, entry)| match &entry.metric {
                Metric::Gauge(g) => Some((name.clone(), g.get())),
                _ => None,
            })
            .collect()
    }

    /// Current values of every *counter* whose name starts with
    /// `prefix`, in name order — the counter twin of
    /// [`gauges_with_prefix`](Self::gauges_with_prefix), used to read
    /// inline-labeled families like
    /// `cluster_shard_requests_total{shard="2"}` back numerically.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, entry)| match &entry.metric {
                Metric::Counter(c) => Some((name.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// An owned, structured copy of every registered metric — the unit
    /// of metrics federation. A shard serializes this over the wire
    /// (`ScrapeStats`/`StatsReply` in `scaddar-net`); the fleet
    /// aggregator folds many of them back into one registry with
    /// [`Registry::absorb`]. Entries are in name order; histograms are
    /// full bucket snapshots so merges stay bucket-wise.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = RegistrySnapshot::default();
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    help: entry.help.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    help: entry.help.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: name.clone(),
                    help: entry.help.clone(),
                    snapshot: h.snapshot(),
                }),
            }
        }
        snap
    }

    /// Folds a snapshot into this registry: counters and gauges *add*
    /// (a fleet total is the sum of shard values), histograms merge
    /// bucket-wise. Names absent here are registered with the
    /// snapshot's help text.
    ///
    /// # Panics
    /// If a snapshot name is already registered as a different kind.
    pub fn absorb(&self, snap: &RegistrySnapshot) {
        for c in &snap.counters {
            self.counter(&c.name, &c.help).add(c.value);
        }
        for g in &snap.gauges {
            self.gauge(&g.name, &g.help).add(g.value);
        }
        for h in &snap.histograms {
            self.histogram(&h.name, &h.help).merge_from(&h.snapshot);
        }
    }

    /// Registers and sets the [`BUCKET_LAYOUT_GAUGE`] marker: the
    /// histogram bucket-grid fingerprint
    /// ([`bucket_layout`](crate::metrics::bucket_layout)) that lets a
    /// federating peer verify bucket-wise histogram merges are sound.
    /// Every process that serves its snapshot over the wire should
    /// call this once at registry setup.
    pub fn mark_bucket_layout(&self) {
        self.gauge(
            BUCKET_LAYOUT_GAUGE,
            "Histogram bucket-layout fingerprint (merge compatibility marker)",
        )
        .set(crate::metrics::bucket_layout() as i64);
    }

    /// [`Registry::absorb`] with the histogram merge guarded by the
    /// peer's [`BUCKET_LAYOUT_GAUGE`] marker. Counters and gauges
    /// always fold in (they are layout-independent; the marker gauge
    /// itself is excluded so fleet totals don't sum fingerprints), but
    /// histogram series merge bucket-wise only when the snapshot
    /// declares *our* bucket layout. A missing or mismatched marker —
    /// a shard running an older obs build — skips every histogram
    /// series in that snapshot rather than silently misattributing
    /// counts to wrong boundaries. Returns the number of skipped
    /// histogram series (feed it to `fleet_merge_skipped_total`).
    ///
    /// # Panics
    /// If a snapshot name is already registered as a different kind.
    pub fn absorb_checked(&self, snap: &RegistrySnapshot) -> u64 {
        let layout_ok =
            snap.gauge_value(BUCKET_LAYOUT_GAUGE) == Some(crate::metrics::bucket_layout() as i64);
        for c in &snap.counters {
            self.counter(&c.name, &c.help).add(c.value);
        }
        for g in &snap.gauges {
            if g.name != BUCKET_LAYOUT_GAUGE {
                self.gauge(&g.name, &g.help).add(g.value);
            }
        }
        if layout_ok {
            for h in &snap.histograms {
                self.histogram(&h.name, &h.help).merge_from(&h.snapshot);
            }
            0
        } else {
            snap.histograms.len() as u64
        }
    }

    /// Renders the Prometheus text exposition format (v0.0.4): `# HELP`
    /// and `# TYPE` per family, one sample line per counter/gauge, and
    /// the `_bucket`/`_sum`/`_count` triplet per histogram.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, entry) in entries.iter() {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# HELP {family} {}", entry.help);
                let _ = writeln!(out, "# TYPE {family} {}", entry.metric.kind());
                last_family = family.to_string();
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (le, cum) in snap.cumulative_buckets() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot: three sorted arrays (`counters`,
    /// `gauges`, `histograms`), histograms with count/sum/max and
    /// estimated p50/p95/p99/p999 (`null` while empty). Metric names are
    /// JSON-escaped (inline-labeled names carry `"` characters).
    /// Hand-written, no serde; [`parse_json_values`] /
    /// [`try_parse_json_values`] are the matching hand parsers.
    pub fn snapshot_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let (mut counters, mut gauges, mut histograms) =
            (String::new(), String::new(), String::new());
        for (name, entry) in entries.iter() {
            let name = json_escape(name);
            match &entry.metric {
                Metric::Counter(c) => {
                    append_item(
                        &mut counters,
                        format!("{{\"name\": \"{name}\", \"value\": {}}}", c.get()),
                    );
                }
                Metric::Gauge(g) => {
                    append_item(
                        &mut gauges,
                        format!("{{\"name\": \"{name}\", \"value\": {}}}", g.get()),
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let q = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
                    append_item(
                        &mut histograms,
                        format!(
                            "{{\"name\": \"{name}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}}}",
                            snap.count,
                            snap.sum,
                            q((snap.count > 0).then_some(snap.max)),
                            q(snap.quantile(0.50)),
                            q(snap.quantile(0.95)),
                            q(snap.quantile(0.99)),
                            q(snap.quantile(0.999)),
                        ),
                    );
                }
            }
        }
        format!(
            "{{\n  \"counters\": [\n{counters}\n  ],\n  \"gauges\": [\n{gauges}\n  ],\n  \"histograms\": [\n{histograms}\n  ]\n}}\n"
        )
    }
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name (may carry inline labels).
    pub name: String,
    /// Help text as registered.
    pub help: String,
    /// Counter total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name (may carry inline labels).
    pub name: String,
    /// Help text as registered.
    pub help: String,
    /// Gauge level at snapshot time.
    pub value: i64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name (may carry inline labels).
    pub name: String,
    /// Help text as registered.
    pub help: String,
    /// Full bucket snapshot — the mergeable representation.
    pub snapshot: HistogramSnapshot,
}

/// A structured point-in-time copy of a whole [`Registry`], in name
/// order per kind. Built by [`Registry::snapshot`], shipped over the
/// wire by the stats-scrape frames, folded back by
/// [`Registry::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter samples, name-sorted.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, name-sorted.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, name-sorted.
    pub histograms: Vec<HistogramSample>,
}

impl RegistrySnapshot {
    /// Total number of samples across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot carries no samples at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counter named `name`, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge named `name`, if present.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.snapshot)
    }
}

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn append_item(list: &mut String, item: String) {
    if !list.is_empty() {
        list.push_str(",\n");
    }
    list.push_str("    ");
    list.push_str(&item);
}

/// Why [`try_parse_json_values`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The document ended inside an object or string literal — the
    /// classic truncated-snapshot-line failure a crashed writer leaves
    /// behind.
    Truncated {
        /// Byte offset of the unterminated object/string opener.
        offset: usize,
    },
    /// A field carried a bare token that is neither a number, `null`,
    /// `true`/`false`, nor a string.
    MalformedValue {
        /// The `"name"` of the enclosing object, if one was seen.
        name: String,
        /// The field key.
        field: String,
        /// The offending raw token.
        value: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { offset } => {
                write!(
                    f,
                    "truncated JSON: unterminated object/string at byte {offset}"
                )
            }
            ParseError::MalformedValue { name, field, value } => {
                write!(f, "malformed value for `{name}.{field}`: `{value}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Hand parser for the [`Registry::snapshot_json`] format (and any flat
/// JSON of objects with string `"name"`s and numeric/null fields):
/// returns `(name, field, value)` triples in document order. `null` and
/// string-valued fields are skipped. Used by tests and tooling to
/// round-trip the snapshot without serde.
///
/// This is the *lenient* entry point: malformed fields are dropped and
/// a truncated document yields whatever parsed cleanly before the cut.
/// Use [`try_parse_json_values`] when corruption must surface as an
/// error instead of silently missing data.
pub fn parse_json_values(json: &str) -> Vec<(String, String, f64)> {
    scan_json_values(json, false).expect("lenient scan never errors")
}

/// Strict variant of [`parse_json_values`]: returns
/// [`ParseError::Truncated`] when the document ends mid-object or
/// mid-string (e.g. a snapshot line cut by a crashed writer) and
/// [`ParseError::MalformedValue`] for an unparsable field token.
pub fn try_parse_json_values(json: &str) -> Result<Vec<(String, String, f64)>, ParseError> {
    scan_json_values(json, true)
}

/// Quote-aware scan shared by the lenient and strict parsers. Collects
/// every *innermost* `{...}` object (the metric items; enclosing
/// containers are skipped because they still contain brace characters
/// after their children are excised — detected via `child_spans`).
fn scan_json_values(json: &str, strict: bool) -> Result<Vec<(String, String, f64)>, ParseError> {
    let mut out = Vec::new();
    let bytes = json.as_bytes();
    let mut open_stack: Vec<(usize, bool)> = Vec::new(); // (offset, saw_child)
    let mut in_string = false;
    let mut escaped = false;
    let mut string_start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else {
            match b {
                b'"' => {
                    in_string = true;
                    string_start = i;
                }
                b'{' => {
                    if let Some(top) = open_stack.last_mut() {
                        top.1 = true; // the enclosing object has children
                    }
                    open_stack.push((i, false));
                }
                b'}' => {
                    if let Some((start, saw_child)) = open_stack.pop() {
                        if !saw_child {
                            parse_flat_object(&json[start + 1..i], strict, &mut out)?;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    if strict {
        if in_string {
            return Err(ParseError::Truncated {
                offset: string_start,
            });
        }
        if let Some(&(offset, _)) = open_stack.first() {
            return Err(ParseError::Truncated { offset });
        }
    }
    Ok(out)
}

/// Parses one brace-free object body: fields split on unquoted commas,
/// key/value on the first unquoted colon.
fn parse_flat_object(
    obj: &str,
    strict: bool,
    out: &mut Vec<(String, String, f64)>,
) -> Result<(), ParseError> {
    let mut name: Option<String> = None;
    let mut fields: Vec<(String, f64)> = Vec::new();
    for field in split_unquoted(obj, b',') {
        let mut kv = split_unquoted(field, b':');
        let (Some(key), Some(value)) = (kv.next(), kv.next()) else {
            continue;
        };
        let key = unquote(key.trim());
        let value = value.trim();
        if key == "name" {
            name = Some(unquote(value));
        } else if value.starts_with('"') {
            // String-valued field: not a metric sample; skipped.
        } else if value.starts_with('[') || value.starts_with(']') {
            // Structural array tokens (an objectless container, e.g. the
            // top level of an empty snapshot): not samples; skipped.
        } else if value == "null" || value == "true" || value == "false" {
            // Defined non-numeric tokens are skipped by contract.
        } else if let Ok(v) = value.parse::<f64>() {
            fields.push((key, v));
        } else if strict {
            return Err(ParseError::MalformedValue {
                name: name.clone().unwrap_or_default(),
                field: key,
                value: value.to_string(),
            });
        }
    }
    if let Some(name) = name {
        for (field, v) in fields {
            out.push((name.clone(), field, v));
        }
    }
    Ok(())
}

/// Splits `s` on `delim` occurring outside string literals.
fn split_unquoted(s: &str, delim: u8) -> impl Iterator<Item = &str> {
    let bytes = s.as_bytes();
    let mut pieces = Vec::new();
    let (mut start, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
        } else if b == delim {
            pieces.push(&s[start..i]);
            start = i + 1;
        }
    }
    pieces.push(&s[start..]);
    pieces.into_iter()
}

/// Strips one layer of quotes and undoes [`json_escape`].
fn unquote(s: &str) -> String {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s);
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&code, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("alpha_total", "first").add(3);
        r.gauge("beta", "second").set(-7);
        let h = r.histogram("gamma_ns", "third");
        h.record(5);
        h.record(100);
        r
    }

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.names(), vec!["x_total".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP alpha_total first"));
        assert!(text.contains("# TYPE alpha_total counter"));
        assert!(text.contains("alpha_total 3"));
        assert!(text.contains("# TYPE beta gauge"));
        assert!(text.contains("beta -7"));
        assert!(text.contains("# TYPE gamma_ns histogram"));
        assert!(text.contains("gamma_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gamma_ns_sum 105"));
        assert!(text.contains("gamma_ns_count 2"));
        // Cumulative buckets never decrease and end at the count.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("gamma_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        // Every line is `# ...` or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn labeled_names_share_one_family_header() {
        let r = Registry::new();
        r.gauge("disk_depth{disk=\"0\"}", "queue depth").set(4);
        r.gauge("disk_depth{disk=\"1\"}", "queue depth").set(9);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE disk_depth gauge").count(), 1);
        assert!(text.contains("disk_depth{disk=\"0\"} 4"));
        assert!(text.contains("disk_depth{disk=\"1\"} 9"));
    }

    #[test]
    fn json_snapshot_round_trips_through_hand_parsing() {
        let r = sample_registry();
        let json = r.snapshot_json();
        let values = parse_json_values(&json);
        let get = |name: &str, field: &str| {
            values
                .iter()
                .find(|(n, f, _)| n == name && f == field)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(get("alpha_total", "value"), Some(3.0));
        assert_eq!(get("beta", "value"), Some(-7.0));
        assert_eq!(get("gamma_ns", "count"), Some(2.0));
        assert_eq!(get("gamma_ns", "sum"), Some(105.0));
        assert_eq!(get("gamma_ns", "max"), Some(100.0));
        assert_eq!(get("gamma_ns", "p50"), Some(5.0), "exact sub-16 bucket");
        assert_eq!(get("gamma_ns", "p99"), Some(100.0));
        assert_eq!(get("gamma_ns", "p999"), Some(100.0));
    }

    #[test]
    fn empty_registry_snapshot_is_valid_and_parses_to_nothing() {
        let r = Registry::new();
        let json = r.snapshot_json();
        assert!(json.contains("\"counters\": ["));
        assert!(json.contains("\"gauges\": ["));
        assert!(json.contains("\"histograms\": ["));
        assert!(parse_json_values(&json).is_empty());
        assert_eq!(try_parse_json_values(&json), Ok(Vec::new()));
    }

    #[test]
    fn labeled_names_survive_the_json_round_trip() {
        // Inline-labeled names carry `"` and `{`/`}` characters: the
        // snapshot must escape them and the parser must unescape,
        // without mistaking the embedded braces for object delimiters.
        let r = Registry::new();
        r.gauge("disk_load{disk=\"3\"}", "labeled").set(41);
        r.gauge("disk_load{disk=\"7\"}", "labeled").set(59);
        r.counter("weird\\name\ttabbed", "escapes").add(5);
        let json = r.snapshot_json();
        let values = try_parse_json_values(&json).expect("escaped snapshot parses");
        let get = |name: &str| {
            values
                .iter()
                .find(|(n, f, _)| n == name && f == "value")
                .map(|(_, _, v)| *v)
        };
        assert_eq!(get("disk_load{disk=\"3\"}"), Some(41.0));
        assert_eq!(get("disk_load{disk=\"7\"}"), Some(59.0));
        assert_eq!(get("weird\\name\ttabbed"), Some(5.0));
        assert_eq!(values.len(), 3, "no phantom objects from label braces");
    }

    #[test]
    fn truncated_snapshot_line_is_a_parse_error_not_a_panic() {
        let json = sample_registry().snapshot_json();
        // Cut the document mid-way, as a crashed writer would.
        for cut in [json.len() / 3, json.len() / 2, json.len() - 4] {
            let truncated = &json[..cut];
            // Lenient mode never panics; strict mode reports truncation.
            let _ = parse_json_values(truncated);
            assert!(
                matches!(
                    try_parse_json_values(truncated),
                    Err(ParseError::Truncated { .. })
                ),
                "cut at {cut} should be detected"
            );
        }
        // The full document still parses strictly.
        assert!(try_parse_json_values(&json).is_ok());
    }

    #[test]
    fn malformed_field_values_error_strictly_and_skip_leniently() {
        let json = r#"{"items": [{"name": "a", "value": 3}, {"name": "b", "value": bogus}]}"#;
        let lenient = parse_json_values(json);
        assert_eq!(
            lenient,
            vec![("a".to_string(), "value".to_string(), 3.0)],
            "lenient mode drops the bad field"
        );
        assert_eq!(
            try_parse_json_values(json),
            Err(ParseError::MalformedValue {
                name: "b".to_string(),
                field: "value".to_string(),
                value: "bogus".to_string(),
            })
        );
    }

    #[test]
    fn structured_snapshot_round_trips_through_absorb() {
        let r = sample_registry();
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.counter_value("alpha_total"), Some(3));
        assert_eq!(snap.gauge_value("beta"), Some(-7));
        assert_eq!(snap.histogram("gamma_ns").unwrap().count, 2);
        assert_eq!(snap.counters[0].help, "first");

        // Absorbing into an empty registry reproduces it exactly.
        let fleet = Registry::new();
        fleet.absorb(&snap);
        assert_eq!(fleet.snapshot(), snap);
        assert_eq!(fleet.render_prometheus(), r.render_prometheus());

        // Absorbing a second shard's snapshot sums counters/gauges and
        // merges histogram buckets.
        let peer = sample_registry();
        peer.counter("alpha_total", "first").add(10);
        fleet.absorb(&peer.snapshot());
        assert_eq!(fleet.snapshot().counter_value("alpha_total"), Some(16));
        assert_eq!(fleet.snapshot().gauge_value("beta"), Some(-14));
        let merged = fleet.snapshot();
        let h = merged.histogram("gamma_ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 210);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counter_value("missing"), None);
        assert_eq!(snap.gauge_value("missing"), None);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn read_api_reports_current_values_by_name() {
        let r = sample_registry();
        assert_eq!(r.value("alpha_total"), Some(MetricValue::Counter(3)));
        assert_eq!(r.value("beta"), Some(MetricValue::Gauge(-7)));
        assert!(matches!(
            r.value("gamma_ns"),
            Some(MetricValue::Histogram(snap)) if snap.count == 2 && snap.sum == 105
        ));
        assert_eq!(r.value("missing"), None);
    }

    #[test]
    fn gauges_with_prefix_returns_labeled_series_in_order() {
        let r = Registry::new();
        r.gauge("disk_load{disk=\"0\"}", "load").set(10);
        r.gauge("disk_load{disk=\"1\"}", "load").set(20);
        r.gauge("disk_queue{disk=\"0\"}", "queue").set(99);
        r.counter("disk_load_total", "not a gauge").inc();
        let series = r.gauges_with_prefix("disk_load{disk=");
        assert_eq!(
            series,
            vec![
                ("disk_load{disk=\"0\"}".to_string(), 10),
                ("disk_load{disk=\"1\"}".to_string(), 20),
            ]
        );
    }

    #[test]
    fn absorb_checked_merges_only_matching_bucket_layouts() {
        let shard = Registry::new();
        shard.mark_bucket_layout();
        shard.counter("reqs_total", "requests").add(3);
        shard.histogram("lat_ns", "latency").record(100);
        let snap = shard.snapshot();

        let fleet = Registry::new();
        assert_eq!(fleet.absorb_checked(&snap), 0, "matching layout merges");
        assert_eq!(
            fleet
                .value("lat_ns")
                .map(|v| matches!(v, MetricValue::Histogram(h) if h.count == 1)),
            Some(true)
        );
        // The marker gauge is excluded from the fold: fleet totals
        // must not sum fingerprints across shards.
        assert_eq!(fleet.value(crate::registry::BUCKET_LAYOUT_GAUGE), None);

        // A snapshot with a wrong (or missing) marker skips every
        // histogram series but still folds scalars.
        let mut stale = snap.clone();
        for g in &mut stale.gauges {
            if g.name == BUCKET_LAYOUT_GAUGE {
                g.value ^= 1;
            }
        }
        let fleet2 = Registry::new();
        assert_eq!(fleet2.absorb_checked(&stale), 1);
        assert_eq!(fleet2.value("lat_ns"), None);
        assert_eq!(fleet2.counter("reqs_total", "requests").get(), 3);

        let mut unmarked = snap.clone();
        unmarked.gauges.retain(|g| g.name != BUCKET_LAYOUT_GAUGE);
        assert_eq!(Registry::new().absorb_checked(&unmarked), 1);
    }

    #[test]
    fn empty_histogram_snapshots_as_nulls() {
        let r = Registry::new();
        r.histogram("empty_ns", "never recorded");
        let json = r.snapshot_json();
        assert!(json.contains("\"p50\": null"));
        assert!(json.contains("\"p999\": null"));
        assert!(json.contains("\"max\": null"));
        // Nulls are skipped by the parser, count survives.
        let values = parse_json_values(&json);
        assert!(values
            .iter()
            .any(|(n, f, v)| n == "empty_ns" && f == "count" && *v == 0.0));
        assert!(!values.iter().any(|(n, f, _)| n == "empty_ns" && f == "p50"));
    }
}
