//! Lock-free metric primitives: counters, gauges, and log-linear
//! histograms.
//!
//! All recording paths are single relaxed atomic operations (a handful
//! for histograms) — safe to call from any thread, never blocking, and
//! cheap enough for hot paths. Handles are `Arc`-backed: cloning a
//! [`Counter`] clones the handle, not the value, so a subsystem can
//! cache its handles at construction and the registry still sees every
//! increment.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution exponent: each power-of-two octave is split
/// into `2^SUB_BITS` equal-width linear sub-buckets (HdrHistogram's
/// scheme), bounding quantile overshoot at `2^-SUB_BITS` ≈ 6.25%
/// relative error instead of the 2× a pure log2 histogram gives.
pub const SUB_BITS: usize = 4;

/// Linear sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Exponent of the histogram range's upper boundary: values at or
/// beyond `2^MAX_EXP` clamp into the top (unbounded) bucket.
/// `2^39` ns ≈ 9.2 minutes — far beyond any latency this stack records.
const MAX_EXP: usize = 39;

/// Number of histogram buckets: values `0..SUB_BUCKETS` get exact
/// unit-width buckets, each octave `[2^e, 2^(e+1))` for
/// `e in SUB_BITS..MAX_EXP` gets `SUB_BUCKETS` linear sub-buckets, and
/// one top bucket catches everything at or beyond `2^MAX_EXP`.
pub const HISTOGRAM_BUCKETS: usize = SUB_BUCKETS + (MAX_EXP - SUB_BITS) * SUB_BUCKETS + 1;

/// A fingerprint of the histogram bucket grid: every parameter that
/// determines bucket boundaries, packed into one value. Two processes
/// with equal fingerprints bucket every sample identically, so their
/// histograms may be merged bucket-wise; unequal fingerprints mean a
/// merge would silently misattribute counts. Shards publish this as
/// the `obs_bucket_layout` gauge and the fleet aggregator refuses to
/// merge histogram series from a shard whose fingerprint differs
/// (see `Registry::absorb_checked`).
pub fn bucket_layout() -> u64 {
    ((SUB_BITS as u64) << 32) | ((MAX_EXP as u64) << 16) | HISTOGRAM_BUCKETS as u64
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one and returns the *previous* value — the idiom behind
    /// 1-in-N sampling (`if c.inc_and_get() & MASK == 0 { ... }`).
    #[inline]
    pub fn inc_and_get(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed)
    }

    /// [`Counter::inc_and_get`] without the atomic read-modify-write: a
    /// plain relaxed load + store pair, several times cheaper than the
    /// locked `fetch_add` on x86. Concurrent *writers* may lose
    /// increments, so this is for statistical hot-path counters with an
    /// effectively single writer (e.g. per-engine lookup counts);
    /// readers are unaffected. Exact counters use [`Counter::inc`].
    #[inline]
    pub fn inc_weak(&self) -> u64 {
        let prev = self.value.load(Ordering::Relaxed);
        self.value.store(prev.wrapping_add(1), Ordering::Relaxed);
        prev
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket, log-linear histogram of `u64` samples
/// (HdrHistogram-style: log2 octaves, each split into
/// [`SUB_BUCKETS`] equal-width sub-buckets).
///
/// Recording is four relaxed atomic RMWs (bucket, count, sum, max) —
/// no locks, no allocation. Quantiles are estimated from the bucket
/// upper bounds and overshoot by at most `2^-SUB_BITS` ≈ 6.25% of the
/// true value — fine enough to certify a sub-100 µs tail, where a pure
/// log2 histogram could only answer "somewhere below 131072 ns". The
/// top bucket reports the exact recorded maximum, so outliers beyond
/// the bucket range are clamped but never lost.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// The bucket a value lands in. Values below [`SUB_BUCKETS`] index
/// exact unit buckets; larger values index octave `e = floor(log2 v)`
/// at the sub-bucket given by the [`SUB_BITS`] bits right below the
/// leading one; values at or past `2^MAX_EXP` clamp to the top bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let e = (63 - v.leading_zeros()) as usize;
    if e >= MAX_EXP {
        return HISTOGRAM_BUCKETS - 1;
    }
    let sub = ((v >> (e - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + (e - SUB_BITS) * SUB_BUCKETS + sub
}

/// Inclusive upper bound of bucket `i` (the top bucket is unbounded).
fn bucket_upper_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        let j = i - SUB_BUCKETS;
        let e = SUB_BITS + j / SUB_BUCKETS;
        let sub = (j % SUB_BUCKETS) as u64;
        let width = 1u64 << (e - SUB_BITS);
        (1u64 << e) + (sub + 1) * width - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Merges a remote snapshot into this histogram bucket-wise: every
    /// bucket count, the total count, and the sum are added; the max is
    /// raised if the snapshot's is larger. This is the federation
    /// primitive — merging buckets keeps quantile error bounded by one
    /// sub-bucket width, whereas averaging per-shard *percentiles*
    /// (the classic fleet-dashboard mistake) has no error bound at all.
    pub fn merge_from(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.inner.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(snap.count, Ordering::Relaxed);
        self.inner.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.inner.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A point-in-time copy of the whole histogram (the unit quantile
    /// math and renderers work over, so every field is from one pass).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed)),
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
        }
    }

    /// Estimated p50; `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.snapshot().quantile(0.50)
    }

    /// Estimated p95; `None` when empty.
    pub fn p95(&self) -> Option<u64> {
        self.snapshot().quantile(0.95)
    }

    /// Estimated p99; `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.snapshot().quantile(0.99)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        let snap = self.snapshot();
        (snap.count > 0).then_some(snap.max)
    }
}

/// An owned, consistent copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (non-cumulative).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Largest sample (0 when empty — check `count`).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket containing the rank-`ceil(q·count)` sample. The top
    /// bucket reports the recorded maximum (its bound is infinite).
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i >= HISTOGRAM_BUCKETS - 1 {
                    self.max
                } else {
                    bucket_upper_bound(i).min(self.max)
                });
            }
        }
        Some(self.max) // unreachable unless counters raced; stay total
    }

    /// Mean sample; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges `other` into this snapshot bucket-wise (the owned-value
    /// twin of [`Histogram::merge_from`], for aggregators that fold
    /// many shard snapshots before ever touching a live histogram).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded in buckets whose *upper bound*
    /// exceeds `threshold` — an upper estimate of "samples slower than
    /// threshold", overcounting by at most the one bucket straddling
    /// it. The SLO latency burn-rate feeds on this.
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| bucket_upper_bound(i) > threshold)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Cumulative `(upper_bound, count)` pairs up to and including the
    /// highest non-empty bucket — the Prometheus exposition shape (the
    /// caller appends the `+Inf` bucket with the total count).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&n| n > 0) {
            Some(i) => i.min(HISTOGRAM_BUCKETS - 2),
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += self.buckets[i];
            out.push((bucket_upper_bound(i), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.inc_and_get(), 5);
        assert_eq!(c.get(), 6);
        assert_eq!(c.inc_weak(), 6, "weak increment still returns previous");
        assert_eq!(c.get(), 7);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 8, "clones share the cell");

        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // The first octave's sub-buckets are still unit width, so
        // exactness actually extends to 2·SUB_BUCKETS − 1.
        for v in SUB_BUCKETS as u64..(2 * SUB_BUCKETS) as u64 {
            assert_eq!(bucket_upper_bound(bucket_of(v)), v);
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Every finite bucket's upper bound maps back to that bucket,
        // and the next value starts the next bucket — no gaps, no
        // overlaps, strictly monotone bounds.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_of(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_of(ub + 1), i + 1, "first value past bucket {i}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < ub);
            }
        }
        // Range cap: the last finite bucket ends at 2^39 − 1.
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 2), (1 << 39) - 1);
        assert_eq!(bucket_of(1 << 39), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantile_overshoot_is_bounded_by_sub_bucket_width() {
        // Log-linear contract: the reported bound never undershoots and
        // overshoots by less than one sub-bucket (1/16 of the value).
        let mut v: u64 = 1;
        while v < (1 << 39) {
            for sample in [v, v + v / 3, v + v / 2] {
                let ub = bucket_upper_bound(bucket_of(sample));
                assert!(ub >= sample, "undershoot at {sample}");
                assert!(
                    ub - sample <= sample / SUB_BUCKETS as u64 + 1,
                    "overshoot {ub} at {sample}"
                );
            }
            v = v.wrapping_mul(5).wrapping_add(13) % (1 << 39) + v; // irregular sweep
        }
    }

    #[test]
    fn sub_bucket_resolution_certifies_a_sub_100us_tail() {
        // A pure log2 histogram reports any 66..131 µs tail as
        // "131071 ns"; log-linear sub-buckets must keep a 95 µs tail
        // visibly below the 100 µs budget.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(95_000);
        }
        let p999 = h.snapshot().quantile(0.999).unwrap();
        assert!((95_000..100_000).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.snapshot().mean(), None);
        assert!(h.snapshot().cumulative_buckets().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(37);
        assert_eq!(h.p50(), Some(37));
        assert_eq!(h.p95(), Some(37));
        assert_eq!(h.p99(), Some(37));
        assert_eq!(h.max(), Some(37));
        assert_eq!(h.snapshot().mean(), Some(37.0));
    }

    #[test]
    fn values_beyond_top_bucket_clamp_to_max() {
        let h = Histogram::new();
        // Both land in the top bucket; quantiles there report the true
        // recorded max, not a bucket bound.
        h.record(1 << 39);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(h.p50(), Some(u64::MAX));
        assert_eq!(h.p99(), Some(u64::MAX));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Log-linear buckets: answers are sub-bucket upper bounds, so
        // p50 of 1..=1000 (true 500) reports 511 (sub-bucket
        // [496, 511]) and p95 (true 950) reports 959 (sub-bucket
        // [928, 959]) — within 1/16, not within 2×.
        assert_eq!(h.p50(), Some(511));
        assert_eq!(h.p95(), Some(959));
        assert_eq!(h.max(), Some(1000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        // Cumulative buckets end at the last non-empty one and sum up.
        let cum = snap.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 1000);
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
    }

    #[test]
    fn zero_samples_count_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().buckets[0], 2);
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn merge_from_adds_bucket_wise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 90, 4000] {
            a.record(v);
        }
        for v in [3u64, 512, 1 << 20] {
            b.record(v);
        }
        a.merge_from(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 3 + 90 + 4000 + 3 + 512 + (1 << 20));
        assert_eq!(snap.max, 1 << 20);
        assert_eq!(snap.buckets[bucket_of(3)], 2, "shared bucket sums");
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
        // Merging an empty snapshot is a no-op.
        a.merge_from(&Histogram::new().snapshot());
        assert_eq!(a.snapshot(), snap);
    }

    #[test]
    fn snapshot_merge_matches_live_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..200u64 {
            a.record(v * 7);
            b.record(v * 13 + 1);
        }
        let mut folded = a.snapshot();
        folded.merge(&b.snapshot());
        a.merge_from(&b.snapshot());
        assert_eq!(folded, a.snapshot());
    }

    #[test]
    fn count_over_bounds_the_slow_sample_count() {
        let h = Histogram::new();
        for v in [10u64, 50_000, 99_000, 150_000, 200_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count_over(1 << 40), 0);
        assert_eq!(snap.count_over(0), 5);
        // True count over 100 µs is 2; the bucket straddling the
        // threshold ([98304, 102399], holding the 99 µs sample) may
        // overcount by its own occupancy — an upper estimate, never an
        // undercount.
        assert_eq!(snap.count_over(100_000), 3);
        // A threshold on an exact bucket boundary is exact.
        assert_eq!(snap.count_over(102_399), 2);
    }

    proptest::proptest! {
        /// Satellite: merge-then-percentile equals the percentile of the
        /// concatenated sample stream, within one sub-bucket width —
        /// the soundness claim behind bucket-wise federation.
        #[test]
        fn merged_quantiles_match_concatenated_samples(
            xs in proptest::collection::vec(0u64..1_000_000, 1..200),
            ys in proptest::collection::vec(0u64..1_000_000, 1..200),
            qs in proptest::collection::vec(0.01f64..1.0, 1..6),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            let all = Histogram::new();
            for &v in &xs { a.record(v); all.record(v); }
            for &v in &ys { b.record(v); all.record(v); }
            let merged = {
                let m = Histogram::new();
                m.merge_from(&a.snapshot());
                m.merge_from(&b.snapshot());
                m.snapshot()
            };
            let reference = all.snapshot();
            proptest::prop_assert_eq!(&merged, &reference,
                "bucket-wise merge must equal recording the concatenation");
            for &q in &qs {
                let mq = merged.quantile(q);
                let rq = reference.quantile(q);
                proptest::prop_assert_eq!(mq, rq);
                // And against the exact sample quantile: bounded by one
                // sub-bucket (1/16 relative) overshoot, never undershoot.
                let mut sorted: Vec<u64> =
                    xs.iter().chain(ys.iter()).copied().collect();
                sorted.sort_unstable();
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let est = mq.unwrap();
                proptest::prop_assert!(est >= exact);
                proptest::prop_assert!(
                    est - exact <= exact / SUB_BUCKETS as u64 + 1,
                    "estimate {} vs exact {} at q={}", est, exact, q
                );
            }
        }
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        // Satellite: hammered from the crossbeam-shim scoped threads,
        // every sample must land — relaxed atomics lose nothing.
        let h = Histogram::new();
        let c = Counter::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        crossbeam::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                        c.inc();
                    }
                });
            }
        })
        .expect("no panics");
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(c.get(), THREADS * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        let total: u64 = (0..THREADS * PER_THREAD).sum();
        assert_eq!(snap.sum, total);
        assert_eq!(snap.max, THREADS * PER_THREAD - 1);
    }
}
