//! Per-object seed derivation.
//!
//! The paper gives every CM object `m` its own seed `s_m` and stores only
//! that seed (plus the scaling log) — not per-block locations. A server
//! with thousands of objects needs the `s_m` to be mutually decorrelated
//! even when object identifiers are small consecutive integers, so seeds
//! are derived by hashing `(catalog_seed, object_id)` through an
//! avalanche function rather than used raw.

use crate::splitmix;

/// Derives the placement seed `s_m` for object `object_id` under a
/// server-wide `catalog_seed`.
///
/// Deterministic: the same pair always yields the same seed, which is the
/// property that lets a restarted server relocate every block from
/// metadata alone.
///
/// ```
/// use scaddar_prng::derive_object_seed;
/// let a = derive_object_seed(42, 0);
/// let b = derive_object_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_object_seed(42, 0));
/// ```
pub fn derive_object_seed(catalog_seed: u64, object_id: u64) -> u64 {
    // Two dependent scramble rounds: first fold the object id into the
    // catalog seed, then avalanche the combination. A single xor would
    // leave (catalog, id) pairs with colliding xors correlated.
    let folded =
        splitmix::scramble_seed(catalog_seed) ^ object_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix::scramble_seed(folded)
}

/// A reusable deriver bound to one catalog seed.
///
/// Convenience wrapper so call sites carrying a catalog seed around don't
/// have to thread two integers everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedDeriver {
    catalog_seed: u64,
}

impl SeedDeriver {
    /// Creates a deriver for a server catalog.
    pub fn new(catalog_seed: u64) -> Self {
        SeedDeriver { catalog_seed }
    }

    /// The catalog seed this deriver is bound to.
    pub fn catalog_seed(&self) -> u64 {
        self.catalog_seed
    }

    /// Seed for a specific object.
    pub fn object_seed(&self, object_id: u64) -> u64 {
        derive_object_seed(self.catalog_seed, object_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn consecutive_object_ids_do_not_collide() {
        let d = SeedDeriver::new(7);
        let seeds: HashSet<u64> = (0..10_000).map(|id| d.object_seed(id)).collect();
        assert_eq!(seeds.len(), 10_000, "seed collisions among 10k objects");
    }

    #[test]
    fn different_catalogs_diverge() {
        let a = SeedDeriver::new(1);
        let b = SeedDeriver::new(2);
        let same = (0..1000)
            .filter(|&id| a.object_seed(id) == b.object_seed(id))
            .count();
        assert_eq!(same, 0);
    }

    proptest! {
        #[test]
        fn deterministic(catalog in any::<u64>(), id in any::<u64>()) {
            prop_assert_eq!(
                derive_object_seed(catalog, id),
                derive_object_seed(catalog, id)
            );
        }
    }
}
