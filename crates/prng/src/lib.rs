//! Seeded, reproducible pseudo-random number generators — the substrate of
//! *pseudo-random placement* (Definition 3.1 of the SCADDAR paper).
//!
//! A continuous media (CM) object `m` is split into blocks; the disk of
//! block `i` is derived from `X_0^{(i)}`, the `i`-th output of a seeded
//! generator `p_r(s_m)`. Two properties are non-negotiable:
//!
//! 1. **Reproducibility** — the same seed must regenerate the exact same
//!    sequence forever, across process restarts and machines. This is what
//!    lets SCADDAR avoid a block directory: the placement *is* the
//!    generator. Every generator in this crate is a pure, documented
//!    integer recurrence with fixed constants; none depends on platform
//!    randomness, hashing order, or library version.
//! 2. **`b`-bit range** — the paper draws `X_0` from `0..=R` with
//!    `R = 2^b - 1` (Definition 3.2). The bit width `b` (32 or 64 in the
//!    paper) caps how many scaling operations preserve fairness (§4.3), so
//!    it is an explicit, first-class parameter here ([`Bits`]).
//!
//! # Generators
//!
//! | Type | Recurrence | Random access to the `i`-th value |
//! |------|-----------|------------------------------------|
//! | [`SplitMix64`] | counter + avalanche | O(1) |
//! | [`Lcg64`] | 64-bit LCG (MMIX constants) | O(log i) jump-ahead |
//! | [`XorShift64Star`] | xorshift* | O(i) |
//! | [`Pcg64`] | PCG-XSL-RR 128/64 | O(log i) jump-ahead |
//! | [`Philox4x32`] | 10-round counter-block cipher | O(1) |
//!
//! For block placement the crate's workhorse is [`BlockRandoms`], which
//! wraps a generator choice ([`RngKind`]), a seed, and a bit width, and
//! answers "what is `X_0` for block `i`?" using the cheapest mechanism the
//! generator supports.
//!
//! # Quick example
//!
//! ```
//! use scaddar_prng::{BlockRandoms, Bits, RngKind};
//!
//! let seq = BlockRandoms::new(RngKind::SplitMix64, 0xC0FFEE, Bits::B32);
//! let x0 = seq.value_at(0);
//! let x7 = seq.value_at(7);
//! assert!(x0 <= Bits::B32.max_value());
//! // Reproducible: a second instance yields the same values.
//! let again = BlockRandoms::new(RngKind::SplitMix64, 0xC0FFEE, Bits::B32);
//! assert_eq!(again.value_at(7), x7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod lcg;
mod pcg;
mod philox;
mod seed;
mod seq;
mod splitmix;
mod traits;
mod xorshift;

pub use bits::Bits;
pub use lcg::Lcg64;
pub use pcg::Pcg64;
pub use philox::Philox4x32;
pub use seed::{derive_object_seed, SeedDeriver};
pub use seq::{BlockRandoms, RngKind};
pub use splitmix::SplitMix64;
pub use traits::{IndexedRng, SeededRng};
pub use xorshift::XorShift64Star;

#[cfg(test)]
mod tests {
    use super::*;

    /// All generators must survive a round-trip through their seed: the
    /// whole point of pseudo-random placement is replayability.
    #[test]
    fn generators_are_deterministic() {
        fn check<R: SeededRng>() {
            let mut a = R::from_seed(42);
            let mut b = R::from_seed(42);
            for _ in 0..1000 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
        check::<SplitMix64>();
        check::<Lcg64>();
        check::<XorShift64Star>();
        check::<Pcg64>();
        check::<Philox4x32>();
    }

    #[test]
    fn different_seeds_give_different_streams() {
        fn check<R: SeededRng>() {
            let mut a = R::from_seed(1);
            let mut b = R::from_seed(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 4, "streams from different seeds look identical");
        }
        check::<SplitMix64>();
        check::<Lcg64>();
        check::<XorShift64Star>();
        check::<Pcg64>();
        check::<Philox4x32>();
    }
}
