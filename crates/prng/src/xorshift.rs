//! xorshift64*: Marsaglia's xorshift with a multiplicative finalizer.
//!
//! The xorshift state transition is **linear over GF(2)** — each bit of
//! the next state is an XOR of bits of the current state — so advancing
//! the stream by `n` steps is multiplication by the n-th power of a
//! 64×64 bit matrix. [`XorShift64Star::advance`] exploits this with
//! precomputed squarings `M^(2^k)`, giving O(log n) jump-ahead (at most
//! 64 matrix–vector products of 64 XORs each), which in turn makes
//! [`IndexedRng::value_at`] O(log i) instead of the O(i) walk this
//! generator historically forced on [`crate::BlockRandoms`].

use crate::splitmix;
use crate::traits::{IndexedRng, SeededRng};
use std::sync::OnceLock;

/// xorshift64* generator (Vigna's variant, multiplier 2685821657736338717).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

/// The linear part of one step (the output multiplier is *not* part of
/// the state recurrence, so the recurrence stays GF(2)-linear).
#[inline]
fn linear_step(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x
}

/// A 64×64 bit matrix over GF(2), stored as the images of the 64 basis
/// vectors: `m[b]` is `M · e_b`.
type BitMatrix = [u64; 64];

/// `M · v`: XOR of the columns selected by `v`'s set bits.
#[inline]
fn mat_vec(m: &BitMatrix, mut v: u64) -> u64 {
    let mut out = 0u64;
    while v != 0 {
        let b = v.trailing_zeros();
        out ^= m[b as usize];
        v &= v - 1;
    }
    out
}

/// `A · B` as composition: column `b` of the product is `A · (B · e_b)`.
fn mat_mul(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    let mut out = [0u64; 64];
    for (col, &bcol) in out.iter_mut().zip(b.iter()) {
        *col = mat_vec(a, bcol);
    }
    out
}

/// `M^(2^k)` for `k = 0..64`, where `M` is the one-step matrix. Built
/// once per process (~32 KiB) by repeated squaring.
fn step_matrix_powers() -> &'static [BitMatrix; 64] {
    static POWERS: OnceLock<Box<[BitMatrix; 64]>> = OnceLock::new();
    POWERS.get_or_init(|| {
        let mut powers = Box::new([[0u64; 64]; 64]);
        let mut m: BitMatrix = [0u64; 64];
        for (b, col) in m.iter_mut().enumerate() {
            *col = linear_step(1u64 << b);
        }
        powers[0] = m;
        for k in 1..64 {
            powers[k] = mat_mul(&powers[k - 1], &powers[k - 1]);
        }
        powers
    })
}

/// Below this distance, plain stepping beats the matrix products.
const MATRIX_JUMP_THRESHOLD: u64 = 1024;

impl SeededRng for XorShift64Star {
    /// The state must be nonzero (zero is a fixed point of xorshift), so
    /// the seed is scrambled and zero is remapped.
    fn from_seed(seed: u64) -> Self {
        let mut state = splitmix::scramble_seed(seed);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64Star { state }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// O(log n) for large `n` via GF(2) matrix powers; plain stepping
    /// below [`MATRIX_JUMP_THRESHOLD`], where it is cheaper.
    fn advance(&mut self, n: u64) {
        if n < MATRIX_JUMP_THRESHOLD {
            for _ in 0..n {
                self.next_u64();
            }
            return;
        }
        let powers = step_matrix_powers();
        let mut state = self.state;
        let mut remaining = n;
        while remaining != 0 {
            let k = remaining.trailing_zeros();
            state = mat_vec(&powers[k as usize], state);
            remaining &= remaining - 1;
        }
        self.state = state;
    }
}

impl IndexedRng for XorShift64Star {
    /// O(log `index`) by jumping the linear recurrence (see
    /// [`XorShift64Star::advance`]), then one step for the output.
    fn value_at(seed: u64, index: u64) -> u64 {
        let mut g = XorShift64Star::from_seed(seed);
        g.advance(index);
        g.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;

    #[test]
    fn state_never_zero() {
        // Directly probe the zero-state remap.
        let g = XorShift64Star::from_seed(0);
        assert_ne!(g.state, 0);
        // And confirm the stream does not get stuck for many seeds.
        for seed in 0..64 {
            let mut g = XorShift64Star::from_seed(seed);
            let a = g.next_u64();
            let b = g.next_u64();
            assert_ne!(a, b, "stream stuck for seed {seed}");
        }
    }

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<XorShift64Star>(1, 128);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<XorShift64Star>(8, 500);
    }

    #[test]
    fn matrix_jump_matches_stepping_above_threshold() {
        // Exercises the GF(2) path (n >= MATRIX_JUMP_THRESHOLD) against
        // the ground truth of plain stepping.
        for n in [
            MATRIX_JUMP_THRESHOLD,
            MATRIX_JUMP_THRESHOLD + 1,
            5_000,
            65_537,
            1_000_000,
        ] {
            let mut jumped = XorShift64Star::from_seed(42);
            jumped.advance(n);
            let mut stepped = XorShift64Star::from_seed(42);
            for _ in 0..n {
                stepped.next_u64();
            }
            assert_eq!(jumped.state, stepped.state, "divergence at n={n}");
        }
    }

    #[test]
    fn matrix_jump_composes() {
        // advance(a) then advance(b) == advance(a + b) across the
        // threshold boundary in both orders.
        let (a, b) = (700u64, 80_000u64);
        let mut split = XorShift64Star::from_seed(9);
        split.advance(a);
        split.advance(b);
        let mut whole = XorShift64Star::from_seed(9);
        whole.advance(a + b);
        assert_eq!(split, whole);
    }

    #[test]
    fn value_at_far_index_is_fast_and_consistent() {
        // A distant index must round-trip: value_at(i) equals stepping.
        // (With the O(i) fallback this test would take ~2^32 steps.)
        let far = 1u64 << 32;
        let v1 = XorShift64Star::value_at(3, far);
        let v2 = XorShift64Star::value_at(3, far);
        assert_eq!(v1, v2);
        // Cross-check against advance + next at a smaller-but-matrix
        // distance where stepping is still affordable.
        let n = 200_000u64;
        let mut stepped = XorShift64Star::from_seed(3);
        for _ in 0..n {
            stepped.next_u64();
        }
        assert_eq!(XorShift64Star::value_at(3, n), stepped.next_u64());
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<XorShift64Star>(3);
    }
}
