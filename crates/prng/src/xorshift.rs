//! xorshift64*: Marsaglia's xorshift with a multiplicative finalizer.
//!
//! Included as the "plain iterator" generator: it has no cheap jump-ahead,
//! so [`crate::BlockRandoms`] falls back to sequential stepping for it.
//! Having one such generator in the suite keeps the random-access fallback
//! path honest (it is exercised by the same contract tests as the O(1)
//! and O(log n) generators).

use crate::splitmix;
use crate::traits::{IndexedRng, SeededRng};

/// xorshift64* generator (Vigna's variant, multiplier 2685821657736338717).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl SeededRng for XorShift64Star {
    /// The state must be nonzero (zero is a fixed point of xorshift), so
    /// the seed is scrambled and zero is remapped.
    fn from_seed(seed: u64) -> Self {
        let mut state = splitmix::scramble_seed(seed);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64Star { state }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl IndexedRng for XorShift64Star {
    /// O(`index`): xorshift has no practical log-time jump, so this walks
    /// the stream. [`crate::BlockRandoms`] documents this cost.
    fn value_at(seed: u64, index: u64) -> u64 {
        let mut g = XorShift64Star::from_seed(seed);
        g.advance(index);
        g.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;

    #[test]
    fn state_never_zero() {
        // Directly probe the zero-state remap.
        let g = XorShift64Star::from_seed(0);
        assert_ne!(g.state, 0);
        // And confirm the stream does not get stuck for many seeds.
        for seed in 0..64 {
            let mut g = XorShift64Star::from_seed(seed);
            let a = g.next_u64();
            let b = g.next_u64();
            assert_ne!(a, b, "stream stuck for seed {seed}");
        }
    }

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<XorShift64Star>(1, 128);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<XorShift64Star>(8, 500);
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<XorShift64Star>(3);
    }
}
