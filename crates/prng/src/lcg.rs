//! A 64-bit linear congruential generator with O(log n) jump-ahead.
//!
//! `state' = a·state + c (mod 2^64)` with Knuth's MMIX multiplier. LCGs
//! are the textbook example of `p_r(s)` the paper assumes: cheap,
//! reproducible, and — crucially for placement — *jumpable*: the state
//! after `n` steps is `a^n·s + c·(a^{n-1} + … + 1)`, computable in
//! O(log n) by square-and-multiply. That makes locating an arbitrary
//! block's random number cheap even for generators that are not
//! counter-based.
//!
//! The raw low bits of an LCG are weak (the low bit alternates), so the
//! output is finalized with an avalanche mix. The *sequence structure*
//! (state recurrence) is still a pure LCG, so jump-ahead stays exact.

use crate::splitmix;
use crate::traits::{IndexedRng, SeededRng};

/// Knuth MMIX multiplier.
const A: u64 = 6_364_136_223_846_793_005;
/// Knuth MMIX increment.
const C: u64 = 1_442_695_040_888_963_407;

/// 64-bit LCG (MMIX constants) with mixed output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

/// Computes `(a^n mod 2^64, (a^{n-1} + ... + a + 1)·c mod 2^64)` by
/// square-and-multiply, so that `jump(s, n) = a^n·s + sum·c`.
///
/// Standard technique (Brown, "Random Number Generation with Arbitrary
/// Strides", 1994).
fn jump_coefficients(mut a: u64, mut c: u64, mut n: u64) -> (u64, u64) {
    let mut acc_mul: u64 = 1;
    let mut acc_add: u64 = 0;
    while n > 0 {
        if n & 1 == 1 {
            acc_mul = acc_mul.wrapping_mul(a);
            acc_add = acc_add.wrapping_mul(a).wrapping_add(c);
        }
        c = a.wrapping_add(1).wrapping_mul(c);
        a = a.wrapping_mul(a);
        n >>= 1;
    }
    (acc_mul, acc_add)
}

impl Lcg64 {
    fn step(&mut self) {
        self.state = A.wrapping_mul(self.state).wrapping_add(C);
    }
}

impl SeededRng for Lcg64 {
    /// The seed is passed through one avalanche round before use so that
    /// small consecutive seeds (object 0, object 1, …) do not start in
    /// correlated states.
    fn from_seed(seed: u64) -> Self {
        Lcg64 {
            state: splitmix::scramble_seed(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.step();
        // Output finalization: xorshift-multiply avalanche over the state.
        let mut z = self.state;
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^ (z >> 32)
    }

    fn advance(&mut self, n: u64) {
        let (mul, add) = jump_coefficients(A, C, n);
        self.state = mul.wrapping_mul(self.state).wrapping_add(add);
    }
}

impl IndexedRng for Lcg64 {
    fn value_at(seed: u64, index: u64) -> u64 {
        let mut g = Lcg64::from_seed(seed);
        g.advance(index);
        g.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;
    use proptest::prelude::*;

    #[test]
    fn jump_zero_is_identity() {
        let mut g = Lcg64::from_seed(5);
        let before = g.clone();
        g.advance(0);
        assert_eq!(g, before);
    }

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<Lcg64>(99, 200);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<Lcg64>(17, 1234);
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<Lcg64>(2026);
    }

    #[test]
    fn jump_coefficients_small_cases() {
        // n = 1: mul = A, add = C.
        assert_eq!(jump_coefficients(A, C, 1), (A, C));
        // n = 2: mul = A^2, add = (A + 1)·C.
        assert_eq!(
            jump_coefficients(A, C, 2),
            (A.wrapping_mul(A), A.wrapping_add(1).wrapping_mul(C))
        );
    }

    proptest! {
        #[test]
        fn prop_advance_composes(seed in any::<u64>(), a in 0u64..5000, b in 0u64..5000) {
            let mut one = Lcg64::from_seed(seed);
            one.advance(a + b);
            let mut two = Lcg64::from_seed(seed);
            two.advance(a);
            two.advance(b);
            prop_assert_eq!(one, two);
        }

        #[test]
        fn prop_indexed_contract(seed in any::<u64>(), i in 0u64..256) {
            let mut g = Lcg64::from_seed(seed);
            for _ in 0..i {
                g.next_u64();
            }
            prop_assert_eq!(Lcg64::value_at(seed, i), g.next_u64());
        }
    }
}
