//! SplitMix64: a counter-based generator with O(1) random access.
//!
//! State is a plain counter advanced by a fixed odd increment (the golden
//! gamma); each output is an avalanche hash of the counter. Because the
//! state after `i` steps is just `seed + (i+1)·GAMMA`, the `i`-th output
//! is computable directly — ideal for VCR-style block access where we need
//! `X_0^{(i)}` for an arbitrary block without replaying the stream.
//!
//! Constants are from Steele, Lea & Flood, "Fast Splittable Pseudorandom
//! Number Generators" (OOPSLA 2014), the same variant used by
//! `java.util.SplittableRandom`.

use crate::traits::{IndexedRng, SeededRng};

/// Weyl-sequence increment: 2^64 / φ rounded to odd.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalization mix (variant "mix13" of Stafford's MurmurHash3 finalizers).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scrambles a seed into a well-mixed 64-bit state. Used by other
/// generators in this crate to decorrelate small consecutive seeds.
pub(crate) fn scramble_seed(seed: u64) -> u64 {
    mix(seed.wrapping_add(GAMMA))
}

/// The SplitMix64 generator.
///
/// ```
/// use scaddar_prng::{SeededRng, IndexedRng, SplitMix64};
/// let mut g = SplitMix64::from_seed(7);
/// let first = g.next_u64();
/// assert_eq!(SplitMix64::value_at(7, 0), first);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SeededRng for SplitMix64 {
    fn from_seed(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    fn advance(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GAMMA.wrapping_mul(n));
    }
}

impl IndexedRng for SplitMix64 {
    fn value_at(seed: u64, index: u64) -> u64 {
        mix(seed.wrapping_add(GAMMA.wrapping_mul(index.wrapping_add(1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;
    use proptest::prelude::*;

    /// Reference values computed with java.util.SplittableRandom(0):
    /// the first three longs of `new SplittableRandom(0)` (which uses the
    /// same mix13/gamma pair on a zero seed).
    #[test]
    fn known_answer_seed_zero() {
        let mut g = SplitMix64::from_seed(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<SplitMix64>(0xDEAD_BEEF, 200);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<SplitMix64>(3, 1000);
        contract::advance_matches_stepping::<SplitMix64>(3, 0);
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<SplitMix64>(11);
    }

    proptest! {
        #[test]
        fn prop_indexed_contract(seed in any::<u64>(), i in 0u64..512) {
            let mut g = SplitMix64::from_seed(seed);
            g.advance(i);
            prop_assert_eq!(SplitMix64::value_at(seed, i), g.next_u64());
        }

        #[test]
        fn prop_advance_composes(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
            let mut one = SplitMix64::from_seed(seed);
            one.advance(a + b);
            let mut two = SplitMix64::from_seed(seed);
            two.advance(a);
            two.advance(b);
            prop_assert_eq!(one, two);
        }
    }
}
