//! Generator traits.
//!
//! The split between [`SeededRng`] (sequential) and [`IndexedRng`]
//! (random access) mirrors the two access paths of a CM server:
//!
//! * *sequential playback* walks a stream's blocks in order, so iterating
//!   the generator once per block is natural;
//! * *interactive / VCR access* (pause, seek, fast-forward — one of the
//!   motivations for random placement cited from the RIO project) jumps to
//!   an arbitrary block `i` and must obtain `X_0^{(i)}` without replaying
//!   `i` generator steps.

/// A deterministic pseudo-random generator constructed from a 64-bit seed.
///
/// Implementations must be pure integer recurrences: two instances built
/// from the same seed yield identical streams on every platform, forever.
/// This is Definition 3.1 of the paper ("random placement whose random
/// sequence can be reproduced").
pub trait SeededRng: Clone {
    /// Builds the generator from a seed. The mapping seed → initial state
    /// must be fixed (documented per implementation).
    fn from_seed(seed: u64) -> Self;

    /// Returns the next 64-bit output and advances the state.
    fn next_u64(&mut self) -> u64;

    /// Advances the state by `n` steps, as if [`SeededRng::next_u64`] had
    /// been called `n` times and the outputs discarded.
    ///
    /// The default implementation is O(`n`); generators with an algebraic
    /// jump (LCG, PCG) or counter-based state (SplitMix) override it.
    fn advance(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u64();
        }
    }
}

/// A generator that can produce its `i`-th output directly.
///
/// `value_at(seed, i)` must equal the `i`-th call to `next_u64()` on a
/// generator freshly built with `from_seed(seed)` (0-indexed). The blanket
/// contract is checked by property tests in each implementation module.
pub trait IndexedRng: SeededRng {
    /// Returns output number `index` (0-based) of the stream seeded with
    /// `seed`, without materializing the earlier outputs.
    fn value_at(seed: u64, index: u64) -> u64;
}

#[cfg(test)]
pub(crate) mod contract {
    //! Shared contract checks used by every generator's test module.
    use super::*;

    /// `value_at` must agree with sequential generation.
    pub(crate) fn indexed_matches_sequential<R: IndexedRng>(seed: u64, upto: u64) {
        let mut sequential = R::from_seed(seed);
        for i in 0..upto {
            let expect = sequential.next_u64();
            assert_eq!(
                R::value_at(seed, i),
                expect,
                "value_at({seed}, {i}) disagrees with sequential stream"
            );
        }
    }

    /// `advance(n)` must agree with n discarded calls.
    pub(crate) fn advance_matches_stepping<R: SeededRng>(seed: u64, n: u64) {
        let mut jumped = R::from_seed(seed);
        jumped.advance(n);
        let mut stepped = R::from_seed(seed);
        for _ in 0..n {
            stepped.next_u64();
        }
        for _ in 0..16 {
            assert_eq!(jumped.next_u64(), stepped.next_u64());
        }
    }

    /// Crude equidistribution check: over many draws, the mean of the top
    /// bit should be near 1/2 and bytes should hit most of their range.
    /// This is a smoke test, not a statistical suite; the uniformity of
    /// placement itself is tested end-to-end in `scaddar-analysis`.
    pub(crate) fn looks_uniform<R: SeededRng>(seed: u64) {
        let mut rng = R::from_seed(seed);
        let draws = 4096;
        let mut top_bits = 0u32;
        let mut seen = [false; 256];
        for _ in 0..draws {
            let v = rng.next_u64();
            top_bits += (v >> 63) as u32;
            seen[(v & 0xFF) as usize] = true;
        }
        let frac = f64::from(top_bits) / f64::from(draws);
        assert!(
            (0.45..=0.55).contains(&frac),
            "top bit frequency {frac} too far from 0.5"
        );
        let coverage = seen.iter().filter(|&&s| s).count();
        assert!(coverage > 250, "low byte coverage only {coverage}/256");
    }
}
