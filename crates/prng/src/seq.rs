//! [`BlockRandoms`]: the `p_r(s_m)` of the paper, packaged for placement.
//!
//! Given a generator family, an object seed and a bit width `b`, this type
//! answers the one question placement asks: *what is `X_0^{(i)}`, the
//! `i`-th `b`-bit random number of the object's stream?* (Definition 3.2.)
//! It also exposes a sequential cursor for bulk walks over a whole object
//! (initial loading, full redistribution scans), which is cheaper than
//! repeated random access for the non-counter-based generators.

use crate::bits::Bits;
use crate::lcg::Lcg64;
use crate::pcg::Pcg64;
use crate::philox::Philox4x32;
use crate::splitmix::SplitMix64;
use crate::traits::{IndexedRng, SeededRng};
use crate::xorshift::XorShift64Star;
use std::fmt;

/// Which generator family backs a placement sequence.
///
/// Placement quality is insensitive to the choice (each is far better
/// than the uniformity SCADDAR's analysis requires — verified empirically
/// by experiment E12); the knob exists because the *cost model* differs:
/// the counter-based families give O(1) random access while the
/// sequential families pay O(log i) for an algebraic or GF(2)-linear
/// jump-ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngKind {
    /// Counter-based; O(1) indexed access. The default.
    SplitMix64,
    /// 64-bit LCG; O(log i) indexed access.
    Lcg64,
    /// PCG-XSL-RR 128/64; O(log i) indexed access, best quality.
    Pcg64,
    /// Philox4x32-10 counter block cipher; O(1) indexed access,
    /// Crush-resistant mixing.
    Philox4x32,
    /// xorshift64*; O(log i) indexed access via GF(2) matrix jump-ahead
    /// (the largest per-jump constant of the suite).
    XorShift64Star,
}

impl RngKind {
    /// All kinds, for parameter sweeps in tests and experiments.
    pub const ALL: [RngKind; 5] = [
        RngKind::SplitMix64,
        RngKind::Lcg64,
        RngKind::Pcg64,
        RngKind::XorShift64Star,
        RngKind::Philox4x32,
    ];
}

impl fmt::Display for RngKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RngKind::SplitMix64 => "splitmix64",
            RngKind::Lcg64 => "lcg64",
            RngKind::Pcg64 => "pcg64",
            RngKind::XorShift64Star => "xorshift64star",
            RngKind::Philox4x32 => "philox4x32",
        };
        f.write_str(name)
    }
}

/// The random sequence `p_r(s_m)` of one object: seed + generator family +
/// bit width, with indexed and sequential access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRandoms {
    kind: RngKind,
    seed: u64,
    bits: Bits,
}

impl BlockRandoms {
    /// Binds a generator family and seed at width `b`.
    pub fn new(kind: RngKind, seed: u64, bits: Bits) -> Self {
        BlockRandoms { kind, seed, bits }
    }

    /// The generator family.
    pub fn kind(&self) -> RngKind {
        self.kind
    }

    /// The object seed `s_m`.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The bit width `b` of the values.
    pub fn bits(&self) -> Bits {
        self.bits
    }

    /// `X_0^{(i)}`: the `i`-th `b`-bit random number of this stream.
    pub fn value_at(&self, block_index: u64) -> u64 {
        let raw = match self.kind {
            RngKind::SplitMix64 => SplitMix64::value_at(self.seed, block_index),
            RngKind::Lcg64 => Lcg64::value_at(self.seed, block_index),
            RngKind::Pcg64 => Pcg64::value_at(self.seed, block_index),
            RngKind::XorShift64Star => XorShift64Star::value_at(self.seed, block_index),
            RngKind::Philox4x32 => Philox4x32::value_at(self.seed, block_index),
        };
        self.bits.truncate(raw)
    }

    /// A sequential cursor over `X_0^{(0)}, X_0^{(1)}, …`.
    pub fn cursor(&self) -> BlockRandomCursor {
        BlockRandomCursor::new(*self)
    }

    /// A sequential cursor starting at `X_0^{(index)}` — seek via each
    /// generator's jump-ahead (O(1) for counter-based kinds, O(log i)
    /// for the others), then iterate. This is what lets parallel bulk
    /// scans hand each worker a mid-object starting point cheaply.
    pub fn cursor_at(&self, index: u64) -> BlockRandomCursor {
        let mut cursor = BlockRandomCursor::new(*self);
        cursor.advance(index);
        cursor
    }

    /// Convenience: the first `n` values, materialized.
    pub fn take_values(&self, n: u64) -> Vec<u64> {
        self.cursor().take(n as usize).collect()
    }
}

/// Dispatch-free sequential state for one stream.
#[derive(Debug, Clone)]
enum CursorState {
    SplitMix64(SplitMix64),
    Lcg64(Lcg64),
    Pcg64(Pcg64),
    XorShift64Star(XorShift64Star),
    Philox4x32(Philox4x32),
}

/// Sequential iterator over a [`BlockRandoms`] stream.
///
/// Infinite; use `take` or [`BlockRandoms::take_values`] to bound it.
#[derive(Debug, Clone)]
pub struct BlockRandomCursor {
    state: CursorState,
    bits: Bits,
}

impl BlockRandomCursor {
    /// Skips `n` values using the underlying generator's jump-ahead.
    pub fn advance(&mut self, n: u64) {
        match &mut self.state {
            CursorState::SplitMix64(g) => g.advance(n),
            CursorState::Lcg64(g) => g.advance(n),
            CursorState::Pcg64(g) => g.advance(n),
            CursorState::XorShift64Star(g) => g.advance(n),
            CursorState::Philox4x32(g) => g.advance(n),
        }
    }

    fn new(seq: BlockRandoms) -> Self {
        let state = match seq.kind {
            RngKind::SplitMix64 => CursorState::SplitMix64(SplitMix64::from_seed(seq.seed)),
            RngKind::Lcg64 => CursorState::Lcg64(Lcg64::from_seed(seq.seed)),
            RngKind::Pcg64 => CursorState::Pcg64(Pcg64::from_seed(seq.seed)),
            RngKind::XorShift64Star => {
                CursorState::XorShift64Star(XorShift64Star::from_seed(seq.seed))
            }
            RngKind::Philox4x32 => CursorState::Philox4x32(Philox4x32::from_seed(seq.seed)),
        };
        BlockRandomCursor {
            state,
            bits: seq.bits,
        }
    }
}

impl Iterator for BlockRandomCursor {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let raw = match &mut self.state {
            CursorState::SplitMix64(g) => g.next_u64(),
            CursorState::Lcg64(g) => g.next_u64(),
            CursorState::Pcg64(g) => g.next_u64(),
            CursorState::XorShift64Star(g) => g.next_u64(),
            CursorState::Philox4x32(g) => g.next_u64(),
        };
        Some(self.bits.truncate(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cursor_matches_value_at_for_all_kinds() {
        for kind in RngKind::ALL {
            let seq = BlockRandoms::new(kind, 0xFEED, Bits::B32);
            let walked = seq.take_values(64);
            for (i, &v) in walked.iter().enumerate() {
                assert_eq!(seq.value_at(i as u64), v, "kind {kind} index {i}");
            }
        }
    }

    #[test]
    fn values_respect_bit_width() {
        for kind in RngKind::ALL {
            for b in [1u8, 8, 31, 32, 33, 63, 64] {
                let bits = Bits::new(b).unwrap();
                let seq = BlockRandoms::new(kind, 5, bits);
                for v in seq.take_values(128) {
                    assert!(v <= bits.max_value(), "{kind} {b}-bit produced {v}");
                }
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        // Experiment CSVs key on these strings.
        assert_eq!(RngKind::SplitMix64.to_string(), "splitmix64");
        assert_eq!(RngKind::Lcg64.to_string(), "lcg64");
        assert_eq!(RngKind::Pcg64.to_string(), "pcg64");
        assert_eq!(RngKind::XorShift64Star.to_string(), "xorshift64star");
        assert_eq!(RngKind::Philox4x32.to_string(), "philox4x32");
    }

    #[test]
    fn cursor_at_matches_skipped_cursor_for_all_kinds() {
        for kind in RngKind::ALL {
            let seq = BlockRandoms::new(kind, 0xABCD, Bits::B32);
            for start in [0u64, 1, 17, 1500] {
                let seeked: Vec<u64> = seq.cursor_at(start).take(8).collect();
                let walked: Vec<u64> = seq.cursor().skip(start as usize).take(8).collect();
                assert_eq!(seeked, walked, "kind {kind} start {start}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_value_at_deterministic(seed in any::<u64>(), i in 0u64..10_000) {
            let seq = BlockRandoms::new(RngKind::SplitMix64, seed, Bits::B64);
            prop_assert_eq!(seq.value_at(i), seq.value_at(i));
        }

        #[test]
        fn prop_32bit_values_fill_the_range(seed in any::<u64>()) {
            // With 256 draws of 32-bit values, the max should usually be
            // large; a tiny max would indicate broken truncation.
            let seq = BlockRandoms::new(RngKind::Pcg64, seed, Bits::B32);
            let max = seq.take_values(256).into_iter().max().unwrap();
            prop_assert!(max > (1u64 << 24));
        }
    }
}
