//! Philox4x32-10: a counter-based generator with cryptographic-strength
//! mixing (Salmon, Moraes, Dror & Shaw, "Parallel Random Numbers: As
//! Easy as 1, 2, 3", SC 2011) and O(1) random access.
//!
//! Ten rounds of multiply-hi/lo Feistel mixing over a 128-bit counter
//! under a 64-bit key. Each invocation yields 128 bits; we emit them as
//! two consecutive 64-bit outputs. Included as the highest-quality
//! counter-based option: like [`crate::SplitMix64`] it has O(1)
//! `value_at`, but with far stronger avalanche (Crush-resistant in the
//! authors' testing).

use crate::splitmix;
use crate::traits::{IndexedRng, SeededRng};

const M0: u32 = 0xD251_1F53;
const M1: u32 = 0xCD9E_8D57;
const W0: u32 = 0x9E37_79B9;
const W1: u32 = 0xBB67_AE85;

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

/// The 10-round Philox4x32 block function.
fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for round in 0..10 {
        if round > 0 {
            key[0] = key[0].wrapping_add(W0);
            key[1] = key[1].wrapping_add(W1);
        }
        let (hi0, lo0) = mulhilo(M0, ctr[0]);
        let (hi1, lo1) = mulhilo(M1, ctr[2]);
        ctr = [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0];
    }
    ctr
}

/// Philox4x32-10 exposed as a sequential/indexed generator.
///
/// The 128-bit counter advances by one per *block*; each block yields
/// two `u64` outputs, so `next_u64` interleaves block halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    /// Index of the next 64-bit output (block = index / 2).
    index: u64,
}

impl Philox4x32 {
    fn output_at(key: [u32; 2], index: u64) -> u64 {
        let block = index / 2;
        let ctr = [block as u32, (block >> 32) as u32, 0, 0];
        let out = philox4x32_10(ctr, key);
        if index.is_multiple_of(2) {
            u64::from(out[0]) | (u64::from(out[1]) << 32)
        } else {
            u64::from(out[2]) | (u64::from(out[3]) << 32)
        }
    }
}

impl SeededRng for Philox4x32 {
    /// The 64-bit seed is scrambled and split into the two key words.
    fn from_seed(seed: u64) -> Self {
        let s = splitmix::scramble_seed(seed);
        Philox4x32 {
            key: [s as u32, (s >> 32) as u32],
            index: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let v = Self::output_at(self.key, self.index);
        self.index += 1;
        v
    }

    fn advance(&mut self, n: u64) {
        self.index = self.index.wrapping_add(n);
    }
}

impl IndexedRng for Philox4x32 {
    fn value_at(seed: u64, index: u64) -> u64 {
        let g = Philox4x32::from_seed(seed);
        Philox4x32::output_at(g.key, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;
    use proptest::prelude::*;

    /// Known-answer test from the Random123 distribution's kat_vectors:
    /// philox4x32-10 of an all-zero counter under an all-zero key.
    #[test]
    fn random123_zero_vector() {
        let out = philox4x32_10([0, 0, 0, 0], [0, 0]);
        assert_eq!(out, [0x6627_E8D5, 0xE169_C58D, 0xBC57_AC4C, 0x9B00_DBD8]);
    }

    /// Second Random123 vector: all-ones counter and key.
    #[test]
    fn random123_ones_vector() {
        let out = philox4x32_10([u32::MAX; 4], [u32::MAX; 2]);
        assert_eq!(out, [0x408F_276D, 0x41C8_3B0E, 0xA20B_C7C6, 0x6D54_51FD]);
    }

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<Philox4x32>(0xABCD, 128);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<Philox4x32>(7, 333);
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<Philox4x32>(12);
    }

    #[test]
    fn both_halves_of_a_block_are_used() {
        let mut g = Philox4x32::from_seed(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Block boundary: outputs 2 and 3 come from counter = 1.
        let c = g.next_u64();
        assert_ne!(b, c);
    }

    proptest! {
        #[test]
        fn prop_value_at_is_o1_consistent(seed in any::<u64>(), i in 0u64..10_000) {
            prop_assert_eq!(
                Philox4x32::value_at(seed, i),
                Philox4x32::value_at(seed, i)
            );
            // Random access == sequential access.
            let mut g = Philox4x32::from_seed(seed);
            g.advance(i);
            prop_assert_eq!(Philox4x32::value_at(seed, i), g.next_u64());
        }
    }
}
