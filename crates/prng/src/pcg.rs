//! PCG-XSL-RR 128/64: a 128-bit-state LCG with a rotated-xorshift output
//! permutation, O(log n) jump-ahead, and 64-bit output.
//!
//! This is the highest-quality generator in the suite (O'Neill, "PCG: A
//! Family of Simple Fast Space-Efficient Statistically Good Algorithms
//! for Random Number Generation", 2014). Like [`crate::Lcg64`] its state
//! recurrence is linear, so arbitrary strides are computable in
//! logarithmic time — the property SCADDAR needs for cheap `X_0^{(i)}`
//! lookup on interactive block access.

use crate::splitmix;
use crate::traits::{IndexedRng, SeededRng};

/// PCG 128-bit default multiplier.
const A: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;
/// PCG 128-bit default increment (must be odd).
const C: u128 = 0x5851_F42D_4C95_7F2D_1405_7B7E_F767_814F;

/// PCG-XSL-RR 128/64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
}

/// Square-and-multiply jump coefficients over mod 2^128 arithmetic;
/// same construction as in `lcg.rs` but at 128-bit width.
fn jump_coefficients(mut a: u128, mut c: u128, mut n: u64) -> (u128, u128) {
    let mut acc_mul: u128 = 1;
    let mut acc_add: u128 = 0;
    while n > 0 {
        if n & 1 == 1 {
            acc_mul = acc_mul.wrapping_mul(a);
            acc_add = acc_add.wrapping_mul(a).wrapping_add(c);
        }
        c = a.wrapping_add(1).wrapping_mul(c);
        a = a.wrapping_mul(a);
        n >>= 1;
    }
    (acc_mul, acc_add)
}

/// XSL-RR output permutation: xor-fold the state halves, then rotate by
/// the top 6 bits.
fn output(state: u128) -> u64 {
    let xored = (state >> 64) as u64 ^ state as u64;
    let rot = (state >> 122) as u32;
    xored.rotate_right(rot)
}

impl SeededRng for Pcg64 {
    /// Standard PCG seeding: state = (seed + C)·A + C, with the 64-bit
    /// seed pre-scrambled into both halves of the 128-bit initial value.
    fn from_seed(seed: u64) -> Self {
        let lo = splitmix::scramble_seed(seed);
        let hi = splitmix::scramble_seed(seed.wrapping_add(1));
        let init = (u128::from(hi) << 64) | u128::from(lo);
        let state = init.wrapping_add(C).wrapping_mul(A).wrapping_add(C);
        Pcg64 { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(A).wrapping_add(C);
        output(self.state)
    }

    fn advance(&mut self, n: u64) {
        let (mul, add) = jump_coefficients(A, C, n);
        self.state = mul.wrapping_mul(self.state).wrapping_add(add);
    }
}

impl IndexedRng for Pcg64 {
    fn value_at(seed: u64, index: u64) -> u64 {
        let mut g = Pcg64::from_seed(seed);
        g.advance(index);
        g.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::contract;
    use proptest::prelude::*;

    #[test]
    fn indexed_matches_sequential() {
        contract::indexed_matches_sequential::<Pcg64>(77, 200);
    }

    #[test]
    fn advance_matches_stepping() {
        contract::advance_matches_stepping::<Pcg64>(4, 999);
    }

    #[test]
    fn looks_uniform() {
        contract::looks_uniform::<Pcg64>(123);
    }

    #[test]
    fn rotation_uses_high_bits() {
        // Two states differing only in the rotation field must rotate
        // differently; catches a classic shift-amount bug.
        let s1: u128 = 0x0123_4567_89AB_CDEF_u128 << 16;
        let s2 = s1 | (1u128 << 122);
        assert_ne!(output(s1), output(s2));
    }

    proptest! {
        #[test]
        fn prop_advance_composes(seed in any::<u64>(), a in 0u64..4000, b in 0u64..4000) {
            let mut one = Pcg64::from_seed(seed);
            one.advance(a + b);
            let mut two = Pcg64::from_seed(seed);
            two.advance(a);
            two.advance(b);
            prop_assert_eq!(one, two);
        }
    }
}
