//! The `b`-bit output range of `p_r(s)`.
//!
//! Definition 3.2 of the paper: `p_r(s)` returns values in `0..=R` with
//! `R = 2^b - 1`. The width `b` matters beyond mere plumbing — §4.3 shows
//! each scaling operation consumes about `log2(N)` bits of the range, so
//! `b` directly bounds how many operations keep the load fair. The paper
//! evaluates both `b = 64` (rule-of-thumb example) and `b = 32` (the §5
//! simulation).

use std::fmt;

/// Bit width `b` of the random numbers used for placement.
///
/// Constructed via [`Bits::new`] for arbitrary widths in `1..=64`, or the
/// two widths the paper uses as associated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bits(u8);

impl Bits {
    /// The 32-bit range used in the paper's §5 simulation.
    pub const B32: Bits = Bits(32);
    /// The 64-bit range used in the paper's §4.3 rule-of-thumb example.
    pub const B64: Bits = Bits(64);

    /// Creates a width, returning `None` unless `1 <= b <= 64`.
    pub fn new(b: u8) -> Option<Bits> {
        (1..=64).contains(&b).then_some(Bits(b))
    }

    /// The width `b` itself.
    pub fn get(self) -> u8 {
        self.0
    }

    /// `R = 2^b - 1`, the largest value `p_r(s)` may return.
    pub fn max_value(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// The number of values in the range, `R + 1 = 2^b`, as a `u128` so
    /// `b = 64` does not overflow.
    pub fn range_size(self) -> u128 {
        u128::from(self.max_value()) + 1
    }

    /// Truncates a 64-bit generator output into this range by masking the
    /// low `b` bits.
    ///
    /// Masking (rather than `mod`) keeps the mapping from generator output
    /// to placement value exactly uniform: every `b`-bit pattern has the
    /// same number of 64-bit preimages.
    pub fn truncate(self, v: u64) -> u64 {
        v & self.max_value()
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_widths() {
        assert_eq!(Bits::B32.max_value(), u64::from(u32::MAX));
        assert_eq!(Bits::B64.max_value(), u64::MAX);
        assert_eq!(Bits::B32.range_size(), 1u128 << 32);
        assert_eq!(Bits::B64.range_size(), 1u128 << 64);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Bits::new(0).is_none());
        assert!(Bits::new(65).is_none());
        assert_eq!(Bits::new(1).unwrap().max_value(), 1);
        assert_eq!(Bits::new(64), Some(Bits::B64));
    }

    #[test]
    fn truncate_is_identity_within_range() {
        let b = Bits::new(16).unwrap();
        assert_eq!(b.truncate(0xFFFF), 0xFFFF);
        assert_eq!(b.truncate(0x1_0000), 0);
        assert_eq!(b.truncate(0x1_2345), 0x2345);
    }

    proptest! {
        #[test]
        fn truncate_never_exceeds_max(b in 1u8..=64, v in any::<u64>()) {
            let bits = Bits::new(b).unwrap();
            prop_assert!(bits.truncate(v) <= bits.max_value());
        }

        #[test]
        fn truncate_is_idempotent(b in 1u8..=64, v in any::<u64>()) {
            let bits = Bits::new(b).unwrap();
            prop_assert_eq!(bits.truncate(bits.truncate(v)), bits.truncate(v));
        }
    }
}
