//! The `scaddar` operator console: a stdin loop over
//! [`scaddar_cli::Session`].

use scaddar_cli::Session;
use std::io::{self, BufRead, Write};

fn main() {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let mut session = Session::new();
    println!("SCADDAR operator console — `help` for commands, ctrl-d to exit");
    loop {
        print!("scaddar> ");
        stdout.flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        match session.execute(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
