//! The `scaddar` operator console: a stdin loop over
//! [`scaddar_cli::Session`], plus the networked subcommands
//! (`serve` boots a `scaddard` daemon, `connect` drives one remotely).
//!
//! Exit status: `health` (local or remote) and `serve --check` map the
//! monitor verdict to the exit code (`OK`=0, `WARN`=1, `CRIT`=2), so
//! scripts piping commands into the console can gate on the result.

use scaddar_cli::fleet;
use scaddar_cli::profile;
use scaddar_cli::remote;
use scaddar_cli::Session;
use scaddar_monitor::Severity;
use std::io::{self, BufRead, Write};

const USAGE: &str = "\
usage: scaddar-console [subcommand]
  (none)                      interactive local console
  serve [options]             boot a scaddard network daemon
  serve --shard ID [options]  boot one cluster shard (jump-hash routed)
  serve --check               boot, health-check, exit 0/1/2 by verdict
  connect <addr> [command]    drive a remote daemon (one-shot or interactive)
  cluster-status <addr>       fetch the cluster map, federated status of every shard
  top <addr> [--interval MS] [--frames N]
                              live fleet dashboard (rps/p99/epoch/health + SLO burn)
  profile <addr> [--seconds N] [--folded]
                              dump the daemon's cooperative profiler (folded = flamegraph input)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        None => interactive(),
        Some((cmd, rest)) => match cmd.as_str() {
            "serve" => remote::run_serve(rest),
            "connect" => remote::run_connect(rest),
            "cluster-status" => remote::run_cluster_status(rest),
            "top" => fleet::run_top(rest),
            "profile" => profile::run_profile(rest),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                0
            }
            other => {
                eprintln!("unknown subcommand `{other}`\n{USAGE}");
                2
            }
        },
    };
    std::process::exit(code);
}

/// The local stdin loop. The exit code reflects the most recent
/// `health` command's verdict (0 if none was run).
fn interactive() -> i32 {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let mut session = Session::new();
    let mut health_code = 0;
    println!("SCADDAR operator console — `help` for commands, ctrl-d to exit");
    loop {
        print!("scaddar> ");
        stdout.flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        let is_health = line.split_whitespace().next() == Some("health");
        match session.execute(line) {
            Ok(out) => {
                if is_health {
                    health_code = session.health_verdict().map_or(0, |verdict| match verdict {
                        Severity::Ok => 0,
                        Severity::Warn => 1,
                        Severity::Crit => 2,
                    });
                }
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    health_code
}
