//! The profiler console: `scaddar-console profile <addr>` pulls the
//! daemon's always-on cooperative profiler over the wire
//! ([`Frame::ProfileDump`]), diffs two dumps into a windowed interval
//! profile, and renders either a human summary (per-thread residency
//! percentages) or folded-stack text ready for `flamegraph.pl`.
//!
//! ```text
//! scaddar-console profile 127.0.0.1:7411                 # 2s window
//! scaddar-console profile 127.0.0.1:7411 --seconds 0     # since boot
//! scaddar-console profile 127.0.0.1:7411 --folded > p.folded
//! ```
//!
//! Like `top` and `cluster-status`, the subcommand body is a plain
//! function from inputs to `(text, exit code)` so the whole surface is
//! unit-testable; the only side effects live in [`run_profile`].

use scaddar_net::NetClient;
use scaddar_obs::{ProfileSnapshot, THREAD_STATE_NAMES};
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

const PROFILE_USAGE: &str = "profile <addr> [--seconds N] [--folded]";

/// Parsed `profile` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileArgs {
    /// The daemon to profile.
    pub addr: String,
    /// Window length between the two dumps; 0 = one cumulative dump
    /// (everything since the daemon booted).
    pub seconds: u64,
    /// Emit folded-stack text (`thread;state count`) instead of the
    /// human summary.
    pub folded: bool,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            addr: String::new(),
            seconds: 2,
            folded: false,
        }
    }
}

/// Parses `profile` argv (everything after the subcommand word).
pub fn parse_profile_args(args: &[String]) -> Result<ProfileArgs, String> {
    let mut parsed = ProfileArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seconds" => {
                parsed.seconds = iter
                    .next()
                    .ok_or_else(|| format!("--seconds needs a value\nusage: {PROFILE_USAGE}"))?
                    .parse()
                    .map_err(|_| {
                        format!("--seconds needs a numeric value\nusage: {PROFILE_USAGE}")
                    })?;
            }
            "--folded" => parsed.folded = true,
            other if parsed.addr.is_empty() && !other.starts_with('-') => {
                parsed.addr = other.to_string();
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: {PROFILE_USAGE}"
                ))
            }
        }
    }
    if parsed.addr.is_empty() {
        return Err(format!("an address is required\nusage: {PROFILE_USAGE}"));
    }
    Ok(parsed)
}

/// Captures a profile from `addr`: one cumulative dump when `seconds`
/// is 0, otherwise two dumps bracketing the wait injected by `sleep`
/// (the interval hook is a parameter so tests can drive traffic
/// instead of blocking). The diff is taken with
/// [`ProfileSnapshot::since`], so a daemon restart between dumps
/// degrades to saturating zeros, never an underflow.
pub fn capture_profile(
    addr: SocketAddr,
    seconds: u64,
    sleep: impl FnOnce(Duration),
) -> Result<ProfileSnapshot, String> {
    let client = NetClient::connect(addr);
    let first = client
        .profile_dump()
        .map_err(|e| format!("profile dump from {addr}: {e}"))?;
    if seconds == 0 {
        return Ok(first);
    }
    sleep(Duration::from_secs(seconds));
    let second = client
        .profile_dump()
        .map_err(|e| format!("profile dump from {addr}: {e}"))?;
    Ok(second.since(&first))
}

/// Renders a captured profile: folded-stack text when `folded`,
/// otherwise a per-thread residency table (states sorted by share,
/// zero rows elided).
pub fn render_profile(
    addr: SocketAddr,
    seconds: u64,
    profile: &ProfileSnapshot,
    folded: bool,
) -> String {
    if folded {
        // `render_folded` ends with a newline; the caller's `println!`
        // restores it, so trim here to avoid a trailing blank line.
        return profile.render_folded().trim_end().to_string();
    }
    let window = if seconds == 0 {
        "since boot".to_string()
    } else {
        format!("{seconds}s window")
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile of {addr} — {window}, {} round(s), {} thread(s), {} distinct state(s)",
        profile.rounds,
        profile.threads.len(),
        profile.distinct_states(),
    );
    for thread in &profile.threads {
        let mut states: Vec<(usize, u64)> = thread
            .counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        states.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total = thread.samples.max(1) as f64;
        let cells: Vec<String> = states
            .iter()
            .map(|&(i, n)| {
                let name = THREAD_STATE_NAMES
                    .get(i)
                    .map_or_else(|| format!("state{i}"), |s| (*s).to_string());
                format!("{name} {:.1}%", n as f64 * 100.0 / total)
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<24} {:>8} samples: {}",
            thread.name,
            thread.samples,
            if cells.is_empty() {
                "(no samples)".to_string()
            } else {
                cells.join(", ")
            },
        );
    }
    out.trim_end().to_string()
}

/// The `profile` subcommand: capture, render, print. Exit 0 on
/// success, 2 on usage or transport errors.
pub fn run_profile(args: &[String]) -> i32 {
    let parsed = match parse_profile_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let addr = match parsed
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("profile: cannot resolve `{}`", parsed.addr);
            return 2;
        }
    };
    match capture_profile(addr, parsed.seconds, std::thread::sleep) {
        Ok(profile) => {
            println!(
                "{}",
                render_profile(addr, parsed.seconds, &profile, parsed.folded)
            );
            0
        }
        Err(msg) => {
            eprintln!("profile: {msg}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{boot_daemon, parse_serve_args};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profile_args_parse_and_validate() {
        assert!(parse_profile_args(&[]).is_err());
        let parsed = parse_profile_args(&args(&["127.0.0.1:7411"])).unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:7411");
        assert_eq!(parsed.seconds, 2);
        assert!(!parsed.folded);
        let parsed =
            parse_profile_args(&args(&["localhost:9", "--seconds", "0", "--folded"])).unwrap();
        assert_eq!(parsed.seconds, 0);
        assert!(parsed.folded);
        assert!(parse_profile_args(&args(&["--seconds", "x"])).is_err());
        assert!(parse_profile_args(&args(&["a", "b"])).is_err());
    }

    /// End-to-end against a live daemon: the interval hook drives
    /// traffic instead of sleeping, the windowed profile conserves,
    /// the summary names the reactor workers, and the folded output
    /// parses line-by-line as `thread;state count`.
    #[test]
    fn profile_captures_a_live_daemon_and_renders_both_forms() {
        let serve =
            parse_serve_args(&args(&["--addr", "127.0.0.1:0", "--blocks", "2000"])).unwrap();
        let (daemon, _rt) = boot_daemon(&serve).unwrap();
        let addr = daemon.local_addr();

        // Warm the profiler: traffic + a beat for the 1 kHz sampler.
        let client = NetClient::connect(addr);
        for _ in 0..50 {
            client.locate(0, 7).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));

        // seconds=0: cumulative dump since boot.
        let cumulative = capture_profile(addr, 0, |_| unreachable!()).unwrap();
        assert!(cumulative.rounds > 0, "sampler never ran");
        assert!(cumulative.threads.iter().all(|t| t.conserves()));

        // seconds>0: the hook stands in for the wall-clock wait and
        // keeps the daemon busy so the window has residency to show.
        let profile = capture_profile(addr, 1, |_| {
            for _ in 0..200 {
                client.locate(0, 7).unwrap();
            }
            std::thread::sleep(Duration::from_millis(30));
        })
        .unwrap();
        assert!(profile.threads.iter().all(|t| t.conserves()));

        let summary = render_profile(addr, 1, &profile, false);
        assert!(summary.contains("1s window"), "{summary}");
        assert!(summary.contains("scaddard-worker-0"), "{summary}");
        assert!(summary.contains("samples:"), "{summary}");

        let folded = render_profile(addr, 0, &cumulative, true);
        assert!(!folded.is_empty(), "folded output empty");
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(stack.contains(';'), "stack `{stack}` has no state frame");
            count.parse::<u64>().expect("folded count numeric");
        }

        daemon.shutdown();
    }

    #[test]
    fn run_profile_rejects_bad_input_and_dead_daemons() {
        assert_eq!(run_profile(&[]), 2);
        assert_eq!(run_profile(&args(&["not an addr"])), 2);
        assert_eq!(run_profile(&args(&["127.0.0.1:1", "--seconds", "0"])), 2);
    }
}
