//! The live fleet dashboard: `scaddar-console top <addr>` polls a
//! cluster through one [`FleetAggregator`] round per frame and renders
//! every shard's rps / p99 / epoch / health plus the fleet SLO burn
//! gauges — all from federated `ScrapeStats` pulls, never N ad-hoc
//! status probes.
//!
//! ```text
//! scaddar-console top 127.0.0.1:7411              # live, 2s frames
//! scaddar-console top 127.0.0.1:7411 --frames 1   # one frame, exit 0/1/2
//! ```
//!
//! The frame renderer ([`FleetTop::frame`]) is a plain function from a
//! seed address to `(text, exit code)`, so the whole dashboard is
//! unit-testable; the subcommand loop around it only clears the screen
//! and sleeps.

use crate::remote::verdict_exit_code;
use scaddar_cluster::FleetAggregator;
use scaddar_monitor::{Severity, SloRules};
use scaddar_net::{fetch_map, NetClient};
use scaddar_obs::slo::SloConfig;
use scaddar_obs::{EventLog, MonotonicClock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

const TOP_USAGE: &str = "top <addr> [--interval MS] [--frames N]";

/// Parsed `top` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct TopArgs {
    /// Any shard of the cluster (the map is refetched every frame).
    pub addr: String,
    /// Milliseconds between frames.
    pub interval_ms: u64,
    /// Frames to render; 0 = until the process is killed.
    pub frames: usize,
}

impl Default for TopArgs {
    fn default() -> Self {
        TopArgs {
            addr: String::new(),
            interval_ms: 2000,
            frames: 0,
        }
    }
}

/// Parses `top` argv (everything after the subcommand word).
pub fn parse_top_args(args: &[String]) -> Result<TopArgs, String> {
    let mut parsed = TopArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\nusage: {TOP_USAGE}"))
        };
        let bad = |name: &str| format!("{name} needs a numeric value\nusage: {TOP_USAGE}");
        match arg.as_str() {
            "--interval" => {
                parsed.interval_ms = value("--interval")?
                    .parse()
                    .map_err(|_| bad("--interval"))?;
            }
            "--frames" => {
                parsed.frames = value("--frames")?.parse().map_err(|_| bad("--frames"))?;
            }
            other if parsed.addr.is_empty() && !other.starts_with('-') => {
                parsed.addr = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\nusage: {TOP_USAGE}")),
        }
    }
    if parsed.addr.is_empty() {
        return Err(format!("an address is required\nusage: {TOP_USAGE}"));
    }
    Ok(parsed)
}

/// Turns two `(requests_total, at_ns)` observations into an rps cell.
///
/// Counters are monotone per process, but a shard *restart* resets
/// them to zero — a naive `now - then` underflows (or, with a signed
/// cast, renders a negative rate). The delta is clamped at zero and
/// the caller is told the counter ran backwards so the dashboard can
/// mark the shard `restarted` instead of lying about throughput.
fn rps_cell(prev: Option<(u64, u64)>, requests: u64, at_ns: u64) -> (String, bool) {
    match prev {
        Some((req0, at0)) if at_ns > at0 => {
            let restarted = requests < req0;
            let dt = (at_ns - at0) as f64 / 1e9;
            let delta = requests.saturating_sub(req0);
            (format!("{:.1}/s", delta as f64 / dt), restarted)
        }
        _ => ("-".to_string(), false),
    }
}

/// The dashboard state: one aggregator (so unreachable shards keep
/// their last-known data across frames) plus the previous frame's
/// request totals, which turn monotone counters into per-shard rps.
pub struct FleetTop {
    aggregator: FleetAggregator,
    /// Per-shard `(requests_total, at_ns)` from the previous frame.
    prev: BTreeMap<u32, (u64, u64)>,
}

impl Default for FleetTop {
    fn default() -> Self {
        FleetTop::new()
    }
}

impl FleetTop {
    /// A dashboard with fleet SLO tracking on (default objectives).
    pub fn new() -> FleetTop {
        let clock = Arc::new(MonotonicClock::new());
        let mut aggregator = FleetAggregator::new(clock.clone());
        aggregator.enable_slo(
            SloConfig::default(),
            SloRules::default(),
            EventLog::new(clock),
        );
        FleetTop {
            aggregator,
            prev: BTreeMap::new(),
        }
    }

    /// Renders one dashboard frame against `seed`: refetches the
    /// cluster map, scrapes every shard, and returns `(text, exit
    /// code)` — 0/1/2 by the worst of shard health and fleet SLO
    /// severity, 2 when any shard is unreachable. Errors only when the
    /// seed itself yields no map.
    pub fn frame(&mut self, seed: SocketAddr) -> Result<(String, i32), String> {
        let map = fetch_map(&NetClient::connect(seed), 0)
            .map_err(|e| format!("fetch map from {seed}: {e}"))?;
        let mut out = String::new();
        let mut code = 0;
        let mut targets = Vec::new();
        for (shard, addr) in &map.shards {
            match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
                Some(resolved) => targets.push((*shard, resolved)),
                None => {
                    let _ = writeln!(out, "shard {shard:>3} @ {addr} [UNRESOLVABLE]");
                    code = 2;
                }
            }
        }
        let fleet = self.aggregator.scrape(&targets);
        self.aggregator.evaluate_slo(None);
        let slo = self.aggregator.slo_severity().unwrap_or(Severity::Ok);
        let _ = writeln!(
            out,
            "fleet @ {seed} — map v{}, {} shard(s), {} unreachable, slo {}",
            map.version,
            fleet.shards.len(),
            fleet.unreachable_shards().len(),
            slo.label().to_uppercase(),
        );
        let mut epochs = Vec::new();
        let mut prev = BTreeMap::new();
        for s in &fleet.shards {
            let verdict = match s.verdict {
                0 => "ok",
                1 => "WARN",
                _ => "CRIT",
            };
            let requests = s.requests_total();
            let (rps, restarted) =
                rps_cell(self.prev.get(&s.shard).copied(), requests, s.scraped_at_ns);
            let state = match (s.reachable, restarted) {
                (false, _) => "UNREACHABLE",
                (true, true) => "up restarted",
                (true, false) => "up",
            };
            let compaction = s
                .compaction()
                .map_or(String::new(), |c| format!(" {}", c.render()));
            let _ = writeln!(
                out,
                "shard {:>3} @ {} [{state}] epoch={} health={verdict} requests={requests} \
                 ({rps}) p99={} stale={}ms{compaction}",
                s.shard,
                s.addr,
                s.epoch,
                s.request_p99()
                    .map_or_else(|| "-".to_string(), |v| format!("{v}ns")),
                s.staleness_ns(fleet.at_ns) / 1_000_000,
            );
            if s.reachable {
                epochs.push(s.epoch);
                code = code.max(i32::from(s.verdict));
            } else {
                code = 2;
            }
            prev.insert(s.shard, (requests, s.scraped_at_ns));
        }
        self.prev = prev;
        match (epochs.iter().min(), epochs.iter().max()) {
            (Some(lo), Some(hi)) if lo == hi => {
                let _ = writeln!(out, "epochs aligned @ {lo}");
            }
            (Some(lo), Some(hi)) => {
                let _ = writeln!(out, "epochs {lo}..{hi} (migration in flight)");
            }
            _ => {}
        }
        if let Some(monitor) = self.aggregator.slo_monitor() {
            let burn = monitor.tracker().burn_rates();
            let _ = writeln!(
                out,
                "burn availability: short={:.2} long={:.2} | latency: short={:.2} long={:.2}",
                burn.availability.short,
                burn.availability.long,
                burn.latency.short,
                burn.latency.long,
            );
        }
        code = code.max(verdict_exit_code(slo));
        Ok((out.trim_end().to_string(), code))
    }
}

/// The `top` subcommand: render frames until the count (or the
/// operator) stops it. Returns the last frame's exit code.
pub fn run_top(args: &[String]) -> i32 {
    let parsed = match parse_top_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let seed = match parsed
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("top: cannot resolve `{}`", parsed.addr);
            return 2;
        }
    };
    let mut top = FleetTop::new();
    let mut frame = 0usize;
    loop {
        match top.frame(seed) {
            Ok((text, code)) => {
                if parsed.frames == 0 {
                    // Live mode: repaint in place.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{text}");
                frame += 1;
                if parsed.frames > 0 && frame >= parsed.frames {
                    return code;
                }
            }
            Err(msg) => {
                eprintln!("top: {msg}");
                return 2;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(parsed.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{boot_daemon, parse_serve_args};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn top_args_parse_and_validate() {
        assert!(parse_top_args(&[]).is_err());
        let parsed = parse_top_args(&args(&["127.0.0.1:7411"])).unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:7411");
        assert_eq!(parsed.interval_ms, 2000);
        assert_eq!(parsed.frames, 0);
        let parsed = parse_top_args(&args(&[
            "localhost:9",
            "--interval",
            "100",
            "--frames",
            "3",
        ]))
        .unwrap();
        assert_eq!((parsed.interval_ms, parsed.frames), (100, 3));
        assert!(parse_top_args(&args(&["--interval", "x"])).is_err());
        assert!(parse_top_args(&args(&["a", "b"])).is_err());
    }

    /// Two-shard cluster, two frames: the first has no rps baseline,
    /// the second shows one; killing a shard flips it to UNREACHABLE
    /// with exit code 2 while its last-known data stays on screen.
    #[test]
    fn top_frames_render_a_live_fleet_and_flag_dead_shards() {
        let one = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "2000",
            "--shard",
            "1",
        ]))
        .unwrap();
        let (shard1, _rt1) = boot_daemon(&one).unwrap();
        let zero = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "2000",
            "--shard",
            "0",
            "--peers",
            &format!("1={}", shard1.local_addr()),
        ]))
        .unwrap();
        let (shard0, _rt0) = boot_daemon(&zero).unwrap();

        let mut top = FleetTop::new();
        let (text, code) = top.frame(shard0.local_addr()).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("2 shard(s), 0 unreachable, slo OK"), "{text}");
        assert!(text.contains("shard   0 @"), "{text}");
        assert!(text.contains("shard   1 @"), "{text}");
        assert!(text.contains("(-)"), "first frame has no rps baseline");
        assert!(text.contains("burn availability:"), "{text}");
        assert!(text.contains("gen 0"), "compaction cell renders: {text}");

        // Serve some traffic, then the next frame has an rps figure.
        let client = NetClient::connect(shard0.local_addr());
        for _ in 0..20 {
            client.ping().unwrap();
        }
        let (text, code) = top.frame(shard0.local_addr()).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("/s)"), "second frame shows rps: {text}");

        // Kill shard 1: unreachable, exit 2, last-known data retained.
        shard1.shutdown();
        let (text, code) = top.frame(shard0.local_addr()).unwrap();
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("1 unreachable"), "{text}");
        assert!(text.contains("[UNREACHABLE]"), "{text}");
        shard0.shutdown();
    }

    /// The restart clamp: a counter that runs backwards (shard restart
    /// between scrapes) renders a zero rate and a `restarted` flag —
    /// never a negative or underflowed rps figure.
    #[test]
    fn rps_cell_clamps_restarts_at_zero() {
        // No baseline yet: dash, not restarted.
        assert_eq!(rps_cell(None, 100, 1_000_000_000), ("-".into(), false));
        // Same timestamp (clock didn't advance): no division by zero.
        assert_eq!(
            rps_cell(Some((50, 1_000_000_000)), 100, 1_000_000_000),
            ("-".into(), false)
        );
        // Normal forward progress: 50 requests over 1s.
        assert_eq!(
            rps_cell(Some((50, 1_000_000_000)), 100, 2_000_000_000),
            ("50.0/s".into(), false)
        );
        // Restart: the counter reset below the baseline. Clamped to
        // zero and flagged.
        assert_eq!(
            rps_cell(Some((5000, 1_000_000_000)), 12, 2_000_000_000),
            ("0.0/s".into(), true)
        );
    }

    #[test]
    fn top_frame_errors_on_a_dead_seed() {
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(FleetTop::new().frame(dead).is_err());
        assert_eq!(run_top(&args(&["not an addr"])), 2);
        assert_eq!(run_top(&[]), 2);
    }
}
