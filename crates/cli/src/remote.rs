//! The console's networked face: `serve` boots a `scaddard` daemon
//! around a fresh CM server, `connect` drives a running daemon over the
//! wire with the same line-oriented command style as the local session.
//!
//! ```text
//! scaddar-console serve --disks 4 --blocks 100000 --addr 127.0.0.1:7411
//! scaddar-console serve --check              # boot, health-check, exit 0/1/2
//! scaddar-console connect 127.0.0.1:7411 locate 0 31337
//! scaddar-console connect 127.0.0.1:7411 health   # exit 0/1/2 by verdict
//! ```
//!
//! Both entry points return the process exit code instead of calling
//! `std::process::exit`, so the whole surface is unit-testable; `health`
//! (remote) and `serve --check` map the monitor verdict to the exit
//! status (`OK`=0, `WARN`=1, `CRIT`=2) so CI and operators can gate on
//! them.

use cmsim::{CmServer, ServerConfig, SharedServer};
use scaddar_cluster::FleetAggregator;
use scaddar_core::ScalingOp;
use scaddar_monitor::Severity;
use scaddar_net::{
    fetch_map, ClusterMap, NetClient, NetServerConfig, Scaddard, ServerMode, ShardRuntime,
    StatsFormat,
};
use scaddar_obs::{MonotonicClock, Registry, Tracer};
use std::fmt::Write as _;
use std::io::BufRead;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// Exit code for a health verdict: `OK`=0, `WARN`=1, `CRIT`=2.
pub fn verdict_exit_code(verdict: Severity) -> i32 {
    match verdict {
        Severity::Ok => 0,
        Severity::Warn => 1,
        Severity::Crit => 2,
    }
}

/// Parsed `serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Initial disk count for the fresh CM server.
    pub disks: u32,
    /// Block count of the single pre-registered object.
    pub blocks: u64,
    /// Catalog seed (deterministic placement across restarts).
    pub seed: u64,
    /// Connection cap handed to the daemon.
    pub max_connections: usize,
    /// Serving core: the epoll/poll reactor (default) or the
    /// thread-per-connection reference implementation.
    pub mode: ServerMode,
    /// Reactor worker threads; 0 = one per core. Ignored by
    /// `--threaded`.
    pub workers: usize,
    /// Boot, evaluate health, exit with the verdict instead of serving.
    pub check: bool,
    /// Auto-compaction threshold: `Some(n)` makes the daemon's
    /// generation manager fire a rehash compaction on its own once the
    /// monitor's §4.3 remaining-safe-ops number sinks to `n`.
    pub auto_compact: Option<u32>,
    /// Boot as cluster shard `id`: the daemon answers `FetchMap` and
    /// redirects non-resident objects with `WrongShard`/`StaleMap`.
    pub shard: Option<u32>,
    /// Peer shards for the boot map, as `(id, "host:port")`. Only
    /// meaningful with `--shard`.
    pub peers: Vec<(u32, String)>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7411".into(),
            disks: 4,
            blocks: 100_000,
            seed: 0,
            max_connections: NetServerConfig::default().max_connections,
            mode: ServerMode::EventLoop,
            workers: 0,
            check: false,
            auto_compact: None,
            shard: None,
            peers: Vec::new(),
        }
    }
}

const SERVE_USAGE: &str = "serve [--addr HOST:PORT] [--disks N] [--blocks N] [--seed N] \
                           [--max-conns N] [--event-loop | --threaded] [--workers N] [--check] \
                           [--auto-compact N] [--shard ID [--peers ID=HOST:PORT,...]]";

/// Parses `serve` argv (everything after the subcommand word).
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut parsed = ServeArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\nusage: {SERVE_USAGE}"))
        };
        let bad = |name: &str| format!("{name} needs a numeric value\nusage: {SERVE_USAGE}");
        match arg.as_str() {
            "--addr" => parsed.addr = value("--addr")?,
            "--disks" => {
                parsed.disks = value("--disks")?.parse().map_err(|_| bad("--disks"))?;
            }
            "--blocks" => {
                parsed.blocks = value("--blocks")?.parse().map_err(|_| bad("--blocks"))?;
            }
            "--seed" => parsed.seed = value("--seed")?.parse().map_err(|_| bad("--seed"))?,
            "--max-conns" => {
                parsed.max_connections = value("--max-conns")?
                    .parse()
                    .map_err(|_| bad("--max-conns"))?;
            }
            "--event-loop" => parsed.mode = ServerMode::EventLoop,
            "--threaded" => parsed.mode = ServerMode::Threaded,
            "--workers" => {
                parsed.workers = value("--workers")?.parse().map_err(|_| bad("--workers"))?;
            }
            "--check" => parsed.check = true,
            "--auto-compact" => {
                parsed.auto_compact = Some(
                    value("--auto-compact")?
                        .parse()
                        .map_err(|_| bad("--auto-compact"))?,
                );
            }
            "--shard" => {
                parsed.shard = Some(value("--shard")?.parse().map_err(|_| bad("--shard"))?);
            }
            "--peers" => {
                let list = value("--peers")?;
                parsed.peers = list
                    .split(',')
                    .map(|entry| {
                        let (id, addr) = entry.split_once('=').ok_or_else(|| peers_usage(entry))?;
                        let id = id.parse().map_err(|_| peers_usage(entry))?;
                        if addr.is_empty() {
                            return Err(peers_usage(entry));
                        }
                        Ok((id, addr.to_string()))
                    })
                    .collect::<Result<_, String>>()?;
            }
            other => return Err(format!("unknown argument `{other}`\nusage: {SERVE_USAGE}")),
        }
    }
    if parsed.disks == 0 || parsed.blocks == 0 {
        return Err(format!(
            "--disks and --blocks must be > 0\nusage: {SERVE_USAGE}"
        ));
    }
    if parsed.shard.is_none() && !parsed.peers.is_empty() {
        return Err(format!("--peers requires --shard\nusage: {SERVE_USAGE}"));
    }
    if let Some(id) = parsed.shard {
        if parsed.peers.iter().any(|(peer, _)| *peer == id) {
            return Err(format!(
                "--peers must not repeat the --shard id {id}\nusage: {SERVE_USAGE}"
            ));
        }
    }
    Ok(parsed)
}

fn peers_usage(entry: &str) -> String {
    format!("--peers entry `{entry}` must be ID=HOST:PORT\nusage: {SERVE_USAGE}")
}

/// Boots a `scaddard` daemon per `args`. Returns the running daemon
/// and, in `--shard` mode, its [`ShardRuntime`] — callers decide
/// whether to block (`serve`) or health-check and drop (`serve
/// --check`).
///
/// A shard boots with a map of itself plus `--peers`, then re-addresses
/// its own entry to the actually-bound socket (ephemeral ports), and
/// registers the pre-loaded object as global id 0 so single-shard
/// quick-starts serve it immediately.
pub fn boot_daemon(args: &ServeArgs) -> Result<(Scaddard, Option<Arc<ShardRuntime>>), String> {
    let mut engine_config = ServerConfig::new(args.disks).with_catalog_seed(args.seed);
    if let Some(threshold) = args.auto_compact {
        engine_config = engine_config
            .with_auto_compact(true)
            .with_auto_compact_threshold(threshold);
    }
    let mut server = CmServer::new(engine_config).map_err(|e| format!("engine: {e}"))?;
    server
        .add_object(args.blocks)
        .map_err(|e| format!("engine: {e}"))?;
    let registry = Registry::new();
    // Engine metrics (service rounds, moves, compaction gauges) share
    // the daemon registry, so `ScrapeStats` federation and `top` see
    // them alongside the `net_server_*` family.
    server.attach_stats(cmsim::ServerStats::register_monotonic(&registry));
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 256);
    let config = NetServerConfig {
        max_connections: args.max_connections,
        workers: args.workers,
        ..NetServerConfig::default()
    }
    .with_mode(args.mode);
    let shared = Arc::new(SharedServer::new(server));
    let Some(id) = args.shard else {
        let daemon = Scaddard::bind(args.addr.as_str(), shared, config, &registry, tracer)
            .map_err(|e| format!("bind {}: {e}", args.addr))?;
        return Ok((daemon, None));
    };
    let mut shards = args.peers.clone();
    shards.push((id, args.addr.clone()));
    let runtime = Arc::new(ShardRuntime::new(id, ClusterMap::new(shards)));
    runtime.register_object(0, 0);
    let daemon = Scaddard::bind_sharded(
        args.addr.as_str(),
        shared,
        config,
        &registry,
        tracer,
        Arc::clone(&runtime),
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let bound = daemon.local_addr().to_string();
    if runtime.map().addr_of(id) != Some(bound.as_str()) {
        runtime.install_map(runtime.map().readdress(id, bound));
    }
    Ok((daemon, Some(runtime)))
}

/// The `serve` subcommand: boot, then either health-check (`--check`)
/// or serve until stdin closes. Returns the process exit code.
pub fn run_serve(args: &[String]) -> i32 {
    let parsed = match parse_serve_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let (daemon, runtime) = match boot_daemon(&parsed) {
        Ok(booted) => booted,
        Err(msg) => {
            eprintln!("serve: {msg}");
            return 1;
        }
    };
    if parsed.check {
        let verdict = daemon.health_verdict();
        println!(
            "serve --check: {} disks on {} — health {}",
            parsed.disks,
            daemon.local_addr(),
            verdict.label().to_uppercase(),
        );
        daemon.shutdown();
        return verdict_exit_code(verdict);
    }
    match &runtime {
        Some(runtime) => {
            let map = runtime.map();
            println!(
                "scaddard shard {} serving {} blocks on {} disks at {} \
                 (cluster map v{}, {} shard(s)) — ctrl-d to stop",
                runtime.self_id(),
                parsed.blocks,
                parsed.disks,
                daemon.local_addr(),
                map.version,
                map.len(),
            );
        }
        None => println!(
            "scaddard serving {} blocks on {} disks at {} — ctrl-d to stop",
            parsed.blocks,
            parsed.disks,
            daemon.local_addr()
        ),
    }
    // Block until stdin closes (EOF / ctrl-d), then drain gracefully.
    let mut sink = String::new();
    let stdin = std::io::stdin();
    while matches!(stdin.lock().read_line(&mut sink), Ok(n) if n > 0) {
        sink.clear();
    }
    daemon.shutdown();
    println!("scaddard: drained and stopped");
    0
}

/// The `cluster-status` subcommand: `cluster-status <seed-addr>`.
/// Fetches the cluster map from any shard, then probes every shard in
/// it (ping for the serving epoch, health for the verdict). Returns
/// the worst exit code observed: 0/1/2 by health verdict, 2 when any
/// shard is unreachable.
pub fn run_cluster_status(args: &[String]) -> i32 {
    let [addr_arg] = args else {
        eprintln!("usage: cluster-status <addr>");
        return 2;
    };
    let addr = match addr_arg.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("cluster-status: cannot resolve `{addr_arg}`");
            return 2;
        }
    };
    match cluster_status_report(addr) {
        Ok((out, code)) => {
            println!("{out}");
            code
        }
        Err(msg) => {
            eprintln!("cluster-status: {msg}");
            2
        }
    }
}

/// The `cluster-status` body, unit-testable: `(report text, exit
/// code)`. Errors only when the seed itself won't yield a map.
///
/// Status comes from **one federated scrape round** (a
/// [`FleetAggregator`] pulling `ScrapeStats` from every shard in the
/// map), not N ad-hoc ping/health probes — epoch, verdict, and request
/// totals all ride the same snapshot each shard already exports.
pub fn cluster_status_report(seed: SocketAddr) -> Result<(String, i32), String> {
    let map = fetch_map(&NetClient::connect(seed), 0)
        .map_err(|e| format!("fetch map from {seed}: {e}"))?;
    let mut out = format!(
        "cluster map v{} — {} shard(s), seed {seed}",
        map.version,
        map.len()
    );
    let mut code = 0;
    let mut targets = Vec::new();
    for (shard, addr) in &map.shards {
        match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(resolved) => targets.push((*shard, resolved)),
            None => {
                write!(out, "\n  shard {shard} at {addr} — unresolvable address").expect("write");
                code = code.max(2);
            }
        }
    }
    let mut aggregator = FleetAggregator::new(Arc::new(MonotonicClock::new()));
    let fleet = aggregator.scrape(&targets);
    for s in &fleet.shards {
        if s.reachable {
            let label = match s.verdict {
                0 => "OK",
                1 => "WARN",
                _ => "CRIT",
            };
            write!(
                out,
                "\n  shard {} at {} — epoch {}, health {label} ({} request(s) served)",
                s.shard,
                s.addr,
                s.epoch,
                s.requests_total(),
            )
            .expect("write");
            code = code.max(i32::from(s.verdict));
        } else {
            write!(out, "\n  shard {} at {} — unreachable", s.shard, s.addr).expect("write");
            code = code.max(2);
        }
    }
    Ok((out, code))
}

/// The remote command help, kept verbatim-testable like [`crate::HELP`].
pub const REMOTE_HELP: &str = "\
remote commands:
  locate <object> <block>          AF(): block -> disk (with serving epoch)
  batch <object> <b1,b2,...>       one-epoch batch lookup
  scale add <count>                add a disk group
  scale remove <d1,d2,...>         remove disks (current indices)
  tick [rounds]                    advance service rounds (default 1)
  compact                          begin (or join) an online rehash compaction
  health                           remote health report (exit 0/1/2 one-shot)
  stats [--json]                   server telemetry (Prometheus text, or JSON)
  ping                             liveness probe (returns current epoch)
  help                             this text";

/// One remote console session over a pooled [`NetClient`].
#[derive(Debug)]
pub struct RemoteSession {
    client: NetClient,
}

impl RemoteSession {
    /// Connects (lazily — sockets open per request) to `addr`.
    pub fn connect(addr: SocketAddr) -> RemoteSession {
        RemoteSession {
            client: NetClient::connect(addr),
        }
    }

    /// Executes one remote command line: `(output, exit_code)` on
    /// success — the exit code is nonzero only for WARN/CRIT `health`.
    pub fn execute(&self, line: &str) -> Result<(String, i32), String> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        let Some((&command, args)) = parts.split_first() else {
            return Ok((String::new(), 0));
        };
        let usage = |text: &str| format!("usage: {text}");
        match command {
            "help" => Ok((REMOTE_HELP.to_string(), 0)),
            "locate" => {
                let (object, block) = match args {
                    [o, b] => (
                        o.parse().map_err(|_| usage("locate <object> <block>"))?,
                        b.parse().map_err(|_| usage("locate <object> <block>"))?,
                    ),
                    _ => return Err(usage("locate <object> <block>")),
                };
                let (epoch, disks, disk) = self
                    .client
                    .locate(object, block)
                    .map_err(|e| e.to_string())?;
                Ok((
                    format!("object {object} block {block} -> disk {disk} (epoch {epoch}, {disks} disks)"),
                    0,
                ))
            }
            "batch" => {
                let (object, blocks) = match args {
                    [o, list] => {
                        let object = o.parse().map_err(|_| usage("batch <object> <b1,b2,...>"))?;
                        let blocks: Vec<u64> = list
                            .split(',')
                            .map(str::parse)
                            .collect::<Result<_, _>>()
                            .map_err(|_| usage("batch <object> <b1,b2,...>"))?;
                        (object, blocks)
                    }
                    _ => return Err(usage("batch <object> <b1,b2,...>")),
                };
                let (epoch, disks, locations) = self
                    .client
                    .locate_batch(object, &blocks)
                    .map_err(|e| e.to_string())?;
                let mut out = format!(
                    "object {object}: {} blocks at epoch {epoch} ({disks} disks)",
                    locations.len()
                );
                for (block, disk) in blocks.iter().zip(&locations) {
                    write!(out, "\n  block {block} -> disk {disk}").expect("write to string");
                }
                Ok((out, 0))
            }
            "scale" => {
                let op = match args {
                    ["add", count] => ScalingOp::Add {
                        count: count
                            .parse()
                            .map_err(|_| usage("scale add <count> | scale remove <d1,d2,...>"))?,
                    },
                    ["remove", list] => ScalingOp::Remove {
                        disks: list
                            .split(',')
                            .map(str::parse)
                            .collect::<Result<_, _>>()
                            .map_err(|_| usage("scale add <count> | scale remove <d1,d2,...>"))?,
                    },
                    _ => return Err(usage("scale add <count> | scale remove <d1,d2,...>")),
                };
                let (epoch, disks, queued) = self.client.scale(op).map_err(|e| e.to_string())?;
                Ok((
                    format!("op {epoch}: now {disks} disks; {queued} moves queued"),
                    0,
                ))
            }
            "tick" => {
                let rounds = match args {
                    [] => 1,
                    [n] => n.parse().map_err(|_| usage("tick [rounds]"))?,
                    _ => return Err(usage("tick [rounds]")),
                };
                let backlog = self.client.tick(rounds).map_err(|e| e.to_string())?;
                Ok((format!("backlog: {backlog} moves remaining"), 0))
            }
            "compact" => {
                let status = self.client.compact().map_err(|e| e.to_string())?;
                let out = if status.active {
                    format!(
                        "compaction: generation {} -> {}; {}/{} block(s) migrated, {} move(s) queued",
                        status.generation,
                        status.target_generation,
                        status.migrated,
                        status.total,
                        status.backlog,
                    )
                } else {
                    format!(
                        "compaction flipped instantly: serving generation {}",
                        status.generation
                    )
                };
                Ok((out, 0))
            }
            "health" => {
                let (verdict, alerts, report) = self.client.health().map_err(|e| e.to_string())?;
                Ok((
                    format!("{} ({alerts} alert(s) emitted)", report.trim_end()),
                    i32::from(verdict),
                ))
            }
            "stats" => {
                let format = match args {
                    [] => StatsFormat::Prometheus,
                    ["--json"] => StatsFormat::Json,
                    _ => return Err(usage("stats [--json]")),
                };
                let text = self.client.stats(format).map_err(|e| e.to_string())?;
                Ok((text.trim_end().to_string(), 0))
            }
            "ping" => {
                let epoch = self.client.ping().map_err(|e| e.to_string())?;
                Ok((format!("pong (epoch {epoch})"), 0))
            }
            other => Err(format!("unknown command `{other}` — try `help`")),
        }
    }
}

/// The `connect` subcommand: `connect <addr> [command...]`. With a
/// trailing command it runs one-shot and returns its exit code (so
/// `connect HOST health` gates CI); without, it drops into an
/// interactive remote loop. Returns the process exit code.
pub fn run_connect(args: &[String]) -> i32 {
    let Some((addr_arg, command)) = args.split_first() else {
        eprintln!("usage: connect <addr> [command...]");
        return 2;
    };
    let addr = match addr_arg.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("connect: cannot resolve `{addr_arg}`");
            return 2;
        }
    };
    let session = RemoteSession::connect(addr);
    if !command.is_empty() {
        return match session.execute(&command.join(" ")) {
            Ok((out, code)) => {
                if !out.is_empty() {
                    println!("{out}");
                }
                code
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        };
    }
    println!("connected to {addr} — `help` for commands, ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut last_health_code = 0;
    loop {
        use std::io::Write as _;
        print!("scaddar@{addr}> ");
        stdout.flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        match session.execute(line) {
            Ok((out, code)) => {
                if line.split_whitespace().next() == Some("health") {
                    last_health_code = code;
                }
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(msg) => println!("error: {msg}"),
        }
    }
    last_health_code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_parse_and_validate() {
        assert_eq!(parse_serve_args(&[]).unwrap(), ServeArgs::default());
        let parsed = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--disks",
            "6",
            "--blocks",
            "5000",
            "--seed",
            "9",
            "--max-conns",
            "32",
            "--threaded",
            "--workers",
            "3",
            "--check",
            "--auto-compact",
            "2",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:0");
        assert_eq!((parsed.disks, parsed.blocks, parsed.seed), (6, 5000, 9));
        assert_eq!(parsed.max_connections, 32);
        assert_eq!(parsed.mode, ServerMode::Threaded);
        assert_eq!(parsed.workers, 3);
        assert!(parsed.check);
        assert_eq!(parsed.auto_compact, Some(2));
        assert_eq!(
            parse_serve_args(&args(&["--event-loop"])).unwrap().mode,
            ServerMode::EventLoop
        );
        assert_eq!(parse_serve_args(&[]).unwrap().auto_compact, None);
        assert!(parse_serve_args(&args(&["--disks", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--disks"])).is_err());
        assert!(parse_serve_args(&args(&["--auto-compact", "x"])).is_err());
        assert!(parse_serve_args(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn shard_args_parse_and_validate() {
        let parsed = parse_serve_args(&args(&[
            "--shard",
            "2",
            "--peers",
            "0=127.0.0.1:7411,1=127.0.0.1:7412",
        ]))
        .unwrap();
        assert_eq!(parsed.shard, Some(2));
        assert_eq!(
            parsed.peers,
            vec![
                (0, "127.0.0.1:7411".to_string()),
                (1, "127.0.0.1:7412".to_string())
            ]
        );
        // --peers needs --shard, well-formed entries, and no self-id.
        assert!(parse_serve_args(&args(&["--peers", "0=127.0.0.1:7411"])).is_err());
        assert!(parse_serve_args(&args(&["--shard", "1", "--peers", "junk"])).is_err());
        assert!(parse_serve_args(&args(&["--shard", "1", "--peers", "2="])).is_err());
        assert!(parse_serve_args(&args(&["--shard", "1", "--peers", "1=127.0.0.1:1"])).is_err());
        assert!(parse_serve_args(&args(&["--shard", "x"])).is_err());
    }

    #[test]
    fn check_maps_health_verdicts_to_exit_codes() {
        assert_eq!(verdict_exit_code(Severity::Ok), 0);
        assert_eq!(verdict_exit_code(Severity::Warn), 1);
        assert_eq!(verdict_exit_code(Severity::Crit), 2);
    }

    #[test]
    fn remote_session_drives_a_live_daemon() {
        let parsed = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "4000",
            "--seed",
            "7",
        ]))
        .unwrap();
        let (daemon, runtime) = boot_daemon(&parsed).unwrap();
        assert!(runtime.is_none(), "plain serve has no shard runtime");
        let session = RemoteSession::connect(daemon.local_addr());

        let (out, code) = session.execute("ping").unwrap();
        assert!(out.contains("epoch 0"));
        assert_eq!(code, 0);
        let (out, _) = session.execute("locate 0 1234").unwrap();
        assert!(out.contains("-> disk"));
        let (out, _) = session.execute("batch 0 1,2,3").unwrap();
        assert!(out.contains("3 blocks at epoch 0"));
        let (out, _) = session.execute("scale add 2").unwrap();
        assert!(out.contains("now 6 disks"));
        let (out, _) = session.execute("tick 10000").unwrap();
        assert!(out.contains("backlog: 0"));
        let (out, code) = session.execute("health").unwrap();
        assert!(out.starts_with("health: OK"), "{out}");
        assert_eq!(code, 0, "OK health exits 0");
        let (out, _) = session.execute("stats").unwrap();
        assert!(out.contains("net_server_requests_total"));
        assert!(out.contains("cmsim_compaction_generation"), "{out}");
        assert!(session.execute("locate nope").is_err());
        assert!(session.execute("frobnicate").is_err());
        assert_eq!(session.execute("").unwrap(), (String::new(), 0));
        daemon.shutdown();
    }

    #[test]
    fn remote_compact_migrates_to_the_next_generation() {
        let parsed = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "3000",
            "--seed",
            "11",
        ]))
        .unwrap();
        let (daemon, _) = boot_daemon(&parsed).unwrap();
        let session = RemoteSession::connect(daemon.local_addr());

        let (out, code) = session.execute("compact").unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("generation 0 -> 1"), "{out}");
        let mut rounds = 0;
        loop {
            let (out, _) = session.execute("tick 8").unwrap();
            if out.contains("backlog: 0") {
                break;
            }
            rounds += 1;
            assert!(rounds < 10_000, "migration never drains");
        }
        // The flip landed: the compaction gauges report generation 1
        // with nothing in flight, and lookups still answer.
        let (stats, _) = session.execute("stats").unwrap();
        assert!(stats.contains("cmsim_compaction_generation 1"), "{stats}");
        assert!(stats.contains("cmsim_compaction_active 0"), "{stats}");
        assert!(
            stats.contains("cmsim_compactions_completed_total 1"),
            "{stats}"
        );
        let (out, _) = session.execute("locate 0 1234").unwrap();
        assert!(out.contains("-> disk"));
        daemon.shutdown();
    }

    #[test]
    fn serve_check_exits_zero_on_a_healthy_boot() {
        let code = run_serve(&args(&["--addr", "127.0.0.1:0", "--check"]));
        assert_eq!(code, 0);
        assert_eq!(run_serve(&args(&["--bogus"])), 2);
    }

    /// `serve --shard` + `cluster-status` end to end: boot shard 1
    /// standalone, then shard 0 peered with it; the status probe of
    /// shard 0's map must reach both shards and report them healthy.
    #[test]
    fn shard_serve_and_cluster_status_probe_a_live_cluster() {
        let one = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "2000",
            "--shard",
            "1",
        ]))
        .unwrap();
        let (shard1, runtime1) = boot_daemon(&one).unwrap();
        let runtime1 = runtime1.expect("shard runtime");
        assert_eq!(runtime1.self_id(), 1);
        // The boot map re-addressed shard 1 to its real ephemeral port.
        assert_eq!(
            runtime1.map().addr_of(1),
            Some(shard1.local_addr().to_string().as_str())
        );

        let zero = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--blocks",
            "2000",
            "--shard",
            "0",
            "--peers",
            &format!("1={}", shard1.local_addr()),
        ]))
        .unwrap();
        let (shard0, runtime0) = boot_daemon(&zero).unwrap();
        assert_eq!(runtime0.expect("shard runtime").map().len(), 2);

        let (out, code) = cluster_status_report(shard0.local_addr()).unwrap();
        assert_eq!(code, 0, "both shards healthy:\n{out}");
        assert!(out.contains("2 shard(s)"), "{out}");
        assert!(out.contains("shard 0 at"), "{out}");
        assert!(out.contains("shard 1 at"), "{out}");
        assert_eq!(out.matches("health OK").count(), 2, "{out}");

        // Kill shard 1: the probe now reports it unreachable, exit 2.
        let shard1_addr = shard1.local_addr();
        shard1.shutdown();
        let (out, code) = cluster_status_report(shard0.local_addr()).unwrap();
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains(&format!("shard 1 at {shard1_addr} — unreachable")),
            "{out}"
        );
        shard0.shutdown();
    }

    #[test]
    fn cluster_status_rejects_bad_argv_and_dead_seeds() {
        assert_eq!(run_cluster_status(&[]), 2);
        assert_eq!(run_cluster_status(&args(&["not-an-addr"])), 2);
        // A resolvable but dead seed: fetch_map fails, exit 2.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(cluster_status_report(dead).is_err());
    }
}
