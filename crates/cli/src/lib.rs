//! # scaddar-cli — an operator console for a SCADDAR placement engine
//!
//! A line-oriented command processor over [`scaddar_core::Scaddar`]:
//! create a server, register objects, scale the array, locate and trace
//! blocks, audit balance, and persist/restore the metadata snapshot.
//! The processor is a plain function from input line to output string
//! ([`Session::execute`]), so the whole surface is unit-testable; the
//! `scaddar-console` binary is a thin stdin loop around it.
//!
//! ```text
//! scaddar> init 4
//! server: 4 disks, 32-bit randomness, eps 5%
//! scaddar> add-object 100000
//! object 0: 100000 blocks
//! scaddar> scale add 2
//! op 1: 4 -> 6 disks; moved 33297/100000 blocks (33.30%, optimal 33.33%)
//! scaddar> locate 0 31337
//! object 0 block 31337 -> disk 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scaddar_analysis::{fmt_f64, fmt_pct, Summary};
use scaddar_core::{
    audit_balance, audit_census, EngineStats, ObjectId, Scaddar, ScaddarConfig, ScalingOp,
};
use scaddar_monitor::{HealthMonitor, MonitorConfig, Severity};
use scaddar_obs::{render_trace_dump, MetricValue, MonotonicClock, Registry, TraceContext, Tracer};
use scaddar_prng::Bits;
use std::fmt::Write as _;
use std::sync::Arc;

pub mod fleet;
pub mod profile;
pub mod remote;

/// Errors surfaced to the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Input could not be parsed; the payload explains usage.
    Usage(String),
    /// No server initialized yet.
    NoServer,
    /// The engine rejected the request.
    Engine(String),
    /// Filesystem failure on save/load.
    Io(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::NoServer => write!(f, "no server — run `init <disks>` first"),
            CliError::Engine(msg) => write!(f, "{msg}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// How many completed command spans the session's flight recorder
/// retains for `spans`.
const SPAN_CAPACITY: usize = 256;

/// How many spans `spans` prints when no count is given.
const SPAN_DEFAULT: usize = 16;

/// One interactive session (at most one engine at a time).
///
/// The session owns its own telemetry composition root: a
/// [`Registry`] the engine's [`EngineStats`] record into, a
/// [`Tracer`] that wraps every executed command in a span, and a
/// [`HealthMonitor`] fed after every scaling operation. `metrics`,
/// `spans`, `health`, and `watch` read them back out.
#[derive(Debug)]
pub struct Session {
    engine: Option<Scaddar>,
    epsilon: f64,
    registry: Registry,
    tracer: Tracer,
    monitor: Option<HealthMonitor>,
    /// Commands executed so far — the trace-root sequence number, so
    /// every command span carries a deterministic trace id and `trace
    /// dump` can render it as a tree.
    trace_seq: u64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// The help text, kept verbatim-testable.
pub const HELP: &str = "\
commands:
  init <disks> [bits=32|64] [seed=<u64>] [eps=<f64>]   create a server
  add-object <blocks>                                  register an object
  remove-object <id>                                   delete an object
  objects                                              list objects
  locate <object> <block>                              AF(): block -> disk
  trace <object> <block>                               full remap history
  trace dump [trace-id-hex]                            render flight-recorder traces as trees
  scale add <count>                                    add a disk group
  scale remove <d1,d2,...>                             remove disks (current indices)
  plan add <count> | plan remove <d1,d2,...>           dry-run: predicted movement, no change
  census                                               per-disk block counts
  fairness                                             the §4.3 budget state
  compact                                              rehash to the next generation (REMAP chain -> O(1))
  audit                                                balance + census self-check
  save <path> / load <path>                            persist / restore metadata
  metrics [--json]                                     telemetry (Prometheus text, or JSON)
  spans [n]                                            last n command spans (default 16)
  health                                               one-shot RO1/RO2/§4.3 health report
  watch [frames] [ms]                                  re-render health + key metrics periodically
  help                                                 this text";

impl Session {
    /// A fresh session with no server.
    pub fn new() -> Self {
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), SPAN_CAPACITY);
        Session {
            engine: None,
            epsilon: 0.05,
            registry,
            tracer,
            monitor: None,
            trace_seq: 0,
        }
    }

    /// The session's metric registry (engine stats record into it).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Engine metric handles registered against the session registry.
    fn engine_stats(&self) -> Arc<EngineStats> {
        EngineStats::register(&self.registry, self.tracer.clock().clone())
    }

    /// Direct access to the engine (for embedding in tests/tools).
    pub fn engine(&self) -> Option<&Scaddar> {
        self.engine.as_ref()
    }

    fn engine_mut(&mut self) -> Result<&mut Scaddar, CliError> {
        self.engine.as_mut().ok_or(CliError::NoServer)
    }

    fn engine_ref(&self) -> Result<&Scaddar, CliError> {
        self.engine.as_ref().ok_or(CliError::NoServer)
    }

    /// Executes one command line and returns its output text.
    ///
    /// Every command runs inside a `cmd.<name>` span on the session
    /// tracer (errors are tagged `error=<kind>`), so `spans` doubles as
    /// a command history with timing.
    pub fn execute(&mut self, line: &str) -> Result<String, CliError> {
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        // Each command is the root of its own (deterministic) trace,
        // so `trace dump` can render the flight recorder as trees.
        let ctx = TraceContext::root(0x5CAD_DA25, self.trace_seq);
        self.trace_seq += 1;
        let mut span = self.tracer.span_in(&format!("cmd.{command}"), &ctx, 0);
        let result = self.dispatch(command, &args);
        if let Err(e) = &result {
            span.event(
                "error",
                match e {
                    CliError::Usage(_) => "usage",
                    CliError::NoServer => "no-server",
                    CliError::Engine(_) => "engine",
                    CliError::Io(_) => "io",
                },
            );
        }
        result
    }

    fn dispatch(&mut self, command: &str, args: &[&str]) -> Result<String, CliError> {
        match command {
            "help" => Ok(HELP.to_string()),
            "init" => self.cmd_init(args),
            "add-object" => self.cmd_add_object(args),
            "remove-object" => self.cmd_remove_object(args),
            "objects" => self.cmd_objects(),
            "locate" => self.cmd_locate(args),
            "trace" => self.cmd_trace(args),
            "scale" => self.cmd_scale(args),
            "plan" => self.cmd_plan(args),
            "census" => self.cmd_census(),
            "fairness" => self.cmd_fairness(),
            "compact" => self.cmd_compact(),
            "audit" => self.cmd_audit(),
            "save" => self.cmd_save(args),
            "load" => self.cmd_load(args),
            "metrics" => self.cmd_metrics(args),
            "spans" => self.cmd_spans(args),
            "health" => self.cmd_health(),
            "watch" => self.cmd_watch(args),
            other => Err(CliError::Usage(format!(
                "unknown command `{other}` — try `help`"
            ))),
        }
    }

    fn cmd_metrics(&self, args: &[&str]) -> Result<String, CliError> {
        match args {
            [] => Ok(self.registry.render_prometheus().trim_end().to_string()),
            ["--json"] => Ok(self.registry.snapshot_json().trim_end().to_string()),
            _ => Err(CliError::Usage("metrics [--json]".into())),
        }
    }

    fn cmd_spans(&self, args: &[&str]) -> Result<String, CliError> {
        let n = match args {
            [] => SPAN_DEFAULT,
            [n] => n
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| CliError::Usage("spans [n]".into()))?,
            _ => return Err(CliError::Usage("spans [n]".into())),
        };
        let timeline = self.tracer.render_recent(n);
        if timeline.is_empty() {
            return Ok("no spans recorded".to_string());
        }
        Ok(timeline.trim_end().to_string())
    }

    /// A health monitor synced to `engine`, mirroring its state
    /// (`monitor_*` metrics) into the session registry.
    fn monitor_for(&self, engine: &Scaddar) -> HealthMonitor {
        let mut monitor = HealthMonitor::for_engine(
            MonitorConfig::default(),
            self.tracer.clock().clone(),
            engine,
        );
        monitor.attach_registry(&self.registry);
        monitor.evaluate_budget();
        monitor
    }

    /// Feeds the monitor everything new: fresh scale-op movements and
    /// the current load census.
    fn feed_monitor(&mut self) {
        if let (Some(monitor), Some(engine)) = (self.monitor.as_mut(), self.engine.as_ref()) {
            monitor.observe_engine(engine);
            monitor.observe_census(&engine.load_distribution());
        }
    }

    /// The current health verdict (`None` without a server), after
    /// feeding the monitor the engine's latest state — the process
    /// exit-code hook behind `health` (nonzero on WARN/CRIT, so
    /// operators and CI can gate on it).
    pub fn health_verdict(&mut self) -> Option<Severity> {
        self.engine.as_ref()?;
        self.feed_monitor();
        let monitor = self.monitor.as_ref().expect("engine implies monitor");
        Some(monitor.report().verdict())
    }

    fn cmd_health(&mut self) -> Result<String, CliError> {
        self.engine_ref()?;
        self.feed_monitor();
        let engine = self.engine.as_ref().expect("engine_ref checked");
        let monitor = self.monitor.as_ref().expect("engine implies monitor");
        let mut out = monitor.report().render().trim_end().to_string();
        // The §4.3 headline number an operator plans around: how many
        // more scaling ops fit in the fairness budget before a rehash
        // (`compact`) is the prescribed remedy.
        write!(
            out,
            "\ngeneration {}: {} safe scaling op(s) remaining in the §4.3 budget",
            engine.generation(),
            monitor.budget_remaining()
        )
        .expect("write to string");
        let events = monitor.events();
        if !events.is_empty() {
            let shown = events.len().min(5);
            write!(out, "\nlast {shown} of {} event(s):", events.len()).expect("write to string");
            for e in &events[events.len() - shown..] {
                write!(
                    out,
                    "\n  [{:<4}] {} — {}",
                    e.severity.label(),
                    e.kind,
                    e.detail
                )
                .expect("write to string");
            }
        }
        Ok(out)
    }

    fn cmd_watch(&mut self, args: &[&str]) -> Result<String, CliError> {
        let usage = || CliError::Usage("watch [frames] [ms]".into());
        let frames: usize = match args.first() {
            None => 3,
            Some(n) => n
                .parse()
                .ok()
                .filter(|n| (1..=100).contains(n))
                .ok_or_else(usage)?,
        };
        let interval_ms: u64 = match args.get(1) {
            None => 500,
            Some(ms) => ms
                .parse()
                .ok()
                .filter(|ms| *ms <= 10_000)
                .ok_or_else(usage)?,
        };
        if args.len() > 2 {
            return Err(usage());
        }
        self.engine_ref()?;
        let mut out = String::new();
        for frame in 0..frames {
            if frame > 0 {
                if interval_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                }
                out.push('\n');
            }
            writeln!(out, "--- frame {}/{frames} ---", frame + 1).expect("write to string");
            self.feed_monitor();
            let monitor = self.monitor.as_ref().expect("engine implies monitor");
            out.push_str(monitor.report().render().trim_end());
            out.push_str("\nkey metrics:");
            for name in [
                "scaddar_core_scale_ops_total",
                "scaddar_core_xcache_hits_total",
                "cmsim_server_backlog",
                "monitor_budget_remaining_ops",
                "monitor_alerts_total",
            ] {
                let rendered = match self.registry.value(name) {
                    Some(MetricValue::Counter(c)) => c.to_string(),
                    Some(MetricValue::Gauge(g)) => g.to_string(),
                    Some(MetricValue::Histogram(h)) => format!("count={}", h.count),
                    None => continue,
                };
                write!(out, "\n  {name:<36} {rendered}").expect("write to string");
            }
            out.push('\n');
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_init(&mut self, args: &[&str]) -> Result<String, CliError> {
        let usage = || CliError::Usage("init <disks> [bits=32|64] [seed=<u64>] [eps=<f64>]".into());
        let disks: u32 = args
            .first()
            .ok_or_else(usage)?
            .parse()
            .map_err(|_| usage())?;
        let mut config = ScaddarConfig::new(disks);
        for kv in &args[1..] {
            let (key, value) = kv.split_once('=').ok_or_else(usage)?;
            match key {
                "bits" => {
                    let b: u8 = value.parse().map_err(|_| usage())?;
                    config.bits = Bits::new(b)
                        .filter(|b| *b == Bits::B32 || *b == Bits::B64)
                        .ok_or_else(usage)?;
                }
                "seed" => config.catalog_seed = value.parse().map_err(|_| usage())?,
                "eps" => {
                    config.epsilon = value.parse().map_err(|_| usage())?;
                    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
                        return Err(usage());
                    }
                }
                _ => return Err(usage()),
            }
        }
        self.epsilon = config.epsilon;
        let mut engine = Scaddar::new(config).map_err(|e| CliError::Engine(e.to_string()))?;
        engine.attach_stats(self.engine_stats());
        let summary = format!(
            "server: {} disks, {}-bit randomness, eps {}",
            engine.disks(),
            config.bits.get(),
            fmt_pct(config.epsilon)
        );
        self.monitor = Some(self.monitor_for(&engine));
        self.engine = Some(engine);
        Ok(summary)
    }

    fn cmd_add_object(&mut self, args: &[&str]) -> Result<String, CliError> {
        let blocks: u64 = args
            .first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| CliError::Usage("add-object <blocks>".into()))?;
        let id = self.engine_mut()?.add_object(blocks);
        Ok(format!("{id}: {blocks} blocks"))
    }

    fn cmd_remove_object(&mut self, args: &[&str]) -> Result<String, CliError> {
        let id: u64 = args
            .first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| CliError::Usage("remove-object <id>".into()))?;
        let obj = self
            .engine_mut()?
            .remove_object(ObjectId(id))
            .map_err(|e| CliError::Engine(e.to_string()))?;
        Ok(format!("removed {} ({} blocks)", obj.id, obj.blocks))
    }

    fn cmd_objects(&self) -> Result<String, CliError> {
        let engine = self.engine_ref()?;
        let objects = engine.catalog().objects();
        if objects.is_empty() {
            return Ok("no objects".to_string());
        }
        let mut out = String::new();
        for obj in objects {
            writeln!(
                out,
                "{}: {} blocks (seed {:#018x})",
                obj.id, obj.blocks, obj.seed
            )
            .expect("write to string");
        }
        out.pop();
        Ok(out)
    }

    fn parse_object_block(args: &[&str], usage: &str) -> Result<(ObjectId, u64), CliError> {
        let err = || CliError::Usage(usage.to_string());
        let object: u64 = args.first().and_then(|a| a.parse().ok()).ok_or_else(err)?;
        let block: u64 = args.get(1).and_then(|a| a.parse().ok()).ok_or_else(err)?;
        Ok((ObjectId(object), block))
    }

    fn cmd_locate(&self, args: &[&str]) -> Result<String, CliError> {
        let (object, block) = Self::parse_object_block(args, "locate <object> <block>")?;
        let disk = self
            .engine_ref()?
            .locate(object, block)
            .map_err(|e| CliError::Engine(e.to_string()))?;
        Ok(format!("{object} block {block} -> {disk}"))
    }

    /// `trace dump` — renders the flight recorder's traces as trees
    /// ([`render_trace_dump`]): every distinct trace with no argument,
    /// one named trace with a hex id.
    fn cmd_trace_dump(&self, args: &[&str]) -> Result<String, CliError> {
        let usage = || CliError::Usage("trace dump [trace-id-hex]".into());
        let spans = self.tracer.recent(SPAN_CAPACITY);
        match args {
            [] => {
                let mut ids: Vec<u64> = Vec::new();
                for s in &spans {
                    if s.trace_id != 0 && !ids.contains(&s.trace_id) {
                        ids.push(s.trace_id);
                    }
                }
                if ids.is_empty() {
                    return Ok("no traces recorded".to_string());
                }
                let mut out = format!("{} trace(s) in the flight recorder\n", ids.len());
                for id in ids {
                    let _ = write!(
                        out,
                        "--- trace {id:016x} ---\n{}",
                        render_trace_dump(&spans, id)
                    );
                }
                Ok(out.trim_end().to_string())
            }
            [hex] => {
                let id =
                    u64::from_str_radix(hex.trim_start_matches("0x"), 16).map_err(|_| usage())?;
                let dump = render_trace_dump(&spans, id);
                if dump.is_empty() {
                    return Err(CliError::Engine(format!(
                        "no spans for trace {id:016x} in the flight recorder"
                    )));
                }
                Ok(dump.trim_end().to_string())
            }
            _ => Err(usage()),
        }
    }

    fn cmd_trace(&self, args: &[&str]) -> Result<String, CliError> {
        if args.first() == Some(&"dump") {
            return self.cmd_trace_dump(&args[1..]);
        }
        let (object, block) = Self::parse_object_block(args, "trace <object> <block>")?;
        let steps = self
            .engine_ref()?
            .trace(object, block)
            .map_err(|e| CliError::Engine(e.to_string()))?;
        let mut out = String::new();
        for step in steps {
            writeln!(
                out,
                "epoch {:>3}: X={:<20} N={:<5} disk {}{}",
                step.epoch,
                step.x,
                step.disks,
                step.disk.0,
                if step.moved { "  (moved)" } else { "" }
            )
            .expect("write to string");
        }
        out.pop();
        Ok(out)
    }

    fn cmd_scale(&mut self, args: &[&str]) -> Result<String, CliError> {
        let op = Self::parse_op(args, "scale add <count> | scale remove <d1,d2,...>")?;
        let engine = self.engine_mut()?;
        let before = engine.disks();
        let warn = if !engine.next_op_is_safe(
            op.disks_after(before)
                .map_err(|e| CliError::Engine(e.to_string()))?,
        ) {
            "\nwarning: §4.3 fairness budget exceeded — schedule a full redistribution"
        } else {
            ""
        };
        let plan = engine
            .scale(op)
            .map_err(|e| CliError::Engine(e.to_string()))?;
        let out = format!(
            "op {}: {} -> {} disks; moved {}/{} blocks ({}, optimal {}){warn}",
            engine.epoch(),
            before,
            engine.disks(),
            plan.moves.len(),
            plan.total_blocks,
            fmt_pct(plan.moved_fraction()),
            fmt_pct(plan.optimal_fraction),
        );
        self.feed_monitor();
        Ok(out)
    }

    /// Parses `add <count>` / `remove <list>` argument forms.
    fn parse_op(args: &[&str], usage: &str) -> Result<ScalingOp, CliError> {
        let err = || CliError::Usage(usage.to_string());
        match (args.first().copied(), args.get(1)) {
            (Some("add"), Some(count)) => Ok(ScalingOp::Add {
                count: count.parse().map_err(|_| err())?,
            }),
            (Some("remove"), Some(list)) => {
                let disks: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
                Ok(ScalingOp::Remove {
                    disks: disks.map_err(|_| err())?,
                })
            }
            _ => Err(err()),
        }
    }

    fn cmd_plan(&self, args: &[&str]) -> Result<String, CliError> {
        let op = Self::parse_op(args, "plan add <count> | plan remove <d1,d2,...>")?;
        let engine = self.engine_ref()?;
        // Dry-run on a clone; the live engine is untouched. Detach the
        // shared stat handles so the preview doesn't show up as a real
        // scale op in `metrics`.
        let mut probe = engine.clone();
        probe.detach_stats();
        let disks_after = op
            .disks_after(engine.disks())
            .map_err(|e| CliError::Engine(e.to_string()))?;
        let safe = engine.next_op_is_safe(disks_after);
        let plan = probe
            .scale(op)
            .map_err(|e| CliError::Engine(e.to_string()))?;
        Ok(format!(
            "dry run: {} -> {} disks; would move {}/{} blocks ({}, optimal {}); within eps budget: {}",
            engine.disks(),
            disks_after,
            plan.moves.len(),
            plan.total_blocks,
            fmt_pct(plan.moved_fraction()),
            fmt_pct(plan.optimal_fraction),
            if safe { "yes" } else { "NO" },
        ))
    }

    fn cmd_census(&self) -> Result<String, CliError> {
        let engine = self.engine_ref()?;
        let census = engine.load_distribution();
        let summary = Summary::of_counts(&census);
        let mut out = String::new();
        for (d, &c) in census.iter().enumerate() {
            writeln!(out, "disk {d:>3}: {c}").expect("write to string");
        }
        write!(
            out,
            "total {} blocks, CoV {}",
            census.iter().sum::<u64>(),
            fmt_f64(summary.cov, 4)
        )
        .expect("write to string");
        Ok(out)
    }

    fn cmd_fairness(&self) -> Result<String, CliError> {
        let engine = self.engine_ref()?;
        let report = engine.fairness();
        let safe = engine.next_op_is_safe(engine.disks());
        Ok(format!(
            "operations: {}\nsigma_k: {}\nguaranteed cycles: {}\nunfairness bound: {}\nnext op within eps={}? {}",
            report.operations,
            report.sigma,
            report.guaranteed_range,
            fmt_f64(report.unfairness_bound, 8),
            fmt_pct(self.epsilon),
            if safe { "yes" } else { "NO — redistribute in full" },
        ))
    }

    /// `compact` — the console owns a bare metadata engine (no block
    /// store to migrate), so this is the **offline** rehash: replace
    /// the engine with its next generation in place. The online,
    /// rate-limited cutover lives behind the daemon's `compact`
    /// (`scaddar connect`).
    fn cmd_compact(&mut self) -> Result<String, CliError> {
        let engine = self.engine_mut()?;
        let from = engine.generation();
        let total = engine.catalog().total_blocks();
        let moved = engine.rehash_to_next_generation();
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.note_compaction_started(from, from + 1, moved);
            monitor.note_compaction_completed(from + 1, total);
        }
        // Replaying the flipped engine's (empty) log is what refills
        // the monitor's §4.3 budget probe.
        self.feed_monitor();
        Ok(format!(
            "compacted: generation {} -> {}; {}/{} block(s) re-placed; \
             REMAP chain length 0, fairness budget reset",
            from,
            from + 1,
            moved,
            total,
        ))
    }

    fn cmd_audit(&self) -> Result<String, CliError> {
        let engine = self.engine_ref()?;
        let tolerance = scaddar_core::audit::suggested_tolerance(engine.catalog(), engine.log());
        let balance = audit_balance(engine.catalog(), engine.log(), tolerance);
        let census = engine.load_distribution();
        let consistency = audit_census(engine.catalog(), engine.log(), &census);
        let mut out = format!(
            "balance audit (tolerance {}): {}",
            fmt_pct(tolerance),
            if balance.passed() { "PASS" } else { "FAIL" }
        );
        for f in &balance.findings {
            write!(out, "\n  {f:?}").expect("write to string");
        }
        write!(
            out,
            "\ncensus self-consistency: {}",
            if consistency.passed() { "PASS" } else { "FAIL" }
        )
        .expect("write to string");
        Ok(out)
    }

    fn cmd_save(&self, args: &[&str]) -> Result<String, CliError> {
        let path = args
            .first()
            .ok_or_else(|| CliError::Usage("save <path>".into()))?;
        let bytes = self.engine_ref()?.snapshot();
        std::fs::write(path, &bytes).map_err(|e| CliError::Io(e.to_string()))?;
        Ok(format!("saved {} bytes to {path}", bytes.len()))
    }

    fn cmd_load(&mut self, args: &[&str]) -> Result<String, CliError> {
        let path = args
            .first()
            .ok_or_else(|| CliError::Usage("load <path>".into()))?;
        let bytes = std::fs::read(path).map_err(|e| CliError::Io(e.to_string()))?;
        let engine =
            Scaddar::from_snapshot_with_stats(&bytes, self.epsilon, Some(self.engine_stats()))
                .map_err(|e| CliError::Engine(e.to_string()))?;
        let summary = format!(
            "restored: {} disks, {} objects, epoch {}",
            engine.disks(),
            engine.catalog().objects().len(),
            engine.epoch()
        );
        self.monitor = Some(self.monitor_for(&engine));
        self.engine = Some(engine);
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut Session, line: &str) -> String {
        session
            .execute(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"))
    }

    #[test]
    fn full_operator_session() {
        let mut s = Session::new();
        assert!(run(&mut s, "init 4 seed=9").contains("4 disks"));
        assert!(run(&mut s, "add-object 10000").starts_with("object 0"));
        let loc = run(&mut s, "locate 0 1234");
        assert!(loc.contains("-> disk"));
        let scale = run(&mut s, "scale add 2");
        assert!(scale.contains("4 -> 6 disks"));
        assert!(scale.contains("optimal 33.33%"));
        // Location may have changed but must stay valid.
        let census = run(&mut s, "census");
        assert!(census.contains("disk   5:"));
        assert!(census.contains("total 10000 blocks"));
        let fairness = run(&mut s, "fairness");
        assert!(fairness.contains("operations: 1"));
        assert!(fairness.contains("yes"));
        let audit = run(&mut s, "audit");
        assert!(audit.contains("PASS"));
        assert!(!audit.contains("FAIL"));
    }

    #[test]
    fn trace_shows_history() {
        let mut s = Session::new();
        run(&mut s, "init 6 seed=1");
        run(&mut s, "add-object 100");
        run(&mut s, "scale remove 4");
        let trace = run(&mut s, "trace 0 7");
        assert_eq!(trace.lines().count(), 2);
        assert!(trace.contains("epoch   0"));
        assert!(trace.contains("epoch   1"));
    }

    #[test]
    fn trace_dump_renders_command_trees() {
        let mut s = Session::new();
        assert_eq!(run(&mut s, "trace dump"), "no traces recorded");
        run(&mut s, "init 4 seed=1");
        run(&mut s, "add-object 100");
        let dump = run(&mut s, "trace dump");
        assert!(dump.contains("cmd.init"), "{dump}");
        assert!(dump.contains("cmd.add-object"), "{dump}");
        assert!(dump.contains("--- trace "), "{dump}");
        // A named trace renders alone; dumps are seed-deterministic,
        // so the same command sequence yields the same trace ids.
        let id = dump
            .lines()
            .find(|l| l.contains("cmd.init"))
            .and_then(|l| l.split("trace=").nth(1))
            .and_then(|l| l.split_whitespace().next())
            .unwrap()
            .to_string();
        let one = run(&mut s, &format!("trace dump {id}"));
        assert!(one.contains("cmd.init"), "{one}");
        assert!(!one.contains("cmd.add-object"), "{one}");
        // Same command sequence (`trace dump` was command 0, `init`
        // command 1) → same deterministic trace ids.
        let mut other = Session::new();
        other.execute("trace dump").unwrap();
        other.execute("init 4 seed=1").unwrap();
        assert!(run(&mut other, "trace dump").contains(&format!("trace {id}")));
        assert!(matches!(
            s.execute("trace dump zzz"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            s.execute("trace dump 1"),
            Err(CliError::Engine(_))
        ));
    }

    #[test]
    fn errors_are_friendly() {
        let mut s = Session::new();
        assert_eq!(s.execute("census"), Err(CliError::NoServer));
        assert!(matches!(s.execute("init"), Err(CliError::Usage(_))));
        assert!(matches!(s.execute("bogus"), Err(CliError::Usage(_))));
        run(&mut s, "init 4");
        assert!(matches!(s.execute("locate 9 0"), Err(CliError::Engine(_))));
        assert!(matches!(
            s.execute("scale remove 99"),
            Err(CliError::Engine(_))
        ));
        assert!(matches!(
            s.execute("init 4 bits=13"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            s.execute("init 4 eps=2.0"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let path = std::env::temp_dir().join("scaddar-cli-test.snap");
        let path_s = path.to_str().unwrap();
        let mut s = Session::new();
        run(&mut s, "init 5 seed=77");
        run(&mut s, "add-object 5000");
        run(&mut s, "scale add 1");
        let before = run(&mut s, "locate 0 4321");
        assert!(run(&mut s, &format!("save {path_s}")).contains("saved"));

        let mut fresh = Session::new();
        let restored = run(&mut fresh, &format!("load {path_s}"));
        assert!(restored.contains("6 disks"));
        assert_eq!(run(&mut fresh, "locate 0 4321"), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_warning_fires() {
        let mut s = Session::new();
        run(&mut s, "init 8 eps=0.05");
        let mut warned = false;
        for i in 0..20 {
            let out = if i % 2 == 0 {
                run(&mut s, "scale remove 0")
            } else {
                run(&mut s, "scale add 1")
            };
            if out.contains("warning") {
                warned = true;
                break;
            }
        }
        assert!(warned, "the §4.3 warning never fired");
    }

    #[test]
    fn empty_line_is_silent_and_help_is_stable() {
        let mut s = Session::new();
        assert_eq!(s.execute("   ").unwrap(), "");
        assert!(s.execute("help").unwrap().contains("scale add <count>"));
    }

    #[test]
    fn metrics_renders_valid_prometheus_exposition() {
        let mut s = Session::new();
        run(&mut s, "init 4 seed=3");
        run(&mut s, "add-object 2000");
        for b in 0..200 {
            run(&mut s, &format!("locate 0 {b}"));
        }
        run(&mut s, "scale add 2");
        let text = run(&mut s, "metrics");
        assert!(text.contains("# TYPE scaddar_core_xcache_hits_total counter"));
        assert!(text.contains("scaddar_core_xcache_hits_total 200"));
        assert!(text.contains("scaddar_core_scale_ops_total 1"));
        assert!(text.contains("# TYPE scaddar_core_locate_ns histogram"));
        assert!(text.contains("scaddar_core_locate_ns_bucket{le=\"+Inf\"}"));
        // Exposition shape: every line is a comment or `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn metrics_json_round_trips_through_hand_parsing() {
        let mut s = Session::new();
        run(&mut s, "init 4 seed=3");
        run(&mut s, "add-object 1000");
        for b in 0..65 {
            run(&mut s, &format!("locate 0 {b}"));
        }
        run(&mut s, "scale add 1");
        let json = run(&mut s, "metrics --json");
        let values = scaddar_obs::registry::parse_json_values(&json);
        let get = |name: &str, field: &str| {
            values
                .iter()
                .find(|(n, f, _)| n == name && f == field)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(get("scaddar_core_xcache_hits_total", "value"), Some(65.0));
        assert_eq!(get("scaddar_core_scale_ops_total", "value"), Some(1.0));
        assert_eq!(get("scaddar_core_plan_blocks_total", "value"), Some(1000.0));
        // Mask 1023 samples only call 0 out of these 65.
        assert_eq!(get("scaddar_core_locate_ns", "count"), Some(1.0));
        assert!(matches!(
            s.execute("metrics --yaml"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn plan_preview_stays_out_of_the_metrics() {
        let mut s = Session::new();
        run(&mut s, "init 4 seed=3");
        run(&mut s, "add-object 500");
        run(&mut s, "plan add 2");
        let text = run(&mut s, "metrics");
        assert!(text.contains("scaddar_core_scale_ops_total 0"));
    }

    #[test]
    fn spans_are_a_command_history_with_errors_tagged() {
        let mut s = Session::new();
        assert_eq!(run(&mut s, "spans"), "no spans recorded");
        run(&mut s, "init 4 seed=1");
        run(&mut s, "add-object 100");
        let _ = s.execute("locate 99 0"); // engine error
        let spans = run(&mut s, "spans");
        assert!(spans.contains("cmd.init"));
        assert!(spans.contains("cmd.add-object"));
        assert!(spans.contains("cmd.locate error=engine"));
        assert!(
            spans.contains("cmd.spans"),
            "the first `spans` call is itself recorded"
        );
        assert_eq!(run(&mut s, "spans 1").lines().count(), 1);
        assert!(matches!(s.execute("spans 0"), Err(CliError::Usage(_))));
        assert!(matches!(s.execute("spans x y"), Err(CliError::Usage(_))));
    }

    #[test]
    fn restore_is_counted_in_the_new_session_registry() {
        let path = std::env::temp_dir().join("scaddar-cli-metrics-test.snap");
        let path_s = path.to_str().unwrap();
        let mut s = Session::new();
        run(&mut s, "init 4 seed=11");
        run(&mut s, "add-object 300");
        run(&mut s, &format!("save {path_s}"));
        let saved = run(&mut s, "metrics");
        assert!(saved.contains("scaddar_core_persist_bytes_written_total"));

        let mut fresh = Session::new();
        run(&mut fresh, &format!("load {path_s}"));
        let json = run(&mut fresh, "metrics --json");
        let values = scaddar_obs::registry::parse_json_values(&json);
        let bytes_read = values
            .iter()
            .find(|(n, f, _)| n == "scaddar_core_persist_bytes_read_total" && f == "value")
            .map(|(_, _, v)| *v)
            .unwrap();
        assert!(bytes_read > 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn health_reports_ok_for_a_clean_session() {
        let mut s = Session::new();
        assert_eq!(s.execute("health"), Err(CliError::NoServer));
        run(&mut s, "init 6 seed=4");
        run(&mut s, "add-object 12000");
        run(&mut s, "scale add 2");
        run(&mut s, "scale remove 3");
        let health = run(&mut s, "health");
        assert!(health.starts_with("health: OK"), "{health}");
        assert!(health.contains("ro1/ro1-deviation"));
        assert!(health.contains("ro2/ro2-chi-square"));
        assert!(health.contains("budget/rehash-advised"));
        assert!(!health.contains("[warn]"), "{health}");
        assert!(!health.contains("[crit]"), "{health}");
    }

    #[test]
    fn health_flags_an_exhausted_fairness_budget() {
        let mut s = Session::new();
        run(&mut s, "init 8 eps=0.05");
        run(&mut s, "add-object 500");
        // Burn the §4.3 budget with remove/add round-trips, ignoring
        // the scale-time warnings like a careless operator.
        for i in 0..24 {
            let line = if i % 2 == 0 {
                "scale remove 0"
            } else {
                "scale add 1"
            };
            run(&mut s, line);
        }
        let health = run(&mut s, "health");
        assert!(health.starts_with("health: CRIT"), "{health}");
        assert!(health.contains("rehash-advised"), "{health}");
        assert!(health.contains("full redistribution advised"), "{health}");
    }

    #[test]
    fn health_prints_the_remaining_safe_ops_number() {
        let mut s = Session::new();
        run(&mut s, "init 6 seed=4");
        run(&mut s, "add-object 5000");
        let health = run(&mut s, "health");
        assert!(
            health.contains("safe scaling op(s) remaining in the §4.3 budget"),
            "{health}"
        );
        assert!(health.contains("generation 0:"), "{health}");
    }

    #[test]
    fn compact_collapses_the_chain_and_resets_the_budget() {
        let mut s = Session::new();
        run(&mut s, "init 8 eps=0.05");
        run(&mut s, "add-object 500");
        for i in 0..24 {
            run(
                &mut s,
                if i % 2 == 0 {
                    "scale remove 0"
                } else {
                    "scale add 1"
                },
            );
        }
        assert!(run(&mut s, "health").starts_with("health: CRIT"));
        let before = run(&mut s, "locate 0 123");
        assert!(before.contains("-> disk"));

        let out = run(&mut s, "compact");
        assert!(out.contains("generation 0 -> 1"), "{out}");
        assert!(out.contains("fairness budget reset"), "{out}");

        // Chain collapsed, budget refilled, engine still serves.
        let health = run(&mut s, "health");
        assert!(health.starts_with("health: OK"), "{health}");
        assert!(health.contains("generation 1:"), "{health}");
        assert!(health.contains("compaction-complete"), "{health}");
        let fairness = run(&mut s, "fairness");
        assert!(fairness.contains("operations: 0"), "{fairness}");
        assert!(run(&mut s, "locate 0 123").contains("-> disk"));
        assert!(run(&mut s, "audit").contains("PASS"));
        // A second compact keeps counting generations.
        assert!(run(&mut s, "compact").contains("generation 1 -> 2"));
    }

    #[test]
    fn watch_renders_frames_with_key_metrics() {
        let mut s = Session::new();
        run(&mut s, "init 4 seed=2");
        run(&mut s, "add-object 3000");
        run(&mut s, "scale add 1");
        let watch = run(&mut s, "watch 2 0");
        assert_eq!(watch.matches("--- frame").count(), 2);
        assert!(watch.contains("--- frame 1/2 ---"));
        assert!(watch.contains("--- frame 2/2 ---"));
        assert!(watch.contains("health: OK"));
        assert!(watch.contains("scaddar_core_scale_ops_total"));
        assert!(watch.contains("monitor_budget_remaining_ops"));
        assert!(matches!(s.execute("watch 0"), Err(CliError::Usage(_))));
        assert!(matches!(s.execute("watch 2 0 9"), Err(CliError::Usage(_))));
        assert!(matches!(
            s.execute("watch 2 999999"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn object_listing_and_removal() {
        let mut s = Session::new();
        run(&mut s, "init 4");
        assert_eq!(run(&mut s, "objects"), "no objects");
        run(&mut s, "add-object 10");
        run(&mut s, "add-object 20");
        let listing = run(&mut s, "objects");
        assert_eq!(listing.lines().count(), 2);
        assert!(run(&mut s, "remove-object 0").contains("removed object 0"));
        assert_eq!(run(&mut s, "objects").lines().count(), 1);
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// No input line may ever panic the session — errors yes, panics
        /// never (the console faces operators and scripts).
        #[test]
        fn arbitrary_lines_never_panic(lines in proptest::collection::vec(".{0,60}", 0..20)) {
            let mut session = Session::new();
            for line in &lines {
                let _ = session.execute(line);
            }
        }

        /// Same, but with token soup biased toward real commands and
        /// numbers, which reaches much deeper into the handlers.
        #[test]
        fn command_soup_never_panics(
            tokens in proptest::collection::vec(
                prop_oneof![
                    Just("init".to_string()),
                    Just("add-object".to_string()),
                    Just("scale".to_string()),
                    Just("add".to_string()),
                    Just("remove".to_string()),
                    Just("locate".to_string()),
                    Just("trace".to_string()),
                    Just("census".to_string()),
                    Just("fairness".to_string()),
                    Just("audit".to_string()),
                    Just("objects".to_string()),
                    Just("remove-object".to_string()),
                    Just("bits=64".to_string()),
                    Just("eps=0.05".to_string()),
                    Just("health".to_string()),
                    Just("compact".to_string()),
                    (0u64..100).prop_map(|n| n.to_string()),
                    Just("0,1,2".to_string()),
                ],
                0..120,
            ),
            width in 1usize..5,
        ) {
            let mut session = Session::new();
            for line_tokens in tokens.chunks(width) {
                let line = line_tokens.join(" ");
                let _ = session.execute(&line);
            }
            // Whatever happened, an initialized session must still work.
            let _ = session.execute("init 4");
            prop_assert!(session.execute("census").is_ok());
        }
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn plan_is_a_side_effect_free_preview() {
        let mut s = Session::new();
        s.execute("init 4 seed=1").unwrap();
        s.execute("add-object 20000").unwrap();
        let preview = s.execute("plan add 2").unwrap();
        assert!(preview.contains("4 -> 6 disks"));
        assert!(preview.contains("optimal 33.33%"));
        assert!(preview.contains("within eps budget: yes"));
        // Nothing changed.
        assert_eq!(s.engine().unwrap().epoch(), 0);
        assert_eq!(s.engine().unwrap().disks(), 4);
        // The real op then matches the preview's optimum.
        let real = s.execute("scale add 2").unwrap();
        assert!(real.contains("optimal 33.33%"));
    }

    #[test]
    fn plan_remove_and_errors() {
        let mut s = Session::new();
        assert_eq!(s.execute("plan add 1"), Err(CliError::NoServer));
        s.execute("init 5 seed=2").unwrap();
        s.execute("add-object 1000").unwrap();
        let preview = s.execute("plan remove 1,3").unwrap();
        assert!(preview.contains("5 -> 3 disks"));
        assert!(matches!(
            s.execute("plan remove 9"),
            Err(CliError::Engine(_))
        ));
        assert!(matches!(
            s.execute("plan frobnicate 1"),
            Err(CliError::Usage(_))
        ));
    }
}
