//! Power consistent hash (Leu, 2023) — the O(1)-expected-time,
//! O(1)-memory consistent hash built on power-of-two ranges, included
//! as a second modern comparator next to jump hash.
//!
//! The construction decomposes `n = m + s` where `m = 2^⌊lg n⌋` (so
//! `m <= n < 2m`, `0 <= s < m`) and works in two stages:
//!
//! 1. **Power-of-two stage** — `r = h(k) mod 2m` with one fixed base
//!    hash. Buckets `r >= n` don't exist; their keys fold down to the
//!    partner bucket `r - m` (the classic linear-hashing unsplit).
//!    This map is continuous across power-of-two crossings: for both
//!    `n = 2m` and `n = 2m - 1` it reduces to `h mod 2m` on the shared
//!    range, so growing past a power of two never reshuffles the
//!    direct placements.
//! 2. **Balancing donations** — after folding, buckets `[s, m)` carry
//!    two `r`-preimages (double load) while `[0, s)` and `[m, n)`
//!    carry one. Each key landing on a double-loaded bucket *donates*
//!    itself with probability `s/n` to one of the `2s` single-loaded
//!    buckets, chosen by a jump consistent hash over a stable
//!    interleaved ordering (index `2i ↔ bucket i`, `2i+1 ↔ bucket
//!    m+i`), so growing `s` only appends donation targets at the tail.
//!
//! The result is *exactly* uniform: double buckets keep
//! `(2/2m)·(1 - s/n) = 1/n`, single buckets get
//! `1/2m + s(m-s)/(mn·2s) = 1/n`. Movement on growth is near-minimal
//! (the new bucket fills to exactly `1/n`; the donation machinery adds
//! a small constant factor of intra-array churn, visible in the E11
//! tables), and like jump hash the scheme natively shrinks only from
//! the tail — arbitrary removal is realized by swap-with-tail, the
//! same workaround [`crate::jump_hash::JumpHashStrategy`] uses.

use crate::jump_hash::jump_consistent_hash;
use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};

/// Salt for the base power-of-two hash.
const SALT_BASE: u64 = 0x9E6C_63D0_876A_3EF1;
/// Salt for the donate-or-keep draw.
const SALT_DONATE: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Salt for the donation-target draw.
const SALT_TARGET: u64 = 0x1656_67B1_9E37_79F9;

/// SplitMix64 finalizer over a salted key: the paper's building block
/// is any family of independent uniform draws per key.
fn mix(key: u64, salt: u64) -> u64 {
    let mut x = key ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Maps a 64-bit key to a bucket in `0..n`, uniformly and consistently.
pub fn power_consistent_hash(key: u64, n: u32) -> u32 {
    assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // n = m + s with m = 2^⌊lg n⌋, so m <= n < 2m and 0 <= s < m.
    let m = if n.is_power_of_two() {
        n
    } else {
        (n + 1).next_power_of_two() / 2
    };
    let s = n - m;
    let r = (mix(key, SALT_BASE) % (2 * u64::from(m))) as u32;
    let t = if r < n { r } else { r - m };
    if s > 0 && (s..m).contains(&t) {
        // Double-loaded bucket: donate with probability s/n. The
        // threshold test is exact 128-bit fixed point, and monotone in
        // s/n, so growing n only ever adds donors.
        let u = mix(key, SALT_DONATE);
        if u128::from(u) * u128::from(n) < u128::from(s) << 64 {
            let idx = jump_consistent_hash(mix(key, SALT_TARGET), 2 * s);
            return if idx.is_multiple_of(2) {
                idx / 2
            } else {
                m + idx / 2
            };
        }
    }
    t
}

/// Power-consistent-hash strategy with swap-with-tail removal.
#[derive(Debug, Clone)]
pub struct PowerHashStrategy {
    /// bucket index -> logical disk; the permutation absorbs
    /// swap-with-tail removals, exactly as in the jump-hash strategy.
    bucket_to_disk: Vec<u32>,
}

impl PowerHashStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(PowerHashStrategy {
            bucket_to_disk: (0..initial_disks).collect(),
        })
    }
}

impl PlacementStrategy for PowerHashStrategy {
    fn name(&self) -> &'static str {
        "power-hash"
    }

    fn disks(&self) -> u32 {
        self.bucket_to_disk.len() as u32
    }

    fn place(&self, key: BlockKey) -> u32 {
        let bucket = power_consistent_hash(key.id, self.disks());
        self.bucket_to_disk[bucket as usize]
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks();
        op.disks_after(n_prev)?;
        match op {
            ScalingOp::Add { count } => {
                for i in 0..*count {
                    self.bucket_to_disk.push(n_prev + i);
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, n_prev)?;
                for &victim_disk in removed.indices() {
                    let pos = self
                        .bucket_to_disk
                        .iter()
                        .position(|&d| d == victim_disk)
                        .expect("victim disk exists");
                    self.bucket_to_disk.swap_remove(pos);
                }
                for d in &mut self.bucket_to_disk {
                    *d = removed.renumber(*d);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17),
            })
            .collect()
    }

    /// Exact uniformity is the paper's headline: at power-of-two and
    /// (harder) non-power-of-two bucket counts the census stays within
    /// sampling noise of flat.
    #[test]
    fn uniformity_holds_at_awkward_bucket_counts() {
        let ks = keys(200_000);
        for n in [2u32, 3, 5, 6, 8, 11, 12, 13, 16, 23] {
            let s = PowerHashStrategy::new(n).unwrap();
            let census = s.load_census(&ks);
            let mean = ks.len() as f64 / f64::from(n);
            for (d, &c) in census.iter().enumerate() {
                let dev = (c as f64 - mean).abs() / mean;
                assert!(dev < 0.05, "n={n} disk {d}: census {census:?}");
            }
        }
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for key in 0..5_000u64 {
            for n in [1u32, 2, 7, 64] {
                let b = power_consistent_hash(key, n);
                assert!(b < n);
                assert_eq!(b, power_consistent_hash(key, n));
            }
        }
    }

    /// Growth fills the new bucket to exactly its fair share while
    /// moving far less than a reshuffle — within a small constant
    /// factor of the optimal `1/(n+1)` fraction (the donation
    /// machinery's churn), and crossing a power of two is no cliff.
    #[test]
    fn growth_movement_is_near_optimal_and_crossings_are_smooth() {
        let ks = keys(100_000);
        for n_prev in [4u32, 5, 7, 8, 11, 15, 16] {
            let mut s = PowerHashStrategy::new(n_prev).unwrap();
            let before = s.place_all(&ks);
            s.apply(&ScalingOp::Add { count: 1 }).unwrap();
            let after = s.place_all(&ks);
            let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
            let frac = moved as f64 / ks.len() as f64;
            let optimal = 1.0 / f64::from(n_prev + 1);
            assert!(
                frac >= optimal - 0.01,
                "{n_prev}->{}: moved {frac:.4} < optimal {optimal:.4}",
                n_prev + 1
            );
            assert!(
                frac <= 2.5 * optimal + 0.01,
                "{n_prev}->{}: moved {frac:.4} vs optimal {optimal:.4}",
                n_prev + 1
            );
            // The new disk ends at its fair share.
            let on_new = after.iter().filter(|&&d| d == n_prev).count() as f64;
            let share = on_new / ks.len() as f64;
            assert!(
                (share - optimal).abs() < 0.01,
                "{n_prev}: new-disk share {share:.4} vs {optimal:.4}"
            );
        }
    }

    /// Tail removal mirrors growth: near-optimal movement, and the
    /// survivors re-balance to uniform.
    #[test]
    fn tail_removal_moves_little_and_rebalances() {
        let ks = keys(100_000);
        let mut s = PowerHashStrategy::new(6).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::remove_one(5)).unwrap();
        let after = s.place_all(&ks);
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / ks.len() as f64;
        // Everything on the removed disk (1/6) must move; allow the
        // donation churn on top.
        assert!(frac >= 1.0 / 6.0 - 0.01, "fraction {frac}");
        assert!(frac <= 2.5 / 6.0, "fraction {frac}");
        let census = s.load_census(&ks);
        let mean = ks.len() as f64 / 5.0;
        for &c in &census {
            assert!((c as f64 - mean).abs() / mean < 0.05, "census {census:?}");
        }
    }

    #[test]
    fn indices_stay_dense_after_mixed_ops() {
        let ks = keys(2_000);
        let mut s = PowerHashStrategy::new(6).unwrap();
        s.apply(&ScalingOp::Remove { disks: vec![0, 3] }).unwrap();
        s.apply(&ScalingOp::Add { count: 2 }).unwrap();
        assert_eq!(s.disks(), 6);
        for &k in &ks {
            assert!(s.place(k) < 6);
        }
    }
}
