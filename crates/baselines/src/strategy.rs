//! The common interface all placement strategies implement, so SCADDAR,
//! the paper's rejected alternatives, and modern comparators can be
//! driven by one experiment harness.
//!
//! A strategy answers exactly one question — *which disk does a block
//! live on right now?* — and accepts scaling operations. Movement is
//! *observed* by the harness (snapshot before/after), not self-reported,
//! so no strategy can flatter its own RO1 numbers.

use scaddar_core::{ScalingError, ScalingOp};

/// The identity of a block as strategies see it.
///
/// * `ordinal` — the block's global sequence number across the server
///   (what constrained strategies like round-robin stripe on);
/// * `id` — the block's placement random number `X_0` (what randomized
///   strategies place by). Unique-ish, uniform, reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Global sequence number (0-based, catalog order).
    pub ordinal: u64,
    /// `X_0`: the block's b-bit placement random number.
    pub id: u64,
}

/// A placement + redistribution strategy under test.
pub trait PlacementStrategy {
    /// Short stable name used in experiment CSVs and tables.
    fn name(&self) -> &'static str;

    /// Current number of disks.
    fn disks(&self) -> u32;

    /// The disk (`0..disks()`) currently holding `key`.
    fn place(&self, key: BlockKey) -> u32;

    /// Applies one scaling operation.
    ///
    /// Strategies that cannot express some operation faithfully (e.g.
    /// jump consistent hashing can only shrink from the tail) must
    /// document the approximation on their type and still keep
    /// `place` total.
    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError>;
}

/// Extension helpers shared by every strategy.
pub trait PlacementStrategyExt: PlacementStrategy {
    /// Places a whole population, in order.
    fn place_all(&self, keys: &[BlockKey]) -> Vec<u32> {
        keys.iter().map(|&k| self.place(k)).collect()
    }

    /// Per-disk load census of a population.
    fn load_census(&self, keys: &[BlockKey]) -> Vec<u64> {
        let mut counts = vec![0u64; self.disks() as usize];
        for &k in keys {
            counts[self.place(k) as usize] += 1;
        }
        counts
    }
}

impl<T: PlacementStrategy + ?Sized> PlacementStrategyExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed strategy for exercising the extension helpers.
    struct Fixed;

    impl PlacementStrategy for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn disks(&self) -> u32 {
            3
        }
        fn place(&self, key: BlockKey) -> u32 {
            (key.id % 3) as u32
        }
        fn apply(&mut self, _op: &ScalingOp) -> Result<(), ScalingError> {
            Ok(())
        }
    }

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i * 7,
            })
            .collect()
    }

    #[test]
    fn census_sums_to_population() {
        let s = Fixed;
        let ks = keys(100);
        let census = s.load_census(&ks);
        assert_eq!(census.len(), 3);
        assert_eq!(census.iter().sum::<u64>(), 100);
    }

    #[test]
    fn place_all_matches_place() {
        let s = Fixed;
        let ks = keys(10);
        let all = s.place_all(&ks);
        for (i, &k) in ks.iter().enumerate() {
            assert_eq!(all[i], s.place(k));
        }
    }
}
