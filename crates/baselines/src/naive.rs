//! The paper's **naive** scheme (§4.1, Eq. 2) — the cautionary baseline.
//!
//! For an addition at operation `j` the naive scheme re-draws from the
//! *original* random number:
//!
//! ```text
//! D_j(X_0) = X_0 mod N_j          if X_0 mod N_j lands on an added disk
//!          = D_{j-1}(X_0)         otherwise
//! ```
//!
//! RO1 and AO1 hold, but RO2 fails from the second operation onward: the
//! same entropy (`X_0`) is consulted every time, so which blocks move at
//! operation `j` is correlated with where they sat after operation
//! `j-1`. Figure 1 of the paper shows the symptom: after adding disk 4
//! and then disk 5 to an initial 4-disk array, disk 5 receives blocks
//! *only* from disks 1, 3 and 4 — disks 0 and 2 contribute nothing.
//! Experiment E1/E2 reproduces that census with this implementation.
//!
//! The paper only specifies the naive scheme for additions ("the same
//! results are seen when the scaling operation is a removal ... so
//! further explanations ... are omitted"). We implement the analogous
//! removal — blocks of removed disks re-land on `X_0 mod N_j` among the
//! survivors, others stay — which inherits the same RO2 defect.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};

/// One recorded operation, in the minimal form naive placement needs.
#[derive(Debug, Clone)]
enum NaiveRecord {
    /// Disk count grew to `n_new` (added disks are `n_prev..n_new`).
    Add { n_prev: u32, n_new: u32 },
    /// Disks removed; survivors renumbered by rank.
    Remove { n_prev: u32, removed: RemovedSet },
}

/// The naive strategy (Eq. 2). Deliberately kept in the library — it is
/// the experimental control that motivates SCADDAR.
#[derive(Debug, Clone)]
pub struct NaiveStrategy {
    initial_disks: u32,
    records: Vec<NaiveRecord>,
}

impl NaiveStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(NaiveStrategy {
            initial_disks,
            records: Vec::new(),
        })
    }

    fn disks_after(&self, upto: usize) -> u32 {
        match upto.checked_sub(1).map(|i| &self.records[i]) {
            None => self.initial_disks,
            Some(NaiveRecord::Add { n_new, .. }) => *n_new,
            Some(NaiveRecord::Remove { n_prev, removed }) => *n_prev - removed.len(),
        }
    }

    /// `D_e(X_0)` by the Eq. 2 recursion (iteratively, oldest op first).
    fn place_at(&self, x0: u64, epoch: usize) -> u32 {
        let mut disk = (x0 % u64::from(self.initial_disks)) as u32;
        for record in &self.records[..epoch] {
            match record {
                NaiveRecord::Add { n_prev, n_new } => {
                    let candidate = (x0 % u64::from(*n_new)) as u32;
                    if candidate >= *n_prev {
                        disk = candidate;
                    }
                    // else: keep D_{j-1}.
                }
                NaiveRecord::Remove { n_prev: _, removed } => {
                    if removed.contains(disk) {
                        let n_new = self.disks_after_record(record);
                        disk = (x0 % u64::from(n_new)) as u32;
                    } else {
                        disk = removed.renumber(disk);
                    }
                }
            }
        }
        disk
    }

    fn disks_after_record(&self, record: &NaiveRecord) -> u32 {
        match record {
            NaiveRecord::Add { n_new, .. } => *n_new,
            NaiveRecord::Remove { n_prev, removed } => *n_prev - removed.len(),
        }
    }
}

impl PlacementStrategy for NaiveStrategy {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn disks(&self) -> u32 {
        self.disks_after(self.records.len())
    }

    fn place(&self, key: BlockKey) -> u32 {
        self.place_at(key.id, self.records.len())
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks();
        let n_new = op.disks_after(n_prev)?;
        let record = match op {
            ScalingOp::Add { .. } => NaiveRecord::Add { n_prev, n_new },
            ScalingOp::Remove { disks } => NaiveRecord::Remove {
                n_prev,
                removed: RemovedSet::new(disks, n_prev)?,
            },
        };
        self.records.push(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    /// Reconstructs Figure 1 of the paper: X_0 = 0..=43 on 4 disks, then
    /// two single-disk additions. After the second addition, disk 5 must
    /// contain exactly the paper's blocks {5,11,17,23,29,35,41} — all
    /// sourced from old disks 1, 3 and 4, never 0 or 2.
    #[test]
    fn figure_1_census() {
        let keys: Vec<BlockKey> = (0..44).map(|i| BlockKey { ordinal: i, id: i }).collect();
        let mut s = NaiveStrategy::new(4).unwrap();
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        // Fig 1b: disk 4 holds X_0 ≡ 4 (mod 5).
        for key in &keys {
            let expect = if key.id % 5 == 4 {
                4
            } else {
                (key.id % 4) as u32
            };
            assert_eq!(s.place(*key), expect, "x0={}", key.id);
        }
        let before = s.place_all(&keys);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&keys);
        // Fig 1c: disk 5 holds X_0 ≡ 5 (mod 6).
        let on_disk5: Vec<u64> = keys
            .iter()
            .filter(|k| after[k.ordinal as usize] == 5)
            .map(|k| k.id)
            .collect();
        assert_eq!(on_disk5, vec![5, 11, 17, 23, 29, 35, 41]);
        // And their sources exclude disks 0 and 2 — the RO2 violation.
        let mut sources = std::collections::BTreeSet::new();
        for k in &keys {
            if after[k.ordinal as usize] == 5 {
                sources.insert(before[k.ordinal as usize]);
            }
        }
        assert!(!sources.contains(&0));
        assert!(!sources.contains(&2));
        assert_eq!(sources, [1u32, 3, 4].into_iter().collect());
    }

    #[test]
    fn single_addition_is_fine() {
        // One operation keeps RO1+RO2: fraction ~1/5 and uniform targets.
        let keys: Vec<BlockKey> = (0..100_000u64)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16,
            })
            .collect();
        let mut s = NaiveStrategy::new(4).unwrap();
        let before = s.place_all(&keys);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&keys);
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / keys.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn removal_moves_only_victims() {
        let keys: Vec<BlockKey> = (0..50_000u64)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 8,
            })
            .collect();
        let mut s = NaiveStrategy::new(5).unwrap();
        let before = s.place_all(&keys);
        s.apply(&ScalingOp::remove_one(2)).unwrap();
        let after = s.place_all(&keys);
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b == 2 {
                assert!(a < 4, "block {i} out of range after removal");
            } else {
                // Renumbered but same physical disk.
                let expected = if b > 2 { b - 1 } else { b };
                assert_eq!(a, expected, "block {i} moved although not a victim");
            }
        }
    }

    #[test]
    fn rejects_zero_disks() {
        assert!(NaiveStrategy::new(0).is_err());
    }
}
