//! SCADDAR wrapped as a [`PlacementStrategy`], so the experiment harness
//! can pit it against every baseline under identical conditions.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{locate, ScalingError, ScalingLog, ScalingOp};

/// SCADDAR as a harness strategy. Thin adapter over
/// [`scaddar_core::ScalingLog`] + [`scaddar_core::locate`].
#[derive(Debug, Clone)]
pub struct ScaddarStrategy {
    log: ScalingLog,
}

impl ScaddarStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        Ok(ScaddarStrategy {
            log: ScalingLog::new(initial_disks)?,
        })
    }

    /// Read access to the underlying log (for fairness tracking).
    pub fn log(&self) -> &ScalingLog {
        &self.log
    }
}

impl PlacementStrategy for ScaddarStrategy {
    fn name(&self) -> &'static str {
        "scaddar"
    }

    fn disks(&self) -> u32 {
        self.log.current_disks()
    }

    fn place(&self, key: BlockKey) -> u32 {
        locate(key.id, &self.log).0
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        self.log.push(op).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        // Uniform ids via a simple avalanche of the ordinal.
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
            })
            .collect()
    }

    #[test]
    fn addition_moves_only_to_new_disks() {
        let ks = keys(20_000);
        let mut s = ScaddarStrategy::new(4).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&ks);
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| b != a)
            .inspect(|(_, a)| assert_eq!(**a, 4))
            .count();
        let frac = moved as f64 / ks.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "moved fraction {frac}");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ScaddarStrategy::new(2).unwrap().name(), "scaddar");
    }
}
