//! Consistent hashing (Karger et al., 1997) — the contemporary technique
//! closest in spirit to SCADDAR, included as a modern comparator
//! (experiment E11).
//!
//! Disks own arcs of a hash ring via `vnodes` virtual points each; a
//! block lives on the disk owning the first point clockwise of its hash.
//! Adds and removes move only the blocks of the affected arcs (near-RO1),
//! but balance is statistical in the *number of virtual nodes*: the load
//! spread shrinks like `1/sqrt(vnodes)`, which for practical vnode counts
//! is visibly worse than SCADDAR's mod-of-a-fresh-random-number placement
//! (until the range-shrinking eventually catches up — exactly the
//! comparison E11 draws).
//!
//! Physical disks keep stable internal identities across removals; the
//! strategy maps them to dense logical indices (rank order) so its
//! interface matches the others.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};
use std::collections::BTreeMap;

/// Avalanche hash used for ring points and key lookup (splitmix64 mix).
fn hash64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consistent-hash ring strategy.
#[derive(Debug, Clone)]
pub struct ConsistentHashStrategy {
    /// Ring position -> stable physical disk id.
    ring: BTreeMap<u64, u64>,
    /// Stable physical ids of live disks, ascending (rank = logical index).
    live: Vec<u64>,
    /// Next never-used physical id.
    next_id: u64,
    /// Virtual nodes per disk.
    vnodes: u32,
}

impl ConsistentHashStrategy {
    /// Creates a ring with `initial_disks` disks and `vnodes` virtual
    /// points per disk (typical deployments use 100–1000).
    pub fn new(initial_disks: u32, vnodes: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        assert!(vnodes > 0, "need at least one virtual node per disk");
        let mut s = ConsistentHashStrategy {
            ring: BTreeMap::new(),
            live: Vec::new(),
            next_id: 0,
            vnodes,
        };
        for _ in 0..initial_disks {
            s.insert_disk();
        }
        Ok(s)
    }

    fn insert_disk(&mut self) {
        let id = self.next_id;
        self.next_id += 1;
        for v in 0..self.vnodes {
            // Mix disk id and vnode index into a ring position.
            let point = hash64(id.wrapping_mul(0x1_0000_0001).wrapping_add(u64::from(v)));
            // Collisions across (disk, vnode) pairs are vanishingly rare;
            // last writer wins, costing one vnode — harmless.
            self.ring.insert(point, id);
        }
        self.live.push(id);
        self.live.sort_unstable();
    }

    fn remove_physical(&mut self, id: u64) {
        self.ring.retain(|_, owner| *owner != id);
        self.live.retain(|&d| d != id);
    }

    /// The stable physical id owning `key`'s hash.
    fn owner(&self, key: BlockKey) -> u64 {
        let h = hash64(key.id);
        // First ring point at or after h, wrapping.
        let candidate = self
            .ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .expect("ring never empty");
        *candidate.1
    }
}

impl PlacementStrategy for ConsistentHashStrategy {
    fn name(&self) -> &'static str {
        "consistent-hash"
    }

    fn disks(&self) -> u32 {
        self.live.len() as u32
    }

    fn place(&self, key: BlockKey) -> u32 {
        let owner = self.owner(key);
        self.live.binary_search(&owner).expect("owner is live") as u32
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks();
        op.disks_after(n_prev)?; // validate only
        match op {
            ScalingOp::Add { count } => {
                for _ in 0..*count {
                    self.insert_disk();
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, n_prev)?;
                // Resolve logical indices to physical ids first; removal
                // renumbers.
                let victims: Vec<u64> = removed
                    .indices()
                    .iter()
                    .map(|&logical| self.live[logical as usize])
                    .collect();
                for id in victims {
                    self.remove_physical(id);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0x94D0_49BB_1331_11EB) >> 5,
            })
            .collect()
    }

    #[test]
    fn addition_only_moves_onto_new_disk() {
        let ks = keys(50_000);
        let mut s = ConsistentHashStrategy::new(4, 200).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&ks);
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(a, 4, "block {i} moved between old disks");
            }
        }
        // Fraction is ~1/5, give a generous tolerance for arc variance.
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / ks.len() as f64;
        assert!((frac - 0.2).abs() < 0.08, "fraction {frac}");
    }

    #[test]
    fn removal_only_moves_victims() {
        let ks = keys(50_000);
        let mut s = ConsistentHashStrategy::new(5, 200).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::remove_one(2)).unwrap();
        let after = s.place_all(&ks);
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != 2 {
                let expect = if b > 2 { b - 1 } else { b };
                assert_eq!(a, expect, "survivor block {i} moved");
            } else {
                assert!(a < 4);
            }
        }
    }

    #[test]
    fn balance_improves_with_vnodes() {
        let ks = keys(100_000);
        let spread = |vnodes: u32| {
            let s = ConsistentHashStrategy::new(8, vnodes).unwrap();
            let census = s.load_census(&ks);
            let mean = ks.len() as f64 / 8.0;
            census
                .iter()
                .map(|&c| ((c as f64 - mean) / mean).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = spread(4);
        let fine = spread(512);
        assert!(
            fine < coarse,
            "512 vnodes ({fine:.3}) should balance better than 4 ({coarse:.3})"
        );
    }

    #[test]
    fn logical_indices_stay_dense() {
        let ks = keys(1000);
        let mut s = ConsistentHashStrategy::new(6, 64).unwrap();
        s.apply(&ScalingOp::Remove { disks: vec![1, 4] }).unwrap();
        assert_eq!(s.disks(), 4);
        for &k in &ks {
            assert!(s.place(k) < 4);
        }
    }
}
