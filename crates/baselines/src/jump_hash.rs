//! Jump consistent hash (Lamping & Veach, 2014) — the minimal-state
//! successor to the problem SCADDAR attacks, included as a modern
//! comparator (experiment E11).
//!
//! `jump(key, n)` maps a 64-bit key to a bucket in `0..n` such that
//! growing `n -> n+1` moves exactly a `1/(n+1)` expected fraction of keys
//! (optimal), with *zero* state beyond the bucket count. Its structural
//! limitation mirrors SCADDAR's structural strength: jump hash can only
//! add/remove buckets **at the tail** — removing an arbitrary disk is
//! inexpressible, whereas SCADDAR's Eq. 3 handles any victim set. This
//! strategy therefore realizes `Remove` by *swapping the victim with the
//! current tail disk* and shrinking — the standard workaround — which
//! moves the tail disk's blocks too and shows up as excess movement in
//! the E11 tables.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};

/// Lamping & Veach's algorithm, verbatim (the constant is theirs).
pub fn jump_consistent_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let r = ((key >> 33).wrapping_add(1)) as f64;
        j = (((b.wrapping_add(1)) as f64) * ((1u64 << 31) as f64) / r) as i64;
    }
    b as u32
}

/// Jump-consistent-hash strategy with swap-with-tail removal.
#[derive(Debug, Clone)]
pub struct JumpHashStrategy {
    /// bucket index -> logical disk. Buckets are what jump hash sees;
    /// the permutation absorbs swap-with-tail removals.
    bucket_to_disk: Vec<u32>,
}

impl JumpHashStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(JumpHashStrategy {
            bucket_to_disk: (0..initial_disks).collect(),
        })
    }
}

impl PlacementStrategy for JumpHashStrategy {
    fn name(&self) -> &'static str {
        "jump-hash"
    }

    fn disks(&self) -> u32 {
        self.bucket_to_disk.len() as u32
    }

    fn place(&self, key: BlockKey) -> u32 {
        let bucket = jump_consistent_hash(key.id, self.disks());
        self.bucket_to_disk[bucket as usize]
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks();
        op.disks_after(n_prev)?;
        match op {
            ScalingOp::Add { count } => {
                // New disks take the next logical indices; buckets extend
                // at the tail, which is jump hash's native growth.
                for i in 0..*count {
                    self.bucket_to_disk.push(n_prev + i);
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, n_prev)?;
                // Swap each victim bucket with the current tail, then pop
                // — the only shrink jump hash supports. Process victims
                // by *disk value*; their bucket positions move as we
                // swap.
                for &victim_disk in removed.indices() {
                    let pos = self
                        .bucket_to_disk
                        .iter()
                        .position(|&d| d == victim_disk)
                        .expect("victim disk exists");
                    self.bucket_to_disk.swap_remove(pos);
                }
                // Renumber surviving logical indices to stay dense.
                for d in &mut self.bucket_to_disk {
                    *d = removed.renumber(*d);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31),
            })
            .collect()
    }

    #[test]
    fn reference_properties_of_jump() {
        // Stability: same key, same bucket count -> same bucket.
        assert_eq!(
            jump_consistent_hash(12345, 10),
            jump_consistent_hash(12345, 10)
        );
        // Monotone containment: growing buckets never moves a key
        // backwards between old buckets.
        for key in 0..2000u64 {
            let at5 = jump_consistent_hash(key, 5);
            let at6 = jump_consistent_hash(key, 6);
            assert!(at6 == at5 || at6 == 5, "key {key}: {at5} -> {at6}");
        }
        // Single bucket.
        assert_eq!(jump_consistent_hash(987, 1), 0);
    }

    #[test]
    fn growth_moves_optimal_fraction_onto_new_disk() {
        let ks = keys(100_000);
        let mut s = JumpHashStrategy::new(4).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&ks);
        let mut moved = 0;
        for (&b, &a) in before.iter().zip(&after) {
            if b != a {
                moved += 1;
                assert_eq!(a, 4);
            }
        }
        let frac = moved as f64 / ks.len() as f64;
        assert!((frac - 0.2).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn tail_removal_is_optimal() {
        // Removing the tail disk needs no swap: exactly the victim's
        // blocks (1/5) move. The mid-removal swap penalty is asserted
        // with physical-identity tracking in `harness::tests`.
        let ks = keys(100_000);
        let mut tail = JumpHashStrategy::new(5).unwrap();
        let before = tail.place_all(&ks);
        tail.apply(&ScalingOp::remove_one(4)).unwrap();
        let after = tail.place_all(&ks);
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / ks.len() as f64;
        assert!((frac - 0.2).abs() < 0.01, "tail removal fraction {frac}");
    }

    #[test]
    fn balance_is_excellent() {
        let ks = keys(100_000);
        let s = JumpHashStrategy::new(8).unwrap();
        let census = s.load_census(&ks);
        let mean = ks.len() as f64 / 8.0;
        for &c in &census {
            assert!((c as f64 - mean).abs() / mean < 0.03, "census {census:?}");
        }
    }

    #[test]
    fn indices_stay_dense_after_mixed_ops() {
        let ks = keys(2_000);
        let mut s = JumpHashStrategy::new(6).unwrap();
        s.apply(&ScalingOp::Remove { disks: vec![0, 3] }).unwrap();
        s.apply(&ScalingOp::Add { count: 2 }).unwrap();
        assert_eq!(s.disks(), 6);
        for &k in &ks {
            assert!(s.place(k) < 6);
        }
    }
}
