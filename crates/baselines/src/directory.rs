//! The directory approach (Appendix A, first initial approach): perfect
//! bookkeeping at the cost of per-block state.
//!
//! Every block's location is stored explicitly. Scaling draws fresh
//! randomness for exactly the optimal set of blocks, so RO1 and RO2 are
//! both *ideal* — the directory is the quality yardstick the paper wants
//! to match "for free". What it cannot satisfy is the storage/complexity
//! objective: `O(B)` directory entries, concurrency-controlled updates,
//! and a lookup that is a table probe instead of arithmetic. The
//! [`DirectoryStrategy::directory_bytes`] accessor quantifies the
//! footprint against [`scaddar_core::ScalingLog::metadata_bytes`].
//!
//! Movement selection for additions follows the optimal policy: each
//! block independently moves with probability `(N_j - N_{j-1})/N_j`,
//! to a uniformly chosen added disk — i.e. exactly what a fresh uniform
//! placement conditioned on minimal movement looks like.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};
use scaddar_prng::{SeededRng, SplitMix64};
use std::collections::HashMap;

/// The explicit-directory strategy.
#[derive(Debug, Clone)]
pub struct DirectoryStrategy {
    disks: u32,
    /// One entry per block ever placed: key id -> disk.
    directory: HashMap<u64, u32>,
    /// Private randomness for redistribution decisions.
    rng: SplitMix64,
}

impl DirectoryStrategy {
    /// Starts with `initial_disks` disks; `seed` drives the private
    /// redistribution randomness.
    pub fn new(initial_disks: u32, seed: u64) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(DirectoryStrategy {
            disks: initial_disks,
            directory: HashMap::new(),
            rng: SplitMix64::from_seed(seed),
        })
    }

    /// Number of directory entries (blocks known to the strategy).
    pub fn entries(&self) -> usize {
        self.directory.len()
    }

    /// Approximate directory footprint: 12 bytes per entry (8-byte key,
    /// 4-byte disk), the honest lower bound a packed on-disk directory
    /// would need. Compare with the SCADDAR log's ~dozens of bytes.
    pub fn directory_bytes(&self) -> usize {
        self.directory.len() * 12
    }

    fn place_or_init(&mut self, key: BlockKey) -> u32 {
        let disks = self.disks;
        *self
            .directory
            .entry(key.id)
            .or_insert_with(|| (key.id % u64::from(disks)) as u32)
    }

    /// Directory strategies must *see* blocks to track them; the harness
    /// calls this once per population before the first operation.
    pub fn register(&mut self, keys: &[BlockKey]) {
        for &k in keys {
            self.place_or_init(k);
        }
    }

    fn uniform_below(&mut self, n: u32) -> u32 {
        // Rejection-free is unnecessary here; modulo bias over u64 draws
        // against n <= u32::MAX is < 2^-32 and this path is not part of
        // the placement quality under test (it mimics an ideal oracle).
        (self.rng.next_u64() % u64::from(n)) as u32
    }
}

impl PlacementStrategy for DirectoryStrategy {
    fn name(&self) -> &'static str {
        "directory"
    }

    fn disks(&self) -> u32 {
        self.disks
    }

    /// Lookup. Blocks never registered fall back to their epoch-0 spot —
    /// in a real directory server that would be a miss/fault.
    fn place(&self, key: BlockKey) -> u32 {
        self.directory
            .get(&key.id)
            .copied()
            .unwrap_or((key.id % u64::from(self.disks)) as u32)
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks;
        let n_new = op.disks_after(n_prev)?;
        match op {
            ScalingOp::Add { .. } => {
                let added = n_new - n_prev;
                // Each block moves with probability added/n_new onto a
                // uniform added disk.
                let keys: Vec<u64> = self.directory.keys().copied().collect();
                for id in keys {
                    if self.uniform_below(n_new) >= n_prev {
                        let target = n_prev + self.uniform_below(added);
                        self.directory.insert(id, target);
                    }
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, n_prev)?;
                let keys: Vec<u64> = self.directory.keys().copied().collect();
                for id in keys {
                    let current = self.directory[&id];
                    let new_disk = if removed.contains(current) {
                        self.uniform_below(n_new)
                    } else {
                        removed.renumber(current)
                    };
                    self.directory.insert(id, new_disk);
                }
            }
        }
        self.disks = n_new;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 3,
            })
            .collect()
    }

    fn registered(n_disks: u32, ks: &[BlockKey]) -> DirectoryStrategy {
        let mut s = DirectoryStrategy::new(n_disks, 42).unwrap();
        s.register(ks);
        s
    }

    #[test]
    fn addition_is_optimal_and_uniform() {
        let ks = keys(100_000);
        let mut s = registered(4, &ks);
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 2 }).unwrap();
        let after = s.place_all(&ks);
        let mut moved = 0usize;
        let mut to4 = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                moved += 1;
                assert!(*a >= 4);
                if *a == 4 {
                    to4 += 1;
                }
            }
        }
        let frac = moved as f64 / ks.len() as f64;
        assert!((frac - 2.0 / 6.0).abs() < 0.01, "fraction {frac}");
        // Moves split evenly between the two added disks.
        let split = to4 as f64 / moved as f64;
        assert!((split - 0.5).abs() < 0.02, "split {split}");
    }

    #[test]
    fn removal_reassigns_victims_uniformly() {
        let ks = keys(60_000);
        let mut s = registered(5, &ks);
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::remove_one(1)).unwrap();
        let after = s.place_all(&ks);
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != 1 {
                let expect = if b > 1 { b - 1 } else { b };
                assert_eq!(a, expect, "survivor {i} moved");
            }
        }
        let census = s.load_census(&ks);
        let mean = ks.len() as f64 / 4.0;
        for &c in &census {
            assert!((c as f64 - mean).abs() / mean < 0.05);
        }
    }

    #[test]
    fn directory_grows_with_blocks_unlike_scaddar_log() {
        let ks = keys(10_000);
        let s = registered(4, &ks);
        assert_eq!(s.entries(), 10_000);
        assert_eq!(s.directory_bytes(), 120_000);
    }
}
