//! Complete redistribution: `D_j = X_0 mod N_j` (Appendix A's second
//! initial approach).
//!
//! Perfect randomness at every epoch — this is the *gold standard for
//! RO2* and the reference curve in the paper's §5 figure ("this curve is
//! growing at a higher rate than the curve representing redistributions
//! of all blocks"). Its fatal flaw is RO1: changing the modulus reshuffles
//! nearly every block (for `N -> N+1`, a `1 - 1/(N+1)`-ish fraction
//! moves).

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{ScalingError, ScalingOp};

/// The complete-redistribution strategy.
#[derive(Debug, Clone)]
pub struct FullRedistStrategy {
    disks: u32,
}

impl FullRedistStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(FullRedistStrategy {
            disks: initial_disks,
        })
    }
}

impl PlacementStrategy for FullRedistStrategy {
    fn name(&self) -> &'static str {
        "full-redistribution"
    }

    fn disks(&self) -> u32 {
        self.disks
    }

    fn place(&self, key: BlockKey) -> u32 {
        (key.id % u64::from(self.disks)) as u32
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        self.disks = op.disks_after(self.disks)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n)
            .map(|i| BlockKey {
                ordinal: i,
                id: i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13,
            })
            .collect()
    }

    #[test]
    fn moves_nearly_everything_on_addition() {
        let ks = keys(100_000);
        let mut s = FullRedistStrategy::new(4).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&ks);
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / ks.len() as f64;
        // x mod 4 == x mod 5 only when (x mod 20) in {0,1,2,3}: 4/20 stay.
        assert!(frac > 0.75, "only {frac} moved — not a full reshuffle?");
    }

    #[test]
    fn is_always_perfectly_random() {
        let ks = keys(120_000);
        let mut s = FullRedistStrategy::new(4).unwrap();
        for op in [
            ScalingOp::Add { count: 3 },
            ScalingOp::remove_one(0),
            ScalingOp::Add { count: 2 },
        ] {
            s.apply(&op).unwrap();
            let census = s.load_census(&ks);
            let mean = ks.len() as f64 / census.len() as f64;
            for &c in &census {
                assert!((c as f64 - mean).abs() / mean < 0.05, "census {census:?}");
            }
        }
    }

    #[test]
    fn validates_operations() {
        let mut s = FullRedistStrategy::new(2).unwrap();
        assert!(s.apply(&ScalingOp::Remove { disks: vec![0, 1] }).is_err());
        assert_eq!(s.disks(), 2, "failed op must not change state");
    }
}
