//! Round-robin striping with reorganization — the constrained-placement
//! baseline (paper §1/§2, following Ghandeharizadeh & Kim, DEXA'96).
//!
//! Block `ordinal` lives on disk `ordinal mod N`. Deterministic service
//! guarantees, but "when adding or removing a disk, almost all the data
//! blocks need to be moved to another disk" (§1) because the stripe
//! period changes. This is the movement-cost baseline SCADDAR's §2
//! motivates against.

use crate::strategy::{BlockKey, PlacementStrategy};
use scaddar_core::{ScalingError, ScalingOp};

/// Round-robin striping; restriped in full on every scaling operation.
#[derive(Debug, Clone)]
pub struct RoundRobinStrategy {
    disks: u32,
}

impl RoundRobinStrategy {
    /// Starts with `initial_disks` disks.
    pub fn new(initial_disks: u32) -> Result<Self, ScalingError> {
        if initial_disks == 0 {
            return Err(ScalingError::NoInitialDisks);
        }
        Ok(RoundRobinStrategy {
            disks: initial_disks,
        })
    }
}

impl PlacementStrategy for RoundRobinStrategy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn disks(&self) -> u32 {
        self.disks
    }

    fn place(&self, key: BlockKey) -> u32 {
        (key.ordinal % u64::from(self.disks)) as u32
    }

    fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        self.disks = op.disks_after(self.disks)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PlacementStrategyExt;

    fn keys(n: u64) -> Vec<BlockKey> {
        (0..n).map(|i| BlockKey { ordinal: i, id: i }).collect()
    }

    #[test]
    fn striping_is_perfectly_balanced() {
        let ks = keys(1000);
        let s = RoundRobinStrategy::new(4).unwrap();
        let census = s.load_census(&ks);
        assert_eq!(census, vec![250, 250, 250, 250]);
    }

    #[test]
    fn restriping_moves_nearly_everything() {
        let ks = keys(100_000);
        let mut s = RoundRobinStrategy::new(4).unwrap();
        let before = s.place_all(&ks);
        s.apply(&ScalingOp::Add { count: 1 }).unwrap();
        let after = s.place_all(&ks);
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / ks.len() as f64;
        // ordinal mod 4 == ordinal mod 5 for 4 of every 20 ordinals.
        assert!((frac - 0.8).abs() < 0.01, "fraction {frac}");
    }
}
