//! # scaddar-baselines — every strategy SCADDAR is measured against
//!
//! The paper positions SCADDAR against a spectrum of alternatives; this
//! crate implements all of them behind one [`PlacementStrategy`] trait so
//! the experiment harness can drive them through identical schedules:
//!
//! | strategy | paper source | RO1 (movement) | RO2 (balance) | state |
//! |----------|--------------|----------------|---------------|-------|
//! | [`ScaddarStrategy`] | §4.2 | optimal | near-perfect for ≤k ops | scaling log |
//! | [`NaiveStrategy`] | §4.1 Eq. 2 | optimal | **broken after op 2** | op list |
//! | [`FullRedistStrategy`] | App. A | ~all blocks | perfect | disk count |
//! | [`DirectoryStrategy`] | App. A | optimal | perfect | O(B) directory |
//! | [`RoundRobinStrategy`] | §1, ref \[8\] | ~all blocks | perfect (deterministic) | disk count |
//! | [`ConsistentHashStrategy`] | modern comparator | near-optimal | ~1/√vnodes spread | ring |
//! | [`JumpHashStrategy`] | modern comparator | optimal-grow, tail-only shrink | excellent | disk count |
//! | [`PowerHashStrategy`] | modern comparator | near-optimal-grow, tail-only shrink | exactly uniform | disk count |
//!
//! The [`harness`] module runs schedules and measures movement against
//! *physical* disk identity (so renumbering is not miscounted) plus load
//! censuses for balance metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistent_hash;
pub mod directory;
pub mod full;
pub mod harness;
pub mod jump_hash;
pub mod naive;
pub mod power_hash;
pub mod round_robin;
pub mod scaddar;
pub mod strategy;

pub use consistent_hash::ConsistentHashStrategy;
pub use directory::DirectoryStrategy;
pub use full::FullRedistStrategy;
pub use harness::{
    cov, optimal_fraction, run_schedule, synthetic_population, OpStats, PhysicalDiskId, PhysicalMap,
};
pub use jump_hash::{jump_consistent_hash, JumpHashStrategy};
pub use naive::NaiveStrategy;
pub use power_hash::{power_consistent_hash, PowerHashStrategy};
pub use round_robin::RoundRobinStrategy;
pub use scaddar::ScaddarStrategy;
pub use strategy::{BlockKey, PlacementStrategy, PlacementStrategyExt};

#[cfg(test)]
mod tests {
    use super::*;
    use scaddar_core::ScalingOp;

    /// Cross-strategy sanity: everyone places the same population within
    /// range, before and after a mixed schedule.
    #[test]
    fn all_strategies_stay_in_range() {
        let keys = synthetic_population(5_000, 3);
        let schedule = [
            ScalingOp::Add { count: 2 },
            ScalingOp::remove_one(1),
            ScalingOp::Add { count: 1 },
        ];
        let mut strategies: Vec<Box<dyn PlacementStrategy>> = vec![
            Box::new(ScaddarStrategy::new(4).unwrap()),
            Box::new(NaiveStrategy::new(4).unwrap()),
            Box::new(FullRedistStrategy::new(4).unwrap()),
            Box::new(RoundRobinStrategy::new(4).unwrap()),
            Box::new(ConsistentHashStrategy::new(4, 64).unwrap()),
            Box::new(JumpHashStrategy::new(4).unwrap()),
            Box::new(PowerHashStrategy::new(4).unwrap()),
        ];
        let mut dir = DirectoryStrategy::new(4, 5).unwrap();
        dir.register(&keys);
        strategies.push(Box::new(dir));

        for s in &mut strategies {
            for op in &schedule {
                s.apply(op).unwrap();
            }
            assert_eq!(s.disks(), 6, "{}", s.name());
            for &k in &keys {
                assert!(s.place(k) < 6, "{} out of range", s.name());
            }
        }
    }

    /// The headline comparison in miniature: after one addition, SCADDAR,
    /// directory and jump-hash move ~z_j; full-redistribution and
    /// round-robin move ~everything.
    #[test]
    fn movement_ordering_is_as_published() {
        let keys = synthetic_population(30_000, 8);
        let schedule = [ScalingOp::Add { count: 1 }];
        let frac = |stats: Vec<OpStats>| stats[0].moved_fraction();

        let scaddar =
            frac(run_schedule(&mut ScaddarStrategy::new(4).unwrap(), &keys, &schedule).unwrap());
        let full =
            frac(run_schedule(&mut FullRedistStrategy::new(4).unwrap(), &keys, &schedule).unwrap());
        let rr =
            frac(run_schedule(&mut RoundRobinStrategy::new(4).unwrap(), &keys, &schedule).unwrap());
        let jump =
            frac(run_schedule(&mut JumpHashStrategy::new(4).unwrap(), &keys, &schedule).unwrap());
        let power =
            frac(run_schedule(&mut PowerHashStrategy::new(4).unwrap(), &keys, &schedule).unwrap());

        assert!((scaddar - 0.2).abs() < 0.02);
        assert!((jump - 0.2).abs() < 0.02);
        // Power hash pays a bounded donation churn on top of z_j but
        // stays far from a reshuffle.
        assert!((0.18..0.45).contains(&power), "power moved {power}");
        assert!(full > 0.7);
        assert!(rr > 0.7);
    }
}
