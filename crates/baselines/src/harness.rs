//! The comparison harness: drives any set of [`PlacementStrategy`]s
//! through the same operation schedule over the same block population and
//! *observes* movement and balance.
//!
//! Two details make the comparison honest:
//!
//! 1. **Movement is physical, not logical.** Removals renumber logical
//!    disk indices (the paper's `new()`), so comparing raw `place()`
//!    outputs would count renumbered-but-unmoved blocks as moves.
//!    [`PhysicalMap`] tracks the stable physical identity of every
//!    logical index across the schedule; a block "moved" iff its
//!    *physical* disk changed.
//! 2. **Movement is observed, not self-reported.** The harness snapshots
//!    placements before and after each operation and diffs.

use crate::strategy::{BlockKey, PlacementStrategy, PlacementStrategyExt};
use scaddar_core::{RemovedSet, ScalingError, ScalingOp};

/// Stable physical disk identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalDiskId(pub u64);

/// Maps dense logical indices (the strategies' world) to stable physical
/// disk ids across a schedule of scaling operations, using the same rank
/// renumbering every strategy implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalMap {
    logical_to_physical: Vec<PhysicalDiskId>,
    next_physical: u64,
}

impl PhysicalMap {
    /// Starts with `initial_disks` physical disks `0..initial_disks`.
    pub fn new(initial_disks: u32) -> Self {
        PhysicalMap {
            logical_to_physical: (0..u64::from(initial_disks)).map(PhysicalDiskId).collect(),
            next_physical: u64::from(initial_disks),
        }
    }

    /// Number of live disks.
    pub fn disks(&self) -> u32 {
        self.logical_to_physical.len() as u32
    }

    /// The physical disk behind a logical index.
    pub fn physical(&self, logical: u32) -> PhysicalDiskId {
        self.logical_to_physical[logical as usize]
    }

    /// Applies a scaling operation: additions mint fresh physical ids,
    /// removals drop the victims and compact (rank renumbering).
    pub fn apply(&mut self, op: &ScalingOp) -> Result<(), ScalingError> {
        let n_prev = self.disks();
        op.disks_after(n_prev)?;
        match op {
            ScalingOp::Add { count } => {
                for _ in 0..*count {
                    self.logical_to_physical
                        .push(PhysicalDiskId(self.next_physical));
                    self.next_physical += 1;
                }
            }
            ScalingOp::Remove { disks } => {
                let removed = RemovedSet::new(disks, n_prev)?;
                let mut kept = Vec::with_capacity(self.logical_to_physical.len());
                for (logical, &phys) in self.logical_to_physical.iter().enumerate() {
                    if !removed.contains(logical as u32) {
                        kept.push(phys);
                    }
                }
                self.logical_to_physical = kept;
            }
        }
        Ok(())
    }
}

/// Balance and movement statistics for one strategy after one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Strategy name.
    pub strategy: &'static str,
    /// 1-based operation number in the schedule.
    pub op_index: usize,
    /// Disks after the operation.
    pub disks_after: u32,
    /// Blocks whose *physical* disk changed.
    pub moved: u64,
    /// Population size.
    pub total_blocks: u64,
    /// Optimal fraction `z_j` for this operation.
    pub optimal_fraction: f64,
    /// Per-logical-disk block counts after the operation.
    pub load_census: Vec<u64>,
}

impl OpStats {
    /// Observed moved fraction.
    pub fn moved_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.moved as f64 / self.total_blocks as f64
        }
    }

    /// Coefficient of variation of the load census — the paper's §5
    /// balance metric (stddev / mean of blocks per disk).
    pub fn load_cov(&self) -> f64 {
        cov(&self.load_census)
    }
}

/// Coefficient of variation of a census.
pub fn cov(census: &[u64]) -> f64 {
    if census.is_empty() {
        return 0.0;
    }
    let n = census.len() as f64;
    let mean = census.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = census
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Runs one strategy through a schedule, returning per-op statistics.
///
/// The schedule must be valid for the starting disk count (validated as
/// it runs; errors abort with the offending operation's index).
pub fn run_schedule<S: PlacementStrategy + ?Sized>(
    strategy: &mut S,
    keys: &[BlockKey],
    schedule: &[ScalingOp],
) -> Result<Vec<OpStats>, (usize, ScalingError)> {
    let mut physical = PhysicalMap::new(strategy.disks());
    let mut stats = Vec::with_capacity(schedule.len());
    let mut placements: Vec<PhysicalDiskId> = strategy
        .place_all(keys)
        .into_iter()
        .map(|l| physical.physical(l))
        .collect();

    for (i, op) in schedule.iter().enumerate() {
        let n_prev = strategy.disks();
        let optimal = optimal_fraction(n_prev, op);
        strategy.apply(op).map_err(|e| (i + 1, e))?;
        physical.apply(op).map_err(|e| (i + 1, e))?;

        let mut moved = 0u64;
        let mut census = vec![0u64; strategy.disks() as usize];
        for (slot, &key) in keys.iter().enumerate() {
            let logical = strategy.place(key);
            census[logical as usize] += 1;
            let phys = physical.physical(logical);
            if phys != placements[slot] {
                moved += 1;
                placements[slot] = phys;
            }
        }
        stats.push(OpStats {
            strategy: strategy.name(),
            op_index: i + 1,
            disks_after: strategy.disks(),
            moved,
            total_blocks: keys.len() as u64,
            optimal_fraction: optimal,
            load_census: census,
        });
    }
    Ok(stats)
}

/// Optimal `z_j` of an operation applied to `n_prev` disks (Def. 3.4),
/// or `NaN` if the operation is invalid.
pub fn optimal_fraction(n_prev: u32, op: &ScalingOp) -> f64 {
    match op.disks_after(n_prev) {
        Err(_) => f64::NAN,
        Ok(n_new) => {
            let before = f64::from(n_prev);
            let after = f64::from(n_new);
            if after > before {
                (after - before) / after
            } else {
                (before - after) / before
            }
        }
    }
}

/// Synthesizes a uniform block population of `n` keys: ordinals `0..n`,
/// ids from the given seed via splitmix-style mixing. Experiments that
/// model real catalogs build keys from `scaddar_core::Catalog` instead.
pub fn synthetic_population(n: u64, seed: u64) -> Vec<BlockKey> {
    use scaddar_prng::{SeededRng, SplitMix64};
    let mut rng = SplitMix64::from_seed(seed);
    (0..n)
        .map(|ordinal| BlockKey {
            ordinal,
            id: rng.next_u64(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullRedistStrategy;
    use crate::jump_hash::JumpHashStrategy;
    use crate::scaddar::ScaddarStrategy;

    #[test]
    fn physical_map_tracks_identity_through_removal() {
        let mut m = PhysicalMap::new(4);
        m.apply(&ScalingOp::Add { count: 2 }).unwrap(); // physical 4, 5
        m.apply(&ScalingOp::remove_one(1)).unwrap(); // drop physical 1
        assert_eq!(m.disks(), 5);
        let physes: Vec<u64> = (0..5).map(|l| m.physical(l).0).collect();
        assert_eq!(physes, vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn renumbering_is_not_counted_as_movement() {
        // Under SCADDAR, removing disk 0 moves only disk 0's blocks even
        // though every surviving block's logical index shifts down.
        let keys = synthetic_population(40_000, 9);
        let mut s = ScaddarStrategy::new(5).unwrap();
        let stats = run_schedule(&mut s, &keys, &[ScalingOp::remove_one(0)]).unwrap();
        let frac = stats[0].moved_fraction();
        assert!((frac - 0.2).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn full_redistribution_shows_its_cost() {
        let keys = synthetic_population(40_000, 9);
        let mut s = FullRedistStrategy::new(4).unwrap();
        let stats = run_schedule(&mut s, &keys, &[ScalingOp::Add { count: 1 }]).unwrap();
        assert!(stats[0].moved_fraction() > 0.7);
        assert!((stats[0].optimal_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jump_hash_mid_removal_pays_the_swap_penalty() {
        let keys = synthetic_population(60_000, 10);
        let schedule = [ScalingOp::remove_one(1)];
        let mut jump = JumpHashStrategy::new(5).unwrap();
        let stats = run_schedule(&mut jump, &keys, &schedule).unwrap();
        let frac = stats[0].moved_fraction();
        // victim's 1/5 + tail re-jump 1/5·(3/4) = 0.35 expected.
        assert!(
            (0.3..0.45).contains(&frac),
            "expected ~0.35 physical movement, got {frac}"
        );
    }

    #[test]
    fn cov_basics() {
        assert_eq!(cov(&[]), 0.0);
        assert_eq!(cov(&[5, 5, 5, 5]), 0.0);
        // Census 0,10: mean 5, stddev 5 -> cov 1.
        assert!((cov(&[0, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_schedule_reports_index() {
        let keys = synthetic_population(100, 1);
        let mut s = ScaddarStrategy::new(2).unwrap();
        let err = run_schedule(
            &mut s,
            &keys,
            &[ScalingOp::Add { count: 1 }, ScalingOp::remove_one(9)],
        )
        .unwrap_err();
        assert_eq!(err.0, 2);
    }
}
