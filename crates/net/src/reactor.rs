//! The event-loop serving core: readiness-driven nonblocking sockets.
//!
//! ## Threading model
//!
//! One **acceptor** thread owns the listener and does nothing but
//! `accept`, apply the backpressure policy (`Error{Busy}` over
//! [`max_connections`](crate::NetServerConfig::max_connections)), and
//! hand each accepted socket to a **worker** round-robin. Each worker
//! owns a [`polling::Poller`] (epoll on Linux, poll(2) elsewhere — both
//! level-triggered), a slab of connection states, and reusable scratch
//! buffers; a connection lives its whole life on the worker that
//! admitted it, so no connection state is ever shared or locked.
//! Workers are optionally pinned to CPUs
//! ([`pin_workers`](crate::NetServerConfig::pin_workers)).
//!
//! ## A wakeup, start to finish
//!
//! 1. `wait` returns ready sockets (or a deadline/notify wakeup).
//! 2. Newly accepted sockets from the injection queue are registered.
//! 3. Every readable socket is drained to `WouldBlock` into its
//!    connection's read buffer, and complete frames are decoded in
//!    place by the re-entrant [`crate::wire`] decoder (partial frames
//!    stay buffered and re-arm the read deadline — slow-loris clients
//!    get the PR 5 `read_timeout`, not a thread).
//! 4. **Cross-connection coalescing**: consecutive `Locate` /
//!    `LocateBatch` frames — across *all* connections woken this round
//!    — are answered by one [`cmsim::SharedServer::locate_coalesced`]
//!    call under a single read-lock acquisition. Non-lookup frames
//!    (`Scale`, `Tick`, …) act as barriers: the pending lookup wave is
//!    flushed before they run, so responses on any one connection are
//!    in request order and its observed epoch never runs backwards.
//!    The batching window is exactly one poller wakeup — no timer, no
//!    added latency.
//! 5. Responses are batch-encoded into each connection's write buffer
//!    and flushed with one `write` per connection (the writev of this
//!    protocol: many frames, one syscall). A short write arms writable
//!    interest and the `write_timeout`; a backlog past the high-water
//!    mark suspends reading from that connection until it drains
//!    (per-connection backpressure without blocking the loop).
//! 6. Expired read/write deadlines close their connection (with a
//!    best-effort `Error{BadRequest}` for an overdue request).
//!
//! Shutdown mirrors the threaded core: the acceptor stops, each worker
//! is notified, flushes what it owes (reverting the socket to blocking
//! writes under `write_timeout`), closes everything, and joins.

use crate::server::{engine_error, handle_request, reply, Shared};
use crate::wire::{decode_frame_traced, ErrorCode, Frame, FrameError};
use cmsim::LocateQuery;
use polling::{Event, Poller};
use scaddar_obs::{StateHandle, ThreadState, TraceContext};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Read-drain scratch size per worker (reused across connections).
const READ_CHUNK: usize = 64 * 1024;

/// Once a buffer has ballooned past this, completed connections shrink
/// it back so one huge batch doesn't pin memory forever.
const BUF_SHRINK_THRESHOLD: usize = 1 << 20;

/// Environment override for the poller backend (`poll` forces the
/// portable poll(2) fallback on Linux) — lets the test suite and CI
/// exercise both code paths on one platform.
pub const BACKEND_ENV: &str = "SCADDARD_BACKEND";

fn open_poller() -> std::io::Result<Poller> {
    match std::env::var(BACKEND_ENV) {
        Ok(v) if v.eq_ignore_ascii_case("poll") => Poller::with_backend(polling::Backend::Poll),
        _ => Poller::new(),
    }
}

/// One live connection owned by exactly one worker.
struct Conn {
    stream: TcpStream,
    /// Unconsumed request bytes; complete frames are decoded out each
    /// wakeup, so between wakeups this holds at most one partial frame.
    rbuf: Vec<u8>,
    /// Encoded responses not yet accepted by the kernel.
    out: Vec<u8>,
    /// Flushed prefix of `out`.
    out_pos: usize,
    /// Armed while `rbuf` holds a partial frame.
    read_deadline: Option<Instant>,
    /// Armed while `out` has unflushed bytes.
    write_deadline: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
    /// Output backlog passed the high-water mark; reads are off until
    /// it drains below half of it.
    read_suspended: bool,
    /// Close once `out` is flushed, dropping undispatched frames
    /// (protocol error or direction violation — the stream is beyond
    /// saving).
    close_after_flush: bool,
    /// Peer sent EOF (possibly a half-close): answer everything already
    /// received, then close once drained.
    close_when_drained: bool,
    /// A heavy engine op (`Scale`/`Tick`) is running on an offload
    /// thread; frames decoded meanwhile queue in `deferred` so the
    /// connection's response order survives.
    busy: bool,
    /// Incarnation of this slab slot — a completion whose generation
    /// doesn't match arrived for a connection that is already gone.
    generation: u64,
    /// Frames awaiting the in-flight offloaded op, in arrival order
    /// (each with the trace context it arrived under, if any).
    deferred: VecDeque<TracedFrame>,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Result of one offloaded heavy op, handed back to the worker.
struct Completion {
    slot: usize,
    generation: u64,
    /// Encoded response frame(s).
    bytes: Vec<u8>,
    /// `false`: the op decided the connection must close (direction
    /// violation), mirroring [`handle_request`]'s return.
    keep_open: bool,
}

/// `Scale` and `Tick` hold the engine's write lock for milliseconds
/// (a full redistribution drain); executing them on the reactor thread
/// would stall every connection on the worker for the duration. They
/// run on a short-lived offload thread instead.
fn is_heavy(frame: &Frame) -> bool {
    matches!(frame, Frame::Scale { .. } | Frame::Tick { .. })
}

/// A decoded frame plus the trace context that rode in on its trailer.
type TracedFrame = (Frame, Option<TraceContext>);

/// A decoded request waiting for dispatch this wakeup: slab slot, the
/// frame (taken out of the `Option` when individually dispatched), and
/// — when this request drew the 1-in-N phase sample — the clock
/// reading at decode completion (feeding the `coalesce-wait` phase).
type PendingReq = (usize, Option<TracedFrame>, Option<u64>);

struct Worker {
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    injector: Arc<Mutex<Vec<TcpStream>>>,
    /// Finished offloaded ops waiting to be folded back in.
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Next slot incarnation (see [`Conn::generation`]).
    next_generation: u64,
    chunk: Vec<u8>,
    events: Vec<Event>,
    /// Output backlog (bytes) beyond which reads are suspended.
    high_water: usize,
    /// This worker's profiler state word, flipped at phase boundaries.
    state: StateHandle,
}

impl Worker {
    fn live_conns(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.conns.len()).filter(|&s| self.conns[s].is_some())
    }

    fn run(&mut self) {
        loop {
            let timeout = self.next_timeout();
            self.events.clear();
            self.state.set(ThreadState::Epoll);
            let _ = self.poller.wait(&mut self.events, timeout);
            self.state.set(ThreadState::Idle);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain();
                self.state.set(ThreadState::Idle);
                return;
            }
            self.admit_new();
            self.apply_completions();
            self.state.set(ThreadState::Decode);
            let mut pending: Vec<PendingReq> = Vec::new();
            let events = std::mem::take(&mut self.events);
            for ev in &events {
                self.handle_event(ev, &mut pending);
            }
            self.events = events;
            self.dispatch(pending);
            self.state.set(ThreadState::Write);
            self.flush_and_retune();
            self.state.set(ThreadState::Idle);
            self.sweep_deadlines();
        }
    }

    /// Nearest armed deadline, as a `wait` timeout. `None` (block until
    /// readiness or notify) when nothing is on the clock.
    fn next_timeout(&self) -> Option<Duration> {
        let mut nearest: Option<Instant> = None;
        for slot in self.live_conns() {
            let conn = self.conns[slot].as_ref().unwrap();
            for deadline in [conn.read_deadline, conn.write_deadline]
                .into_iter()
                .flatten()
            {
                nearest = Some(nearest.map_or(deadline, |n| n.min(deadline)));
            }
        }
        nearest.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Registers connections the acceptor has handed over.
    fn admit_new(&mut self) {
        loop {
            let stream = {
                let mut q = self.injector.lock().unwrap_or_else(|e| e.into_inner());
                match q.pop() {
                    Some(s) => s,
                    None => return,
                }
            };
            if stream.set_nonblocking(true).is_err() {
                self.shared.active.fetch_sub(1, Ordering::Relaxed);
                self.shared.stats.conns_closed.inc();
                self.shared.stats.connections.add(-1);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            if self
                .poller
                .add(stream.as_raw_fd(), Event::readable(slot))
                .is_err()
            {
                self.free.push(slot);
                self.shared.active.fetch_sub(1, Ordering::Relaxed);
                self.shared.stats.conns_closed.inc();
                self.shared.stats.connections.add(-1);
                continue;
            }
            self.next_generation += 1;
            self.conns[slot] = Some(Conn {
                stream,
                rbuf: Vec::with_capacity(4096),
                out: Vec::with_capacity(4096),
                out_pos: 0,
                read_deadline: None,
                write_deadline: None,
                interest: (true, false),
                read_suspended: false,
                close_after_flush: false,
                close_when_drained: false,
                busy: false,
                generation: self.next_generation,
                deferred: VecDeque::new(),
            });
        }
    }

    /// Reads a ready connection to `WouldBlock` and decodes every
    /// complete frame into `pending` (in arrival order).
    fn handle_event(&mut self, ev: &Event, pending: &mut Vec<PendingReq>) {
        let slot = ev.key;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // already closed this wakeup
        };
        if !ev.readable || conn.read_suspended || conn.close_after_flush || conn.close_when_drained
        {
            return; // writable-only wakeups are handled by the flush pass
        }
        let instrument = self.shared.config.instrument;
        // One clock read per readable wakeup anchors the `decode`
        // phase for whichever frames draw the 1-in-N sample below.
        let readable_at = instrument.then(|| self.shared.tracer.clock().now_ns());
        let mut peer_closed = false;
        loop {
            match conn.stream.read(&mut self.chunk) {
                Ok(0) => {
                    peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.shared.stats.bytes_rx.add(n as u64);
                    conn.rbuf.extend_from_slice(&self.chunk[..n]);
                    if n < self.chunk.len() {
                        break; // drained (level-triggered: more re-fires)
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        let conn = self.conns[slot].as_mut().unwrap();
        // Decode in place: `consumed` walks the buffer, one compaction
        // at the end instead of a memmove per frame.
        let mut consumed = 0;
        loop {
            match decode_frame_traced(&conn.rbuf[consumed..], self.shared.config.max_frame_len) {
                Ok((frame, ctx, used)) => {
                    consumed += used;
                    // Per-request phase-sample decision, made at decode
                    // time: a hit stamps the frame and records the
                    // socket-readable→decoded phase.
                    let stamp = match readable_at {
                        Some(t0) if self.shared.phases.sample_hit() => {
                            let now = self.shared.tracer.clock().now_ns();
                            self.shared.phases.decode.record(now.saturating_sub(t0));
                            Some(now)
                        }
                        _ => None,
                    };
                    pending.push((slot, Some((frame, ctx)), stamp));
                }
                Err(FrameError::Incomplete { .. }) => break,
                Err(err) => {
                    self.shared.stats.protocol_errors.inc();
                    Frame::Error {
                        code: ErrorCode::Protocol,
                        message: err.to_string(),
                    }
                    .encode(&mut conn.out);
                    conn.close_after_flush = true;
                    consumed = conn.rbuf.len();
                    break;
                }
            }
        }
        if consumed > 0 {
            let len = conn.rbuf.len();
            conn.rbuf.copy_within(consumed.., 0);
            conn.rbuf.truncate(len - consumed);
        }
        conn.read_deadline = if conn.rbuf.is_empty() || conn.close_after_flush {
            None
        } else {
            // Partial frame pending: (re-)arm on first appearance only.
            Some(
                conn.read_deadline
                    .unwrap_or_else(|| Instant::now() + self.shared.config.read_timeout),
            )
        };
        if peer_closed {
            let idle = conn.unflushed() == 0
                && conn.out.is_empty()
                && !conn.busy
                && conn.deferred.is_empty()
                && pending.iter().all(|p| p.0 != slot);
            if idle {
                self.close(slot);
            } else {
                // Half-close: frames already received (including any in
                // this wakeup's `pending`) still get answers.
                conn.close_when_drained = true;
            }
        }
    }

    /// Dispatches this wakeup's decoded frames. Lookup frames from all
    /// connections accumulate into a wave answered under one read lock;
    /// any other frame flushes the wave first (order barrier), then
    /// runs through the ordinary per-request path.
    fn dispatch(&mut self, mut pending: Vec<PendingReq>) {
        let mut wave: Vec<usize> = Vec::new();
        for i in 0..pending.len() {
            let slot = pending[i].0;
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.close_after_flush {
                continue;
            }
            // An offloaded op owns this connection's response order:
            // everything behind it waits in the deferred queue. (Does
            // not barrier the wave — ordering is per-connection.)
            if conn.busy {
                conn.deferred.push_back(pending[i].1.take().unwrap());
                continue;
            }
            // Sampled-trace lookups skip the wave: they take the
            // ordinary path so a continuation span is recorded.
            let coalescible = match pending[i].1.as_ref() {
                Some((_, Some(ctx))) if ctx.sampled => false,
                Some((Frame::Locate { .. }, _)) => true,
                Some((Frame::LocateBatch { blocks, .. }, _)) => !blocks.is_empty(),
                _ => false,
            };
            // Cluster mode: only lookups this shard actually serves may
            // join the wave — and the wave must see the shard-local
            // object id. Everything else (WrongShard/StaleMap/unknown)
            // takes the ordinary path, which runs the routing gate.
            let coalescible = coalescible
                && match &self.shared.shard {
                    None => true,
                    Some(shard) => {
                        let (frame, _) = pending[i].1.as_mut().unwrap();
                        let (Frame::Locate { object, .. } | Frame::LocateBatch { object, .. }) =
                            frame
                        else {
                            unreachable!("coalescible is lookup-only");
                        };
                        match shard.decide(*object) {
                            crate::cluster::RouteDecision::Serve(local) => {
                                *object = local;
                                true
                            }
                            _ => false,
                        }
                    }
                };
            if coalescible {
                wave.push(i);
                continue;
            }
            self.flush_wave(&mut wave, &pending);
            let (frame, ctx) = pending[i].1.take().unwrap();
            if is_heavy(&frame) {
                self.offload(slot, (frame, ctx));
            } else if let Some(conn) = self.conns[slot].as_mut() {
                self.state.set(ThreadState::Engine);
                if !handle_request(
                    frame,
                    &self.shared,
                    &mut conn.out,
                    self.shared.config.instrument,
                    ctx,
                ) {
                    conn.close_after_flush = true;
                }
                self.state.set(ThreadState::Decode);
            }
        }
        self.flush_wave(&mut wave, &pending);
    }

    /// Runs a heavy frame on a short-lived offload thread. The
    /// connection is parked (`busy`) until the completion comes back
    /// through [`Self::apply_completions`]; a spawn failure falls back
    /// to inline execution (slow, but correct).
    fn offload(&mut self, slot: usize, traced: TracedFrame) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let generation = conn.generation;
        let shared = Arc::clone(&self.shared);
        let completions = Arc::clone(&self.completions);
        let poller = Arc::clone(&self.poller);
        conn.busy = true;
        let fallback = traced.clone();
        let (frame, ctx) = traced;
        let spawned = std::thread::Builder::new()
            .name("scaddard-op".into())
            .spawn(move || {
                // The op threads share one state word ("scaddard-op");
                // concurrent ops overlap on it, which is the documented
                // approximation for these short-lived threads.
                let _op_guard = shared.op_state.enter(ThreadState::Offload);
                let mut bytes = Vec::new();
                let keep_open =
                    handle_request(frame, &shared, &mut bytes, shared.config.instrument, ctx);
                completions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Completion {
                        slot,
                        generation,
                        bytes,
                        keep_open,
                    });
                let _ = poller.notify();
            });
        if spawned.is_err() {
            // Thread exhaustion: execute inline rather than wedge.
            let conn = self.conns[slot].as_mut().expect("checked above");
            conn.busy = false;
            let (frame, ctx) = fallback;
            if !handle_request(
                frame,
                &self.shared,
                &mut conn.out,
                self.shared.config.instrument,
                ctx,
            ) {
                conn.close_after_flush = true;
            }
        }
    }

    /// Folds finished offloaded ops back into their connections and
    /// replays each connection's deferred frames (stopping at the next
    /// heavy frame, which re-offloads).
    fn apply_completions(&mut self) {
        let done = {
            let mut guard = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for completion in done {
            let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) else {
                continue; // connection died while the op ran
            };
            if conn.generation != completion.generation || !conn.busy {
                continue; // slot was reused
            }
            conn.busy = false;
            conn.out.extend_from_slice(&completion.bytes);
            if !completion.keep_open {
                conn.close_after_flush = true;
                conn.deferred.clear();
                continue;
            }
            // Replay what queued up behind the op, in order.
            while let Some((frame, ctx)) = self.conns[completion.slot]
                .as_mut()
                .and_then(|c| c.deferred.pop_front())
            {
                if is_heavy(&frame) {
                    self.offload(completion.slot, (frame, ctx));
                    break;
                }
                let conn = self.conns[completion.slot].as_mut().expect("still live");
                if !handle_request(
                    frame,
                    &self.shared,
                    &mut conn.out,
                    self.shared.config.instrument,
                    ctx,
                ) {
                    conn.close_after_flush = true;
                    conn.deferred.clear();
                    break;
                }
            }
        }
    }

    /// Answers the accumulated lookup wave with one
    /// [`cmsim::SharedServer::locate_coalesced`] call and encodes each
    /// response into its connection's write buffer.
    fn flush_wave(&mut self, wave: &mut Vec<usize>, pending: &[PendingReq]) {
        if wave.is_empty() {
            return;
        }
        let instrument = self.shared.config.instrument;
        let start = instrument.then(|| self.shared.tracer.clock().now_ns());
        // Any phase-stamped member makes this wave pay for the extra
        // clock reads; the stamped members' wait in the wave is the
        // `coalesce-wait` phase.
        let wave_sampled = instrument && wave.iter().any(|&i| pending[i].2.is_some());
        if let Some(t0) = start.filter(|_| wave_sampled) {
            for &i in wave.iter() {
                if let Some(decoded_at) = pending[i].2 {
                    self.shared
                        .phases
                        .coalesce_wait
                        .record(t0.saturating_sub(decoded_at));
                }
            }
        }
        let queries: Vec<LocateQuery<'_>> = wave
            .iter()
            .map(|&i| match &pending[i].1.as_ref().unwrap().0 {
                Frame::Locate { object, block } => LocateQuery::One {
                    object: scaddar_core::ObjectId(*object),
                    block: *block,
                },
                Frame::LocateBatch { object, blocks } => LocateQuery::Many {
                    object: scaddar_core::ObjectId(*object),
                    blocks,
                },
                _ => unreachable!("wave holds only lookup frames"),
            })
            .collect();
        let state = &self.state;
        let clock = self.shared.tracer.clock();
        state.set(ThreadState::LockWait);
        let mut locked_at = None;
        let read = self.shared.server.locate_coalesced_with(&queries, || {
            state.set(ThreadState::Engine);
            if wave_sampled {
                locked_at = Some(clock.now_ns());
            }
        });
        let engine_done_at = locked_at.map(|_| clock.now_ns());
        state.set(ThreadState::Encode);
        drop(queries);
        if let (Some(t0), Some(locked), Some(done)) = (start, locked_at, engine_done_at) {
            self.shared
                .phases
                .lock_wait
                .record(locked.saturating_sub(t0));
            let depth = crate::server::depth_bucket(read.epoch as u64);
            self.shared.phases.engine[depth].record(done.saturating_sub(locked));
        }
        let epoch = read.epoch as u64;
        let disks = read.disks;
        for (&i, answer) in wave.iter().zip(read.answers) {
            let slot = pending[i].0;
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.close_after_flush {
                continue;
            }
            let response = match answer {
                Ok(cmsim::LocateAnswer::One(disk)) => Frame::Located {
                    epoch,
                    disks,
                    disk: disk.0 as u64,
                },
                Ok(cmsim::LocateAnswer::Many(locations)) => Frame::BatchLocated {
                    epoch,
                    disks,
                    locations: locations.into_iter().map(|d| d.0).collect(),
                },
                Err(e) => {
                    self.shared.stats.errors.inc();
                    engine_error(e)
                }
            };
            response.encode(&mut conn.out);
        }
        // Per-frame latency is the wave's wall time split evenly — the
        // whole point of coalescing is that the lock+dispatch cost is
        // shared, so the share *is* the per-request server-side cost.
        let wave_done_at = start.map(|_| self.shared.tracer.clock().now_ns());
        if let (Some(done), Some(engine_done)) = (wave_done_at, engine_done_at) {
            self.shared
                .phases
                .encode
                .record(done.saturating_sub(engine_done));
        }
        let per_frame_ns = match (start, wave_done_at) {
            (Some(t0), Some(done)) => done.saturating_sub(t0) / wave.len() as u64,
            _ => 0,
        };
        for &i in wave.iter() {
            let endpoint = pending[i].1.as_ref().unwrap().0.endpoint();
            self.shared.stats.record(endpoint, per_frame_ns, instrument);
        }
        wave.clear();
        self.state.set(ThreadState::Decode);
    }

    /// Writes every connection's pending output (one syscall per
    /// connection per wakeup), then retunes poller interest: writable
    /// on short writes, read suspension across the high-water mark,
    /// close when a draining connection empties.
    fn flush_and_retune(&mut self) {
        let instrument = self.shared.config.instrument;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.unflushed() > 0 {
                let flush_started = (instrument && self.shared.phases.sample_hit())
                    .then(|| self.shared.tracer.clock().now_ns());
                loop {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(0) => {
                            conn.close_after_flush = true;
                            break;
                        }
                        Ok(n) => {
                            conn.out_pos += n;
                            self.shared.stats.bytes_tx.add(n as u64);
                            if conn.out_pos == conn.out.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.close(slot);
                            conn_closed_continue(&mut self.conns[slot]);
                            break;
                        }
                    }
                }
                if let Some(t0) = flush_started {
                    self.shared
                        .phases
                        .write_flush
                        .record(self.shared.tracer.clock().now_ns().saturating_sub(t0));
                }
            }
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.unflushed() == 0 {
                conn.out.clear();
                conn.out_pos = 0;
                conn.write_deadline = None;
                if conn.out.capacity() > BUF_SHRINK_THRESHOLD {
                    conn.out.shrink_to(BUF_SHRINK_THRESHOLD);
                }
                if conn.rbuf.capacity() > BUF_SHRINK_THRESHOLD {
                    conn.rbuf.shrink_to(BUF_SHRINK_THRESHOLD);
                }
                if conn.close_after_flush
                    || (conn.close_when_drained && !conn.busy && conn.deferred.is_empty())
                {
                    self.close(slot);
                    continue;
                }
            } else if conn.write_deadline.is_none() {
                conn.write_deadline = Some(Instant::now() + self.shared.config.write_timeout);
            }
            // Backpressure hysteresis: suspend past high water, resume
            // below half of it.
            let backlog = conn.unflushed();
            if backlog > self.high_water {
                conn.read_suspended = true;
            } else if backlog < self.high_water / 2 {
                conn.read_suspended = false;
            }
            let want = (
                !conn.read_suspended && !conn.close_after_flush && !conn.close_when_drained,
                conn.unflushed() > 0,
            );
            if want != conn.interest {
                let ev = Event {
                    key: slot,
                    readable: want.0,
                    writable: want.1,
                };
                if self.poller.modify(conn.stream.as_raw_fd(), ev).is_ok() {
                    conn.interest = want;
                }
            }
        }
    }

    /// Closes connections whose read or write deadline has lapsed.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            let read_overdue = conn.read_deadline.is_some_and(|d| now >= d);
            let write_overdue = conn.write_deadline.is_some_and(|d| now >= d);
            if read_overdue {
                // Best effort: tell the slow-loris client why.
                let mut err = Vec::new();
                Frame::Error {
                    code: ErrorCode::BadRequest,
                    message: "request read deadline exceeded".into(),
                }
                .encode(&mut err);
                let _ = conn.stream.write(&err);
            }
            if read_overdue || write_overdue {
                self.close(slot);
            }
        }
    }

    /// Removes a connection: deregisters, counts, frees the slot.
    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.shared.active.fetch_sub(1, Ordering::Relaxed);
            self.shared.stats.conns_closed.inc();
            self.shared.stats.connections.add(-1);
        }
    }

    /// Graceful drain: wait (boundedly) for in-flight offloaded ops,
    /// flush what each connection is owed (blocking, under
    /// `write_timeout`), then close everything.
    fn drain(&mut self) {
        self.admit_new();
        let deadline = Instant::now() + self.shared.config.write_timeout;
        while self.conns.iter().flatten().any(|c| c.busy) && Instant::now() < deadline {
            let mut scratch = Vec::new();
            let _ = self
                .poller
                .wait(&mut scratch, Some(Duration::from_millis(20)));
            self.apply_completions();
        }
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].as_mut() {
                if conn.unflushed() > 0 {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn
                        .stream
                        .set_write_timeout(Some(self.shared.config.write_timeout));
                    let from = conn.out_pos;
                    if conn.stream.write_all(&conn.out[from..]).is_ok() {
                        self.shared
                            .stats
                            .bytes_tx
                            .add((conn.out.len() - from) as u64);
                    }
                }
                self.close(slot);
            }
        }
    }
}

/// No-op helper making the "closed inside the write loop" case explicit
/// to the borrow checker (the slot is `None` after `close`).
fn conn_closed_continue(_conn: &mut Option<Conn>) {}

/// Handle for one spawned worker: its poller (to wake it for shutdown)
/// and its join handle. The matching injection queue lives with the
/// acceptor's target list.
struct WorkerHandle {
    poller: Arc<Poller>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// The running event-loop core behind a [`crate::Scaddard`] in
/// [`crate::ServerMode::EventLoop`].
pub(crate) struct Reactor {
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
}

impl Reactor {
    /// Spawns the acceptor and worker threads over a bound listener.
    pub(crate) fn start(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<Reactor> {
        let n = if shared.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            shared.config.workers
        };
        let mut workers = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let poller = Arc::new(open_poller()?);
            let injector: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let mut worker = Worker {
                shared: Arc::clone(&shared),
                poller: Arc::clone(&poller),
                injector: Arc::clone(&injector),
                completions: Arc::new(Mutex::new(Vec::new())),
                conns: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                chunk: vec![0u8; READ_CHUNK],
                events: Vec::with_capacity(256),
                high_water: shared.config.max_frame_len as usize * 4,
                state: shared.profiler.register(&format!("scaddard-worker-{i}")),
            };
            let pin = shared.config.pin_workers;
            let thread = std::thread::Builder::new()
                .name(format!("scaddard-worker-{i}"))
                .spawn(move || {
                    if pin {
                        let _ = polling::pin_current_thread_to_cpu(i);
                    }
                    worker.run();
                })?;
            targets.push((Arc::clone(&poller), injector));
            workers.push(WorkerHandle {
                poller,
                thread: Some(thread),
            });
        }
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("scaddard-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, targets))?;
        Ok(Reactor {
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Joins the acceptor and every worker. The shutdown flag must be
    /// set (and the acceptor woken) by the caller first.
    pub(crate) fn shutdown(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for worker in &self.workers {
            let _ = worker.poller.notify();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.thread.take() {
                let _ = handle.join();
            }
        }
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        self.acceptor.is_none()
    }
}

#[allow(clippy::type_complexity)]
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    targets: Vec<(Arc<Poller>, Arc<Mutex<Vec<TcpStream>>>)>,
) {
    let mut next = 0usize;
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = reply(
                &stream,
                &shared,
                &Frame::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "draining".into(),
                },
            );
            return;
        }
        if shared.active.load(Ordering::Relaxed) >= shared.config.max_connections {
            shared.stats.conns_rejected.inc();
            let _ = reply(
                &stream,
                &shared,
                &Frame::Error {
                    code: ErrorCode::Busy,
                    message: format!("{} connections", shared.config.max_connections),
                },
            );
            continue;
        }
        shared.active.fetch_add(1, Ordering::Relaxed);
        shared.stats.conns_opened.inc();
        shared.stats.connections.add(1);
        let (poller, injector) = &targets[next % targets.len()];
        next = next.wrapping_add(1);
        injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stream);
        let _ = poller.notify();
    }
}

// Unit tests for the reactor live at the crate's integration level
// (`tests/reactor_edge.rs`, `tests/loopback_concurrent.rs`) where both
// server modes are exercised through real sockets; NetStats conformance
// is additionally covered by the `server` module tests running the
// same assertions against `ServerMode::EventLoop` (see `server::tests`).
