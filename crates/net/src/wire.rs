//! The `scaddard` wire protocol: versioned, length-prefixed binary
//! frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! [len: u32 LE] [version: u8] [tag: u8] [payload: len-2 bytes]
//! ```
//!
//! where `len` counts everything after itself (version + tag +
//! payload). Integers are little-endian; strings and sequences are
//! length-prefixed (`u32` count, then elements). The version byte rides
//! in *every* frame rather than a handshake so a mixed-version pool is
//! rejected per-request with a typed error instead of a stream
//! desync.
//!
//! Two properties are contractual:
//!
//! * **The encoder is zero-copy**: [`Frame::encode`] appends straight
//!   into the caller's output buffer — no intermediate frame allocation,
//!   so a pipelining client can pack many requests into one write.
//! * **The decoder never panics**: [`decode_frame`] answers truncated,
//!   oversized, version-skewed, unknown-tag, and bit-flipped input with
//!   a typed [`FrameError`]. Garbage from the network is an error value,
//!   never a crash — the corruption sweep in `tests/wire_corruption.rs`
//!   holds this line for every cut point and every flipped byte.

use scaddar_core::ScalingOp;
use scaddar_obs::{
    CounterSample, GaugeSample, HistogramSample, HistogramSnapshot, ProfileSnapshot,
    RegistrySnapshot, ThreadProfile, TraceContext, HISTOGRAM_BUCKETS,
};

/// Most states-per-thread a decoder accepts in a [`Frame::ProfileReply`].
/// The current protocol defines `scaddar_obs::THREAD_STATES` (8); the
/// headroom lets a newer peer add states without a version bump while
/// still bounding hostile allocations.
pub const MAX_PROFILE_STATES: usize = 64;

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Version byte of the optional trace-context trailer a request frame
/// may carry after its payload (see [`Frame::encode_traced`]). The
/// trailer is its own versioned mini-format precisely so it can evolve
/// without bumping [`PROTOCOL_VERSION`]: a decoder that sees a
/// structurally valid trailer with an *unknown* version skips it
/// (requests still decode, just untraced) instead of rejecting the
/// frame.
pub const TRACE_TRAILER_VERSION: u8 = 1;

/// Body length of a v1 trace trailer: trace id + span id + flags.
pub const TRACE_TRAILER_V1_LEN: u8 = 17;

/// Hard ceiling a decoder enforces on `len` regardless of configuration
/// (16 MiB). Servers and clients usually configure a much smaller
/// [`max_frame_len`](crate::server::NetServerConfig::max_frame_len).
pub const HARD_MAX_FRAME_LEN: u32 = 16 << 20;

/// Bytes of framing before the payload: length prefix + version + tag.
pub const FRAME_HEADER_LEN: usize = 6;

/// Why a byte sequence failed to decode as a frame.
///
/// [`FrameError::Incomplete`] is the only *retryable* variant: a
/// streaming reader that has not yet received the whole frame keeps
/// reading. Every other variant is a protocol violation and poisons the
/// connection (the stream offset can no longer be trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does; `needed` total bytes
    /// would complete it (lower bound when the header itself is cut).
    Incomplete {
        /// Total buffer length that would allow another decode attempt.
        needed: usize,
    },
    /// The length prefix exceeds the decoder's limit — either the
    /// configured cap or [`HARD_MAX_FRAME_LEN`]. Catches both hostile
    /// lengths and desynced streams reading garbage as a prefix.
    Oversized {
        /// The claimed frame length.
        len: u32,
        /// The limit in force.
        max: u32,
    },
    /// The length prefix is shorter than version + tag — no frame this
    /// small exists.
    Undersized {
        /// The claimed frame length.
        len: u32,
    },
    /// The version byte is not [`PROTOCOL_VERSION`].
    VersionMismatch {
        /// The version byte received.
        got: u8,
    },
    /// The tag byte names no known frame type.
    UnknownTag {
        /// The tag byte received.
        tag: u8,
    },
    /// The payload ended before a field did (a truncation *inside* a
    /// frame whose length prefix survived).
    Truncated {
        /// The frame type being decoded.
        frame: &'static str,
        /// The field that ran out of bytes.
        field: &'static str,
    },
    /// The payload continues past the last field of the frame.
    TrailingBytes {
        /// The frame type decoded.
        frame: &'static str,
        /// Surplus byte count.
        extra: usize,
    },
    /// A field held an impossible value (bad enum discriminant, a
    /// count that cannot fit in the payload, invalid UTF-8, ...).
    Malformed {
        /// The frame type being decoded.
        frame: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { needed } => {
                write!(f, "incomplete frame: need {needed} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (limit {max})")
            }
            FrameError::Undersized { len } => {
                write!(f, "undersized frame: length prefix {len} < 2")
            }
            FrameError::VersionMismatch { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
            FrameError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            FrameError::Truncated { frame, field } => {
                write!(f, "truncated {frame} frame: payload ends inside `{field}`")
            }
            FrameError::TrailingBytes { frame, extra } => {
                write!(f, "{frame} frame carries {extra} trailing bytes")
            }
            FrameError::Malformed { frame, detail } => {
                write!(f, "malformed {frame} frame: {detail}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Error codes carried by [`Frame::Error`] responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The server's placement engine rejected the request.
    Engine = 0,
    /// The server is at its connection/backpressure limit.
    Busy = 1,
    /// The request decoded but made no sense (e.g. empty batch).
    BadRequest = 2,
    /// The server is draining for shutdown.
    ShuttingDown = 3,
    /// The client sent a frame the server could not decode; the reply
    /// echoes the [`FrameError`] text before the connection closes.
    Protocol = 4,
    /// Anything else.
    Internal = 5,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            0 => ErrorCode::Engine,
            1 => ErrorCode::Busy,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::Protocol,
            5 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Stable lowercase label (metric/endpoint friendly).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::Engine => "engine",
            ErrorCode::Busy => "busy",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Output format selector for [`Frame::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatsFormat {
    /// Prometheus text exposition.
    Prometheus = 0,
    /// The registry's JSON snapshot.
    Json = 1,
}

/// One protocol frame — requests (client → server) and responses
/// (server → client) share the enum because both directions share the
/// codec (and the corruption sweep covers both in one pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    // ---- requests ----
    /// Locate one block of one object.
    Locate {
        /// Object id.
        object: u64,
        /// Block number within the object.
        block: u64,
    },
    /// Locate many blocks of one object under one epoch.
    LocateBatch {
        /// Object id.
        object: u64,
        /// Block numbers, answered in order.
        blocks: Vec<u64>,
    },
    /// Commit a scaling operation.
    Scale {
        /// The operation.
        op: ScalingOp,
    },
    /// Advance `rounds` service rounds (drains redistribution).
    Tick {
        /// Rounds to advance (0 is allowed and answers the backlog).
        rounds: u32,
    },
    /// One-shot health report request.
    Health,
    /// Telemetry snapshot request.
    Stats {
        /// Rendering to return.
        format: StatsFormat,
    },
    /// Liveness probe (also the pool's stale-connection check).
    Ping,
    /// Cluster-map fetch. `have_version` is the client's current map
    /// version; the server always answers with its full map (the field
    /// exists so servers can log/skip-count redundant fetches and so
    /// future versions can answer "unchanged" cheaply).
    FetchMap {
        /// The map version the client already holds (0 = none).
        have_version: u64,
    },
    /// Metrics-federation pull: ship back the shard's full structured
    /// registry snapshot (not rendered text — the aggregator needs the
    /// histogram *buckets* to merge fleet-wide without percentile
    /// averaging). Read-only and idempotent, so pool clients may retry
    /// it freely.
    ScrapeStats,
    /// Profiler pull: ship back the shard's cumulative state-residency
    /// profile (every registered thread's per-state sample counts).
    /// Read-only and idempotent; interval profiles are computed
    /// client-side by diffing two dumps.
    ProfileDump,
    /// Begin an online rehash compaction (or join the one already in
    /// flight — re-issuing mid-migration answers its progress rather
    /// than erroring). Answered by [`Frame::CompactStatus`], or
    /// [`Frame::Error`] when the server refuses (redistribution
    /// pending, failed disks present).
    Compact,

    // ---- responses ----
    /// Answer to [`Frame::Locate`]. Epoch-tagged: `disk` is valid for
    /// exactly this `(epoch, disks)` pair.
    Located {
        /// Scaling epoch the lookup was served at.
        epoch: u64,
        /// Disk count at that epoch.
        disks: u32,
        /// The block's physical disk.
        disk: u64,
    },
    /// Answer to [`Frame::LocateBatch`] — the whole batch served at one
    /// epoch (no torn reads across a concurrent `Scale`).
    BatchLocated {
        /// Scaling epoch the whole batch was served at.
        epoch: u64,
        /// Disk count at that epoch.
        disks: u32,
        /// Physical disk per requested block, in request order.
        locations: Vec<u64>,
    },
    /// Answer to [`Frame::Scale`].
    Scaled {
        /// Epoch after the commit.
        epoch: u64,
        /// Disk count after the commit.
        disks: u32,
        /// Redistribution moves queued by the op.
        queued: u64,
    },
    /// Answer to [`Frame::Tick`].
    Ticked {
        /// Rounds actually advanced.
        rounds: u32,
        /// Redistribution backlog after the last round.
        backlog: u64,
    },
    /// Answer to [`Frame::Health`].
    HealthStatus {
        /// Worst probe severity: 0 ok, 1 warn, 2 crit.
        verdict: u8,
        /// Alerts emitted so far by the server's monitor.
        alerts: u64,
        /// The rendered operator report.
        report: String,
    },
    /// Answer to [`Frame::Stats`].
    StatsText {
        /// The format that was rendered.
        format: StatsFormat,
        /// Rendered registry contents.
        text: String,
    },
    /// Answer to [`Frame::Ping`]; echoes the server's current epoch so
    /// even liveness checks are epoch-tagged.
    Pong {
        /// Current scaling epoch.
        epoch: u64,
    },
    /// Answer to [`Frame::FetchMap`]: the server's current cluster map.
    /// `version` doubles as the cluster epoch — every topology change
    /// (shard add/remove, restart re-address) bumps it by one.
    MapUpdate {
        /// Cluster-map version (the cluster epoch).
        version: u64,
        /// `(shard id, net address)` for every serving shard, sorted by
        /// id. Addresses are UTF-8 `host:port` strings.
        shards: Vec<(u32, String)>,
    },
    /// Routing rejection: per the answering shard's map, `owner` serves
    /// this object. Carries the shard's map version (the piggyback that
    /// tells a stale client to refresh before retrying).
    WrongShard {
        /// Map version the answering shard routed by.
        map_version: u64,
        /// Shard id the map names as the object's owner.
        owner: u32,
    },
    /// The answering shard is no longer in the serving set (drained
    /// after removal, or superseded after a restart re-address). The
    /// client must refetch the map from a live shard and retry.
    StaleMap {
        /// Map version the answering shard last held.
        map_version: u64,
    },
    /// Answer to [`Frame::ScrapeStats`]: the shard's scaling epoch,
    /// current health verdict, and structured registry snapshot
    /// (histograms as sparse non-zero bucket lists, mergeable
    /// bucket-wise by the fleet aggregator).
    StatsReply {
        /// Scaling epoch at snapshot time.
        epoch: u64,
        /// Worst probe severity: 0 ok, 1 warn, 2 crit.
        verdict: u8,
        /// The registry snapshot.
        snapshot: RegistrySnapshot,
    },
    /// Answer to [`Frame::ProfileDump`]: the shard's cumulative
    /// cooperative-profiler snapshot — per-thread state-residency
    /// sample counts plus the total sampling rounds run.
    ProfileReply {
        /// The profiler snapshot.
        profile: ProfileSnapshot,
    },
    /// Answer to [`Frame::Compact`]: the shard's compaction state.
    /// `active == 1` means a migration is draining from `generation`
    /// toward `target_generation`; `active == 0` means the shard serves
    /// a single generation (after an instant flip, `generation` is the
    /// already-bumped serving generation and the counters are zero).
    CompactStatus {
        /// 1 while a compaction migration is in flight, else 0.
        active: u8,
        /// The serving generation (the one being retired when active).
        generation: u64,
        /// The generation being migrated to (== `generation` when idle).
        target_generation: u64,
        /// Blocks already at their new-generation placement.
        migrated: u64,
        /// Blocks the compaction must account for.
        total: u64,
        /// Migration moves still queued in the executor.
        backlog: u64,
    },
    /// Typed failure response.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
}

// Tag bytes. Requests are 0x01.., responses 0x81.. — the high bit marks
// direction, which makes stream desyncs fail fast (a client reading a
// request tag knows immediately something is wrong).
const TAG_LOCATE: u8 = 0x01;
const TAG_LOCATE_BATCH: u8 = 0x02;
const TAG_SCALE: u8 = 0x03;
const TAG_TICK: u8 = 0x04;
const TAG_HEALTH: u8 = 0x05;
const TAG_STATS: u8 = 0x06;
const TAG_PING: u8 = 0x07;
const TAG_FETCH_MAP: u8 = 0x08;
const TAG_SCRAPE_STATS: u8 = 0x09;
const TAG_PROFILE_DUMP: u8 = 0x0A;
const TAG_COMPACT: u8 = 0x0B;
const TAG_LOCATED: u8 = 0x81;
const TAG_BATCH_LOCATED: u8 = 0x82;
const TAG_SCALED: u8 = 0x83;
const TAG_TICKED: u8 = 0x84;
const TAG_HEALTH_STATUS: u8 = 0x85;
const TAG_STATS_TEXT: u8 = 0x86;
const TAG_PONG: u8 = 0x87;
const TAG_MAP_UPDATE: u8 = 0x88;
const TAG_WRONG_SHARD: u8 = 0x89;
const TAG_STALE_MAP: u8 = 0x8A;
const TAG_STATS_REPLY: u8 = 0x8B;
const TAG_PROFILE_REPLY: u8 = 0x8C;
const TAG_COMPACT_STATUS: u8 = 0x8D;
const TAG_ERROR: u8 = 0xFF;

impl Frame {
    /// The frame's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Locate { .. } => TAG_LOCATE,
            Frame::LocateBatch { .. } => TAG_LOCATE_BATCH,
            Frame::Scale { .. } => TAG_SCALE,
            Frame::Tick { .. } => TAG_TICK,
            Frame::Health => TAG_HEALTH,
            Frame::Stats { .. } => TAG_STATS,
            Frame::Ping => TAG_PING,
            Frame::FetchMap { .. } => TAG_FETCH_MAP,
            Frame::ScrapeStats => TAG_SCRAPE_STATS,
            Frame::ProfileDump => TAG_PROFILE_DUMP,
            Frame::Compact => TAG_COMPACT,
            Frame::Located { .. } => TAG_LOCATED,
            Frame::BatchLocated { .. } => TAG_BATCH_LOCATED,
            Frame::Scaled { .. } => TAG_SCALED,
            Frame::Ticked { .. } => TAG_TICKED,
            Frame::HealthStatus { .. } => TAG_HEALTH_STATUS,
            Frame::StatsText { .. } => TAG_STATS_TEXT,
            Frame::Pong { .. } => TAG_PONG,
            Frame::MapUpdate { .. } => TAG_MAP_UPDATE,
            Frame::WrongShard { .. } => TAG_WRONG_SHARD,
            Frame::StaleMap { .. } => TAG_STALE_MAP,
            Frame::StatsReply { .. } => TAG_STATS_REPLY,
            Frame::ProfileReply { .. } => TAG_PROFILE_REPLY,
            Frame::CompactStatus { .. } => TAG_COMPACT_STATUS,
            Frame::Error { .. } => TAG_ERROR,
        }
    }

    /// Stable name for telemetry (`net_server_requests_total{endpoint=...}`).
    pub fn endpoint(&self) -> &'static str {
        match self {
            Frame::Locate { .. } | Frame::Located { .. } => "locate",
            Frame::LocateBatch { .. } | Frame::BatchLocated { .. } => "locate-batch",
            Frame::Scale { .. } | Frame::Scaled { .. } => "scale",
            Frame::Tick { .. } | Frame::Ticked { .. } => "tick",
            Frame::Health | Frame::HealthStatus { .. } => "health",
            Frame::Stats { .. } | Frame::StatsText { .. } => "stats",
            Frame::Ping | Frame::Pong { .. } => "ping",
            Frame::FetchMap { .. } | Frame::MapUpdate { .. } => "fetch-map",
            Frame::ScrapeStats | Frame::StatsReply { .. } => "scrape-stats",
            Frame::ProfileDump | Frame::ProfileReply { .. } => "profile",
            Frame::Compact | Frame::CompactStatus { .. } => "compact",
            Frame::WrongShard { .. } => "wrong-shard",
            Frame::StaleMap { .. } => "stale-map",
            Frame::Error { .. } => "error",
        }
    }

    /// True for client → server frames.
    pub fn is_request(&self) -> bool {
        self.tag() & 0x80 == 0
    }

    /// Appends the encoded frame to `buf` (header + payload in place —
    /// no intermediate allocation). Returns the encoded length.
    pub fn encode(&self, buf: &mut Vec<u8>) -> usize {
        let start = buf.len();
        buf.extend_from_slice(&[0, 0, 0, 0]); // length slot, patched below
        buf.push(PROTOCOL_VERSION);
        buf.push(self.tag());
        match self {
            Frame::Locate { object, block } => {
                put_u64(buf, *object);
                put_u64(buf, *block);
            }
            Frame::LocateBatch { object, blocks } => {
                put_u64(buf, *object);
                put_u32(buf, blocks.len() as u32);
                for b in blocks {
                    put_u64(buf, *b);
                }
            }
            Frame::Scale { op } => match op {
                ScalingOp::Add { count } => {
                    buf.push(0);
                    put_u32(buf, *count);
                }
                ScalingOp::Remove { disks } => {
                    buf.push(1);
                    put_u32(buf, disks.len() as u32);
                    for d in disks {
                        put_u32(buf, *d);
                    }
                }
            },
            Frame::Tick { rounds } => put_u32(buf, *rounds),
            Frame::Health
            | Frame::Ping
            | Frame::ScrapeStats
            | Frame::ProfileDump
            | Frame::Compact => {}
            Frame::FetchMap { have_version } => put_u64(buf, *have_version),
            Frame::Stats { format } => buf.push(*format as u8),
            Frame::Located { epoch, disks, disk } => {
                put_u64(buf, *epoch);
                put_u32(buf, *disks);
                put_u64(buf, *disk);
            }
            Frame::BatchLocated {
                epoch,
                disks,
                locations,
            } => {
                put_u64(buf, *epoch);
                put_u32(buf, *disks);
                put_u32(buf, locations.len() as u32);
                for d in locations {
                    put_u64(buf, *d);
                }
            }
            Frame::Scaled {
                epoch,
                disks,
                queued,
            } => {
                put_u64(buf, *epoch);
                put_u32(buf, *disks);
                put_u64(buf, *queued);
            }
            Frame::Ticked { rounds, backlog } => {
                put_u32(buf, *rounds);
                put_u64(buf, *backlog);
            }
            Frame::HealthStatus {
                verdict,
                alerts,
                report,
            } => {
                buf.push(*verdict);
                put_u64(buf, *alerts);
                put_str(buf, report);
            }
            Frame::StatsText { format, text } => {
                buf.push(*format as u8);
                put_str(buf, text);
            }
            Frame::Pong { epoch } => put_u64(buf, *epoch),
            Frame::MapUpdate { version, shards } => {
                put_u64(buf, *version);
                put_u32(buf, shards.len() as u32);
                for (id, addr) in shards {
                    put_u32(buf, *id);
                    put_str(buf, addr);
                }
            }
            Frame::WrongShard { map_version, owner } => {
                put_u64(buf, *map_version);
                put_u32(buf, *owner);
            }
            Frame::StaleMap { map_version } => put_u64(buf, *map_version),
            Frame::StatsReply {
                epoch,
                verdict,
                snapshot,
            } => {
                put_u64(buf, *epoch);
                buf.push(*verdict);
                put_snapshot(buf, snapshot);
            }
            Frame::ProfileReply { profile } => {
                put_u64(buf, profile.at_ns);
                put_u64(buf, profile.rounds);
                put_u32(buf, profile.threads.len() as u32);
                for t in &profile.threads {
                    put_str(buf, &t.name);
                    put_u64(buf, t.samples);
                    put_u32(buf, t.counts.len() as u32);
                    for &c in &t.counts {
                        put_u64(buf, c);
                    }
                }
            }
            Frame::CompactStatus {
                active,
                generation,
                target_generation,
                migrated,
                total,
                backlog,
            } => {
                buf.push(*active);
                put_u64(buf, *generation);
                put_u64(buf, *target_generation);
                put_u64(buf, *migrated);
                put_u64(buf, *total);
                put_u64(buf, *backlog);
            }
            Frame::Error { code, message } => {
                buf.push(*code as u8);
                put_str(buf, message);
            }
        }
        let len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        buf.len() - start
    }

    /// Encodes the frame with a trace-context trailer appended after
    /// the payload: `[version: u8] [len: u8] [trace_id: u64]
    /// [span_id: u64] [flags: u8]` (bit 0 of `flags` = sampled),
    /// covered by the frame's length prefix. Only meaningful on
    /// request frames — a traced decoder surfaces the context, a
    /// trace-unaware v1 decoder skips the trailer, and responses never
    /// carry one. Returns the encoded length.
    pub fn encode_traced(&self, buf: &mut Vec<u8>, ctx: &TraceContext) -> usize {
        debug_assert!(self.is_request(), "trace trailers ride on requests");
        let start = buf.len();
        self.encode(buf);
        buf.push(TRACE_TRAILER_VERSION);
        buf.push(TRACE_TRAILER_V1_LEN);
        put_u64(buf, ctx.trace_id);
        put_u64(buf, ctx.span_id);
        buf.push(u8::from(ctx.sampled));
        let len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        buf.len() - start
    }

    /// Convenience: the frame encoded into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + 16);
        self.encode(&mut buf);
        buf
    }

    /// Convenience: [`Frame::encode_traced`] into a fresh buffer.
    pub fn to_bytes_traced(&self, ctx: &TraceContext) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + 40);
        self.encode_traced(&mut buf, ctx);
        buf
    }
}

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes a registry snapshot: three counted sections (counters,
/// gauges, histograms), names and help as length-prefixed strings,
/// histograms as `count`/`sum`/`max` plus a sparse list of non-zero
/// `(bucket index: u32, count: u64)` pairs in strictly ascending index
/// order — canonical, so encode∘decode is byte-identical.
fn put_snapshot(buf: &mut Vec<u8>, snap: &RegistrySnapshot) {
    put_u32(buf, snap.counters.len() as u32);
    for c in &snap.counters {
        put_str(buf, &c.name);
        put_str(buf, &c.help);
        put_u64(buf, c.value);
    }
    put_u32(buf, snap.gauges.len() as u32);
    for g in &snap.gauges {
        put_str(buf, &g.name);
        put_str(buf, &g.help);
        put_u64(buf, g.value as u64);
    }
    put_u32(buf, snap.histograms.len() as u32);
    for h in &snap.histograms {
        put_str(buf, &h.name);
        put_str(buf, &h.help);
        put_u64(buf, h.snapshot.count);
        put_u64(buf, h.snapshot.sum);
        put_u64(buf, h.snapshot.max);
        let nonzero: Vec<(usize, u64)> = h
            .snapshot
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        put_u32(buf, nonzero.len() as u32);
        for (i, n) in nonzero {
            put_u32(buf, i as u32);
            put_u64(buf, n);
        }
    }
}

/// A cursor over one frame's payload; every read is bounds-checked and
/// answers truncation with a typed error.
struct Payload<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() - self.pos < n {
            return Err(FrameError::Truncated {
                frame: self.frame,
                field,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u32` count whose elements occupy `elem_len` bytes each; the
    /// count is validated against the *remaining payload* before any
    /// allocation, so a hostile count cannot balloon memory.
    fn count(&mut self, elem_len: usize, field: &'static str) -> Result<usize, FrameError> {
        let n = self.u32(field)? as usize;
        let remaining = self.bytes.len() - self.pos;
        match n.checked_mul(elem_len) {
            Some(need) if need <= remaining => Ok(n),
            _ => Err(FrameError::Malformed {
                frame: self.frame,
                detail: format!("count {n} x {elem_len}B exceeds {remaining}B of payload"),
            }),
        }
    }

    fn string(&mut self, field: &'static str) -> Result<String, FrameError> {
        let n = self.count(1, field)?;
        let bytes = self.take(n, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed {
            frame: self.frame,
            detail: format!("`{field}` is not UTF-8"),
        })
    }
}

/// Decodes the first frame in `buf` with the default
/// [`HARD_MAX_FRAME_LEN`] cap. See [`decode_frame_limited`].
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    decode_frame_limited(buf, HARD_MAX_FRAME_LEN)
}

/// Decodes the first frame in `buf`, returning the frame and the bytes
/// consumed. `max_len` caps the accepted length prefix (clamped to
/// [`HARD_MAX_FRAME_LEN`]). Any trace trailer is validated and
/// discarded — use [`decode_frame_traced`] to surface it.
///
/// Never panics: any malformed input maps to a [`FrameError`].
/// [`FrameError::Incomplete`] means "read more and retry".
pub fn decode_frame_limited(buf: &[u8], max_len: u32) -> Result<(Frame, usize), FrameError> {
    decode_frame_traced(buf, max_len).map(|(frame, _ctx, used)| (frame, used))
}

/// [`decode_frame_limited`] plus the request's trace context, when a
/// valid current-version trace trailer rides after the payload.
/// `None` on untraced frames *and* on structurally valid trailers of
/// an unknown version (skip-don't-reject: an old server must keep
/// serving a newer client's requests). Arbitrary padding that does not
/// parse as a trailer is still a [`FrameError::TrailingBytes`] error,
/// and responses never carry trailers.
pub fn decode_frame_traced(
    buf: &[u8],
    max_len: u32,
) -> Result<(Frame, Option<TraceContext>, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Incomplete { needed: 4 });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    let max = max_len.min(HARD_MAX_FRAME_LEN);
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    if len < 2 {
        return Err(FrameError::Undersized { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    let version = buf[4];
    if version != PROTOCOL_VERSION {
        return Err(FrameError::VersionMismatch { got: version });
    }
    let tag = buf[5];
    let payload = &buf[6..total];
    let name = tag_name(tag)?;
    let (frame, used) = decode_payload(tag, name, payload)?;
    let ctx = decode_trailer(&frame, name, &payload[used..])?;
    Ok((frame, ctx, total))
}

fn tag_name(tag: u8) -> Result<&'static str, FrameError> {
    Ok(match tag {
        TAG_LOCATE => "Locate",
        TAG_LOCATE_BATCH => "LocateBatch",
        TAG_SCALE => "Scale",
        TAG_TICK => "Tick",
        TAG_HEALTH => "Health",
        TAG_STATS => "Stats",
        TAG_PING => "Ping",
        TAG_FETCH_MAP => "FetchMap",
        TAG_SCRAPE_STATS => "ScrapeStats",
        TAG_PROFILE_DUMP => "ProfileDump",
        TAG_COMPACT => "Compact",
        TAG_LOCATED => "Located",
        TAG_BATCH_LOCATED => "BatchLocated",
        TAG_SCALED => "Scaled",
        TAG_TICKED => "Ticked",
        TAG_HEALTH_STATUS => "HealthStatus",
        TAG_STATS_TEXT => "StatsText",
        TAG_PONG => "Pong",
        TAG_MAP_UPDATE => "MapUpdate",
        TAG_WRONG_SHARD => "WrongShard",
        TAG_STALE_MAP => "StaleMap",
        TAG_STATS_REPLY => "StatsReply",
        TAG_PROFILE_REPLY => "ProfileReply",
        TAG_COMPACT_STATUS => "CompactStatus",
        TAG_ERROR => "Error",
        other => return Err(FrameError::UnknownTag { tag: other }),
    })
}

/// Parses the bytes left after a frame's payload. Empty → no trailer.
/// A well-formed trailer (`[version][len][len bytes]`, exactly filling
/// the remainder, on a *request*) yields the context for the current
/// version and `None` for unknown versions; anything else is the same
/// trailing-bytes rejection v1 always made.
fn decode_trailer(
    frame: &Frame,
    name: &'static str,
    rest: &[u8],
) -> Result<Option<TraceContext>, FrameError> {
    if rest.is_empty() {
        return Ok(None);
    }
    let reject = Err(FrameError::TrailingBytes {
        frame: name,
        extra: rest.len(),
    });
    if !frame.is_request() || rest.len() < 2 {
        return reject;
    }
    let (version, len) = (rest[0], rest[1] as usize);
    if rest.len() - 2 != len {
        return reject;
    }
    if version != TRACE_TRAILER_VERSION {
        return Ok(None); // future trailer version: skip, don't reject
    }
    if len != TRACE_TRAILER_V1_LEN as usize {
        return Err(FrameError::Malformed {
            frame: name,
            detail: format!(
                "trace trailer v1 carries {len} bytes, expected {TRACE_TRAILER_V1_LEN}"
            ),
        });
    }
    let trace_id = u64::from_le_bytes(rest[2..10].try_into().expect("8 bytes"));
    let span_id = u64::from_le_bytes(rest[10..18].try_into().expect("8 bytes"));
    if trace_id == 0 {
        return Err(FrameError::Malformed {
            frame: name,
            detail: "trace trailer with trace id 0".to_string(),
        });
    }
    Ok(Some(TraceContext {
        trace_id,
        span_id,
        sampled: rest[18] & 1 != 0,
    }))
}

fn decode_payload(
    tag: u8,
    name: &'static str,
    payload: &[u8],
) -> Result<(Frame, usize), FrameError> {
    let mut p = Payload {
        bytes: payload,
        pos: 0,
        frame: name,
    };
    let frame = match tag {
        TAG_LOCATE => Frame::Locate {
            object: p.u64("object")?,
            block: p.u64("block")?,
        },
        TAG_LOCATE_BATCH => {
            let object = p.u64("object")?;
            let n = p.count(8, "blocks.len")?;
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                blocks.push(p.u64("blocks[]")?);
            }
            Frame::LocateBatch { object, blocks }
        }
        TAG_SCALE => {
            let kind = p.u8("op.kind")?;
            let op = match kind {
                0 => ScalingOp::Add {
                    count: p.u32("op.count")?,
                },
                1 => {
                    let n = p.count(4, "op.disks.len")?;
                    let mut disks = Vec::with_capacity(n);
                    for _ in 0..n {
                        disks.push(p.u32("op.disks[]")?);
                    }
                    ScalingOp::Remove { disks }
                }
                other => {
                    return Err(FrameError::Malformed {
                        frame: name,
                        detail: format!("unknown scaling-op kind {other}"),
                    })
                }
            };
            Frame::Scale { op }
        }
        TAG_TICK => Frame::Tick {
            rounds: p.u32("rounds")?,
        },
        TAG_HEALTH => Frame::Health,
        TAG_STATS => {
            let b = p.u8("format")?;
            let format = match b {
                0 => StatsFormat::Prometheus,
                1 => StatsFormat::Json,
                other => {
                    return Err(FrameError::Malformed {
                        frame: name,
                        detail: format!("unknown stats format {other}"),
                    })
                }
            };
            Frame::Stats { format }
        }
        TAG_PING => Frame::Ping,
        TAG_FETCH_MAP => Frame::FetchMap {
            have_version: p.u64("have_version")?,
        },
        TAG_SCRAPE_STATS => Frame::ScrapeStats,
        TAG_PROFILE_DUMP => Frame::ProfileDump,
        TAG_COMPACT => Frame::Compact,
        TAG_LOCATED => Frame::Located {
            epoch: p.u64("epoch")?,
            disks: p.u32("disks")?,
            disk: p.u64("disk")?,
        },
        TAG_BATCH_LOCATED => {
            let epoch = p.u64("epoch")?;
            let disks = p.u32("disks")?;
            let n = p.count(8, "locations.len")?;
            let mut locations = Vec::with_capacity(n);
            for _ in 0..n {
                locations.push(p.u64("locations[]")?);
            }
            Frame::BatchLocated {
                epoch,
                disks,
                locations,
            }
        }
        TAG_SCALED => Frame::Scaled {
            epoch: p.u64("epoch")?,
            disks: p.u32("disks")?,
            queued: p.u64("queued")?,
        },
        TAG_TICKED => Frame::Ticked {
            rounds: p.u32("rounds")?,
            backlog: p.u64("backlog")?,
        },
        TAG_HEALTH_STATUS => {
            let verdict = p.u8("verdict")?;
            if verdict > 2 {
                return Err(FrameError::Malformed {
                    frame: name,
                    detail: format!("verdict {verdict} out of range"),
                });
            }
            Frame::HealthStatus {
                verdict,
                alerts: p.u64("alerts")?,
                report: p.string("report")?,
            }
        }
        TAG_STATS_TEXT => {
            let b = p.u8("format")?;
            let format = match b {
                0 => StatsFormat::Prometheus,
                1 => StatsFormat::Json,
                other => {
                    return Err(FrameError::Malformed {
                        frame: name,
                        detail: format!("unknown stats format {other}"),
                    })
                }
            };
            Frame::StatsText {
                format,
                text: p.string("text")?,
            }
        }
        TAG_PONG => Frame::Pong {
            epoch: p.u64("epoch")?,
        },
        TAG_MAP_UPDATE => {
            let version = p.u64("version")?;
            // Each entry is at least id (4B) + addr length prefix (4B):
            // a hostile shard count is rejected before any allocation.
            let n = p.count(8, "shards.len")?;
            let mut shards = Vec::with_capacity(n);
            let mut last_id: Option<u32> = None;
            for _ in 0..n {
                let id = p.u32("shards[].id")?;
                if last_id.is_some_and(|prev| prev >= id) {
                    return Err(FrameError::Malformed {
                        frame: name,
                        detail: format!("shard ids not strictly ascending at {id}"),
                    });
                }
                last_id = Some(id);
                shards.push((id, p.string("shards[].addr")?));
            }
            Frame::MapUpdate { version, shards }
        }
        TAG_WRONG_SHARD => Frame::WrongShard {
            map_version: p.u64("map_version")?,
            owner: p.u32("owner")?,
        },
        TAG_STALE_MAP => Frame::StaleMap {
            map_version: p.u64("map_version")?,
        },
        TAG_STATS_REPLY => {
            let epoch = p.u64("epoch")?;
            let verdict = p.u8("verdict")?;
            if verdict > 2 {
                return Err(FrameError::Malformed {
                    frame: name,
                    detail: format!("verdict {verdict} out of range"),
                });
            }
            Frame::StatsReply {
                epoch,
                verdict,
                snapshot: get_snapshot(&mut p)?,
            }
        }
        TAG_PROFILE_REPLY => {
            let at_ns = p.u64("at_ns")?;
            let rounds = p.u64("rounds")?;
            // Each thread is at least a name length prefix (4B), its
            // samples (8B), and a counts length prefix (4B).
            let n = p.count(16, "threads.len")?;
            let mut threads = Vec::with_capacity(n);
            for _ in 0..n {
                let thread_name = p.string("threads[].name")?;
                let samples = p.u64("threads[].samples")?;
                let states = p.count(8, "threads[].counts.len")?;
                if states > MAX_PROFILE_STATES {
                    return Err(FrameError::Malformed {
                        frame: name,
                        detail: format!(
                            "profile thread claims {states} states (max {MAX_PROFILE_STATES})"
                        ),
                    });
                }
                let mut counts = Vec::with_capacity(states);
                for _ in 0..states {
                    counts.push(p.u64("threads[].counts[]")?);
                }
                threads.push(ThreadProfile {
                    name: thread_name,
                    samples,
                    counts,
                });
            }
            Frame::ProfileReply {
                profile: ProfileSnapshot {
                    at_ns,
                    rounds,
                    threads,
                },
            }
        }
        TAG_COMPACT_STATUS => {
            let active = p.u8("active")?;
            if active > 1 {
                return Err(FrameError::Malformed {
                    frame: name,
                    detail: format!("active flag {active} out of range"),
                });
            }
            Frame::CompactStatus {
                active,
                generation: p.u64("generation")?,
                target_generation: p.u64("target_generation")?,
                migrated: p.u64("migrated")?,
                total: p.u64("total")?,
                backlog: p.u64("backlog")?,
            }
        }
        TAG_ERROR => {
            let code_byte = p.u8("code")?;
            let code = ErrorCode::from_u8(code_byte).ok_or_else(|| FrameError::Malformed {
                frame: name,
                detail: format!("unknown error code {code_byte}"),
            })?;
            Frame::Error {
                code,
                message: p.string("message")?,
            }
        }
        _ => unreachable!("tag validated above"),
    };
    Ok((frame, p.pos))
}

/// Decodes one [`RegistrySnapshot`] (see [`put_snapshot`] for the
/// layout). Hostile counts are bounded before allocation via the
/// minimum on-wire size of each element, bucket indices must be in
/// range and strictly ascending (the canonical form `put_snapshot`
/// emits — so encode∘decode is byte-identical), and everything else is
/// a typed [`FrameError`].
fn get_snapshot(p: &mut Payload) -> Result<RegistrySnapshot, FrameError> {
    // Counter/gauge: two string length prefixes (4+4) + value (8).
    let n = p.count(16, "counters.len")?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push(CounterSample {
            name: p.string("counters[].name")?,
            help: p.string("counters[].help")?,
            value: p.u64("counters[].value")?,
        });
    }
    let n = p.count(16, "gauges.len")?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push(GaugeSample {
            name: p.string("gauges[].name")?,
            help: p.string("gauges[].help")?,
            value: p.u64("gauges[].value")? as i64,
        });
    }
    // Histogram: prefixes (4+4) + count/sum/max (24) + pair count (4).
    let n = p.count(36, "histograms.len")?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = p.string("histograms[].name")?;
        let help = p.string("histograms[].help")?;
        let mut snapshot = HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: p.u64("histograms[].count")?,
            sum: p.u64("histograms[].sum")?,
            max: p.u64("histograms[].max")?,
        };
        let pairs = p.count(12, "histograms[].buckets.len")?;
        let mut last: Option<u32> = None;
        for _ in 0..pairs {
            let index = p.u32("histograms[].buckets[].index")?;
            if index as usize >= HISTOGRAM_BUCKETS {
                return Err(FrameError::Malformed {
                    frame: p.frame,
                    detail: format!("histogram bucket index {index} out of range"),
                });
            }
            if last.is_some_and(|prev| prev >= index) {
                return Err(FrameError::Malformed {
                    frame: p.frame,
                    detail: format!("histogram bucket indices not strictly ascending at {index}"),
                });
            }
            last = Some(index);
            let count = p.u64("histograms[].buckets[].count")?;
            if count == 0 {
                return Err(FrameError::Malformed {
                    frame: p.frame,
                    detail: format!("histogram bucket {index} encoded with zero count"),
                });
            }
            snapshot.buckets[index as usize] = count;
        }
        histograms.push(HistogramSample {
            name,
            help,
            snapshot,
        });
    }
    Ok(RegistrySnapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A representative registry snapshot: counters, a negative gauge,
    /// and a histogram spanning several octaves.
    pub(crate) fn sample_snapshot() -> RegistrySnapshot {
        let registry = scaddar_obs::Registry::new();
        registry
            .counter("net_requests_total", "requests accepted")
            .add(41);
        registry
            .gauge("net_active_connections", "open connections")
            .set(-3);
        let hist = registry.histogram("net_locate_ns", "locate latency");
        for v in [90, 450, 90_000, 2_000_000] {
            hist.record(v);
        }
        registry.snapshot()
    }

    /// A representative profiler snapshot: two workers plus an offload
    /// thread, residency spread over several states.
    pub(crate) fn sample_profile() -> ProfileSnapshot {
        ProfileSnapshot {
            at_ns: 1_234_567,
            rounds: 1_000,
            threads: vec![
                ThreadProfile {
                    name: "scaddard-op".to_string(),
                    samples: 400,
                    counts: vec![300, 0, 0, 0, 0, 0, 0, 100],
                },
                ThreadProfile {
                    name: "scaddard-worker-0".to_string(),
                    samples: 1_000,
                    counts: vec![10, 700, 90, 40, 100, 20, 40, 0],
                },
                ThreadProfile {
                    name: "scaddard-worker-1".to_string(),
                    samples: 1_000,
                    counts: vec![0, 900, 50, 10, 30, 5, 5, 0],
                },
            ],
        }
    }

    /// One exemplar of every frame type (shared with the corruption
    /// sweep in `tests/wire_corruption.rs`).
    pub(crate) fn exemplars() -> Vec<Frame> {
        vec![
            Frame::Locate {
                object: 7,
                block: 31_337,
            },
            Frame::LocateBatch {
                object: 1,
                blocks: vec![0, 5, 999, u64::MAX],
            },
            Frame::Scale {
                op: ScalingOp::Add { count: 2 },
            },
            Frame::Scale {
                op: ScalingOp::Remove {
                    disks: vec![0, 3, 7],
                },
            },
            Frame::Tick { rounds: 4 },
            Frame::Health,
            Frame::Stats {
                format: StatsFormat::Prometheus,
            },
            Frame::Stats {
                format: StatsFormat::Json,
            },
            Frame::Ping,
            Frame::FetchMap { have_version: 3 },
            Frame::ScrapeStats,
            Frame::ProfileDump,
            Frame::Compact,
            Frame::MapUpdate {
                version: 4,
                shards: vec![
                    (0, "127.0.0.1:9000".to_string()),
                    (1, "127.0.0.1:9001".to_string()),
                    (5, "127.0.0.1:9005".to_string()),
                ],
            },
            Frame::WrongShard {
                map_version: 4,
                owner: 2,
            },
            Frame::StaleMap { map_version: 9 },
            Frame::Located {
                epoch: 3,
                disks: 8,
                disk: 5,
            },
            Frame::BatchLocated {
                epoch: 2,
                disks: 6,
                locations: vec![0, 1, 5],
            },
            Frame::Scaled {
                epoch: 4,
                disks: 9,
                queued: 12_345,
            },
            Frame::Ticked {
                rounds: 3,
                backlog: 17,
            },
            Frame::HealthStatus {
                verdict: 1,
                alerts: 2,
                report: "health: WARN (2 alerts emitted)\n".to_string(),
            },
            Frame::StatsText {
                format: StatsFormat::Json,
                text: "{\"counters\": []}".to_string(),
            },
            Frame::Pong { epoch: 11 },
            Frame::StatsReply {
                epoch: 6,
                verdict: 1,
                snapshot: sample_snapshot(),
            },
            Frame::StatsReply {
                epoch: 0,
                verdict: 0,
                snapshot: RegistrySnapshot::default(),
            },
            Frame::ProfileReply {
                profile: sample_profile(),
            },
            Frame::ProfileReply {
                profile: ProfileSnapshot {
                    at_ns: 0,
                    rounds: 0,
                    threads: Vec::new(),
                },
            },
            Frame::CompactStatus {
                active: 1,
                generation: 2,
                target_generation: 3,
                migrated: 4_120,
                total: 10_000,
                backlog: 5_880,
            },
            Frame::CompactStatus {
                active: 0,
                generation: 3,
                target_generation: 3,
                migrated: 0,
                total: 0,
                backlog: 0,
            },
            Frame::Error {
                code: ErrorCode::Busy,
                message: "128 connections".to_string(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in exemplars() {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = decode_frame(&bytes).expect("round trip");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn frames_concatenate_and_decode_in_sequence() {
        let frames = exemplars();
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let mut offset = 0;
        for expect in &frames {
            let (got, used) = decode_frame(&buf[offset..]).expect("stream decode");
            assert_eq!(&got, expect);
            offset += used;
        }
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn incomplete_prefix_reports_needed_bytes() {
        let bytes = Frame::Ping.to_bytes();
        assert_eq!(
            decode_frame(&bytes[..3]),
            Err(FrameError::Incomplete { needed: 4 })
        );
        assert_eq!(
            decode_frame(&bytes[..5]),
            Err(FrameError::Incomplete {
                needed: bytes.len()
            })
        );
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        let mut bytes = Frame::Ping.to_bytes();
        bytes[..4].copy_from_slice(&(HARD_MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized { .. })
        ));
        bytes[..4].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes[..5]),
            Err(FrameError::Undersized { len: 1 })
        );
        // A configured cap below the frame length also rejects.
        let big = Frame::LocateBatch {
            object: 0,
            blocks: vec![0; 100],
        }
        .to_bytes();
        assert!(matches!(
            decode_frame_limited(&big, 64),
            Err(FrameError::Oversized { max: 64, .. })
        ));
    }

    #[test]
    fn version_skew_and_unknown_tags_are_typed_errors() {
        let mut bytes = Frame::Ping.to_bytes();
        bytes[4] = 9;
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::VersionMismatch { got: 9 })
        );
        let mut bytes = Frame::Ping.to_bytes();
        bytes[5] = 0x60;
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::UnknownTag { tag: 0x60 })
        );
    }

    #[test]
    fn hostile_counts_cannot_balloon_memory() {
        // A LocateBatch claiming u32::MAX blocks in a 12-byte payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&[0, 0, 0, 0]);
        buf.push(PROTOCOL_VERSION);
        buf.push(TAG_LOCATE_BATCH);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::Malformed {
                frame: "LocateBatch",
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::Tick { rounds: 1 }.to_bytes();
        bytes.push(0xAB);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::TrailingBytes {
                frame: "Tick",
                extra: 1
            })
        );
    }

    #[test]
    fn request_response_direction_bit() {
        for f in exemplars() {
            assert_eq!(f.is_request(), f.tag() & 0x80 == 0, "{f:?}");
        }
        assert!(Frame::Locate {
            object: 0,
            block: 0
        }
        .is_request());
        assert!(!Frame::Pong { epoch: 0 }.is_request());
    }

    #[test]
    fn stats_reply_snapshot_round_trips_byte_identically() {
        let frame = Frame::StatsReply {
            epoch: 9,
            verdict: 2,
            snapshot: sample_snapshot(),
        };
        let bytes = frame.to_bytes();
        let (decoded, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        // Canonical encoding: re-encoding the decoded frame reproduces
        // the original bytes exactly (the federation-agreement
        // invariant leans on this).
        assert_eq!(decoded.to_bytes(), bytes);
        assert_eq!(decoded, frame);
    }

    #[test]
    fn hostile_snapshots_are_typed_errors() {
        let malformed = |bytes: &[u8]| {
            assert!(
                matches!(
                    decode_frame(bytes),
                    Err(FrameError::Malformed {
                        frame: "StatsReply",
                        ..
                    })
                ),
                "expected Malformed, got {:?}",
                decode_frame(bytes)
            );
        };
        let reply = |tail: &[u8]| {
            let mut buf = vec![0, 0, 0, 0, PROTOCOL_VERSION, TAG_STATS_REPLY];
            buf.extend_from_slice(&1u64.to_le_bytes()); // epoch
            buf.push(0); // verdict
            buf.extend_from_slice(tail);
            let len = (buf.len() - 4) as u32;
            buf[..4].copy_from_slice(&len.to_le_bytes());
            buf
        };
        // A hostile counter count cannot balloon memory.
        malformed(&reply(&u32::MAX.to_le_bytes()));
        // Bucket index out of range.
        let mut tail = Vec::new();
        put_u32(&mut tail, 0); // counters
        put_u32(&mut tail, 0); // gauges
        put_u32(&mut tail, 1); // one histogram
        put_str(&mut tail, "h");
        put_str(&mut tail, "help");
        put_u64(&mut tail, 1); // count
        put_u64(&mut tail, 5); // sum
        put_u64(&mut tail, 5); // max
        put_u32(&mut tail, 1); // one bucket pair
        put_u32(&mut tail, HISTOGRAM_BUCKETS as u32); // first invalid index
        put_u64(&mut tail, 1);
        malformed(&reply(&tail));
        // Non-ascending bucket indices.
        let pair_count_at = tail.len() - 16;
        tail[pair_count_at..pair_count_at + 4].copy_from_slice(&2u32.to_le_bytes());
        let idx_at = tail.len() - 12;
        tail[idx_at..idx_at + 4].copy_from_slice(&3u32.to_le_bytes());
        put_u32(&mut tail, 3);
        put_u64(&mut tail, 1);
        malformed(&reply(&tail));
        // Zero-count bucket pairs are non-canonical.
        let mut tail = Vec::new();
        put_u32(&mut tail, 0);
        put_u32(&mut tail, 0);
        put_u32(&mut tail, 1);
        put_str(&mut tail, "h");
        put_str(&mut tail, "help");
        put_u64(&mut tail, 0);
        put_u64(&mut tail, 0);
        put_u64(&mut tail, 0);
        put_u32(&mut tail, 1);
        put_u32(&mut tail, 4);
        put_u64(&mut tail, 0);
        malformed(&reply(&tail));
        // An out-of-range health verdict.
        let mut buf = vec![0, 0, 0, 0, PROTOCOL_VERSION, TAG_STATS_REPLY];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(3);
        for _ in 0..3 {
            put_u32(&mut buf, 0);
        }
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        malformed(&buf);
    }

    #[test]
    fn profile_reply_round_trips_byte_identically() {
        let frame = Frame::ProfileReply {
            profile: sample_profile(),
        };
        let bytes = frame.to_bytes();
        let (decoded, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        // Canonical: re-encoding reproduces the exact bytes, so the
        // harness can assert byte-identical dumps per seed.
        assert_eq!(decoded.to_bytes(), bytes);
        assert_eq!(decoded, frame);
    }

    #[test]
    fn hostile_profile_replies_are_typed_errors() {
        let reply = |tail: &[u8]| {
            let mut buf = vec![0, 0, 0, 0, PROTOCOL_VERSION, TAG_PROFILE_REPLY];
            buf.extend_from_slice(&9u64.to_le_bytes()); // at_ns
            buf.extend_from_slice(&5u64.to_le_bytes()); // rounds
            buf.extend_from_slice(tail);
            let len = (buf.len() - 4) as u32;
            buf[..4].copy_from_slice(&len.to_le_bytes());
            buf
        };
        let malformed = |bytes: &[u8]| {
            assert!(
                matches!(
                    decode_frame(bytes),
                    Err(FrameError::Malformed {
                        frame: "ProfileReply",
                        ..
                    })
                ),
                "expected Malformed, got {:?}",
                decode_frame(bytes)
            );
        };
        // A hostile thread count cannot balloon memory.
        malformed(&reply(&u32::MAX.to_le_bytes()));
        // A per-thread state count past the protocol ceiling.
        let mut tail = Vec::new();
        put_u32(&mut tail, 1); // one thread
        put_str(&mut tail, "w");
        put_u64(&mut tail, 0); // samples
        put_u32(&mut tail, (MAX_PROFILE_STATES + 1) as u32);
        for _ in 0..MAX_PROFILE_STATES + 1 {
            put_u64(&mut tail, 0);
        }
        malformed(&reply(&tail));
        // A state count lying about the remaining payload.
        let mut tail = Vec::new();
        put_u32(&mut tail, 1);
        put_str(&mut tail, "w");
        put_u64(&mut tail, 3);
        put_u32(&mut tail, 8); // claims 8 counts, provides none
        malformed(&reply(&tail));
        // Truncation inside a thread name is a typed error too.
        let mut tail = Vec::new();
        put_u32(&mut tail, 1);
        put_u32(&mut tail, 40); // name length past the payload end
        malformed(&reply(&tail));
    }

    fn ctx() -> TraceContext {
        TraceContext::root(0xFEED_FACE, 7)
    }

    #[test]
    fn traced_requests_round_trip_the_context() {
        let frame = Frame::Locate {
            object: 3,
            block: 99,
        };
        let bytes = frame.to_bytes_traced(&ctx());
        let (decoded, got, used) =
            decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN).expect("traced decode");
        assert_eq!(decoded, frame);
        assert_eq!(got, Some(ctx()));
        assert_eq!(used, bytes.len());
        // The un-traced decoders tolerate (and discard) the trailer,
        // so an old server keeps serving a tracing client.
        assert_eq!(decode_frame(&bytes), Ok((frame, bytes.len())));
    }

    #[test]
    fn every_request_exemplar_carries_a_trailer() {
        for frame in exemplars().into_iter().filter(Frame::is_request) {
            let bytes = frame.to_bytes_traced(&ctx());
            let (decoded, got, _) =
                decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN).expect("traced decode");
            assert_eq!(decoded, frame);
            assert_eq!(got, Some(ctx()), "{frame:?}");
        }
    }

    #[test]
    fn untraced_frames_decode_with_no_context() {
        for frame in exemplars() {
            let bytes = frame.to_bytes();
            let (_, got, _) = decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN).expect("decode");
            assert_eq!(got, None);
        }
    }

    #[test]
    fn unknown_trailer_versions_are_skipped_not_rejected() {
        // A v2 trailer from some future client: structurally sound
        // (version, len, len bytes), so the frame still decodes — with
        // no context, because we cannot interpret it.
        let mut bytes = Frame::Ping.to_bytes();
        bytes.push(TRACE_TRAILER_VERSION + 1);
        bytes.push(3);
        bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let (frame, got, _) =
            decode_frame_traced(&bytes, HARD_MAX_FRAME_LEN).expect("skip unknown version");
        assert_eq!(frame, Frame::Ping);
        assert_eq!(got, None);
    }

    #[test]
    fn trailer_truncation_at_every_boundary_is_rejected() {
        let frame = Frame::Tick { rounds: 2 };
        let full = frame.to_bytes_traced(&ctx());
        let plain = frame.to_bytes().len();
        // Cutting at `plain` exactly removes the whole trailer (legal);
        // every partial trailer in between must be a typed error.
        for cut in plain + 1..full.len() {
            let mut bytes = full[..cut].to_vec();
            let len = (bytes.len() - 4) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            let result = decode_frame(&bytes);
            assert!(
                matches!(
                    result,
                    Err(FrameError::TrailingBytes { .. } | FrameError::Malformed { .. })
                ),
                "cut at {cut}: {result:?}"
            );
        }
    }

    #[test]
    fn hostile_trailer_lengths_are_typed_errors() {
        // Version byte right, length byte lying about the remainder.
        let mut bytes = Frame::Ping.to_bytes();
        bytes.push(TRACE_TRAILER_VERSION);
        bytes.push(200);
        bytes.extend_from_slice(&[0; 17]);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::TrailingBytes { frame: "Ping", .. })
        ));
        // Consistent length that is wrong for v1: malformed, since we
        // do understand version 1 and it must be 17 bytes.
        let mut bytes = Frame::Ping.to_bytes();
        bytes.push(TRACE_TRAILER_VERSION);
        bytes.push(3);
        bytes.extend_from_slice(&[1, 2, 3]);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Malformed { frame: "Ping", .. })
        ));
        // A v1 trailer claiming trace id 0 (the "untraced" sentinel).
        let mut bytes = Frame::Ping.to_bytes();
        bytes.push(TRACE_TRAILER_VERSION);
        bytes.push(TRACE_TRAILER_V1_LEN);
        bytes.extend_from_slice(&[0; 17]);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Malformed { frame: "Ping", .. })
        ));
    }

    #[test]
    fn responses_never_carry_trailers() {
        // A trailer-shaped suffix on a *response* frame is plain
        // trailing garbage: tracing context only flows client → server.
        let mut bytes = Frame::Pong { epoch: 1 }.to_bytes();
        bytes.push(TRACE_TRAILER_VERSION);
        bytes.push(TRACE_TRAILER_V1_LEN);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.push(1);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::TrailingBytes {
                frame: "Pong",
                extra: 19
            })
        );
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Engine,
            ErrorCode::Busy,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::Protocol,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
            assert!(!code.label().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(200), None);
    }
}
