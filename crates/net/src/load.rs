//! Deterministic loopback load generation.
//!
//! [`run_load`] drives a `scaddard` server with a seeded
//! locate/locate-batch mixture from N concurrent client threads while
//! an operator thread commits `Scale` ops mid-run — the serving-layer
//! analogue of the harness's scenario workloads. The request *sequence*
//! is fully determined by [`LoadConfig::seed`] (SplitMix64 per client);
//! wall-clock timings obviously are not.
//!
//! Three loop disciplines:
//!
//! * [`LoopMode::Closed`] — each client fires its next request the
//!   moment the previous response lands; measures service latency under
//!   maximum sustainable pressure.
//! * [`LoopMode::Open`] — each client schedules request `i` at
//!   `start + i/rate` and measures latency **from the scheduled send
//!   time**, so queueing delay from a slow server is charged to the
//!   percentiles instead of silently vanishing (the coordinated-
//!   omission correction).
//! * [`LoopMode::Pipelined`] — each client keeps a whole window of
//!   requests on the wire at once (one connection, responses read back
//!   in order). This is the discipline that exercises the event loop's
//!   cross-connection coalescing — a round-trip per request never
//!   gives the reactor more than one frame per wakeup — and it
//!   measures *amortized* per-request latency (window wall time /
//!   window size), the throughput-side number.
//!
//! Every locate response is additionally checked for epoch consistency
//! (`disk < disks` under the epoch it carries); violations are counted
//! in [`LoadReport::consistency_violations`] and gate CI's net-smoke
//! job at zero.

use crate::client::{ClientConfig, ClientError, NetClient};
use crate::wire::Frame;
use scaddar_core::ScalingOp;
use scaddar_obs::Histogram;
use scaddar_prng::{SeededRng, SplitMix64};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Arrival discipline for the generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopMode {
    /// Fire the next request as soon as the previous response lands.
    Closed,
    /// Schedule requests at a fixed per-client rate (requests/second),
    /// measuring from the scheduled send time.
    Open {
        /// Target request rate per client thread.
        rps: f64,
    },
    /// Keep `window` requests in flight per client on one pipelined
    /// connection; latency is recorded as window wall time / window
    /// size (amortized service time).
    Pipelined {
        /// Requests written before the first response is read.
        window: usize,
    },
}

/// Workload shape for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed determining every client's request sequence.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: u64,
    /// Every `batch_every`-th request is a `LocateBatch` (0 = never).
    pub batch_every: u64,
    /// Blocks per `LocateBatch`.
    pub batch_len: u64,
    /// Blocks in the served object (request targets stay in range).
    pub object_blocks: u64,
    /// `Scale` commits the operator thread spreads across the run
    /// (alternating add/remove, each drained with `Tick`).
    pub scale_ops: u32,
    /// Arrival discipline.
    pub mode: LoopMode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0xC0FFEE,
            clients: 8,
            requests_per_client: 500,
            batch_every: 8,
            batch_len: 16,
            object_blocks: 50_000,
            scale_ops: 2,
            mode: LoopMode::Closed,
        }
    }
}

/// Latency percentiles of one operation class, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (the BENCH_net tail gate).
    pub p999: u64,
    /// Worst observed.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl LatencySummary {
    fn from_histogram(h: &Histogram) -> LatencySummary {
        let snap = h.snapshot();
        let q = |q: f64| snap.quantile(q).unwrap_or(0);
        LatencySummary {
            count: snap.count,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            p999: q(0.999),
            max: if snap.count > 0 { snap.max } else { 0 },
            mean: snap.sum.checked_div(snap.count).unwrap_or(0),
        }
    }
}

/// What one [`run_load`] run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed successfully (operator traffic
    /// excluded).
    pub requests: u64,
    /// Requests answered with a server `Error` frame or failed I/O.
    pub errors: u64,
    /// Responses that failed to decode (wire-level corruption).
    pub protocol_errors: u64,
    /// Locate responses whose `disk >= disks` — torn epochs. Must be 0.
    pub consistency_violations: u64,
    /// Distinct epochs observed across all responses (≥ `scale_ops`
    /// commits land mid-run when > 1).
    pub epochs_observed: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Completed requests / elapsed seconds.
    pub throughput_rps: f64,
    /// Single-block locate latency.
    pub locate: LatencySummary,
    /// Batch locate latency.
    pub locate_batch: LatencySummary,
}

/// One client thread's slice of the workload.
struct ClientOutcome {
    requests: u64,
    errors: u64,
    protocol_errors: u64,
    consistency_violations: u64,
    epoch_mask: u64,
}

fn classify(err: &ClientError) -> (u64, u64) {
    match err {
        ClientError::Frame(_) | ClientError::UnexpectedResponse { .. } => (0, 1),
        _ => (1, 0),
    }
}

/// The seeded request mixture, one request at a time: `(is_batch,
/// request frame)` for global request index `i` of one client.
fn next_request(config: &LoadConfig, rng: &mut SplitMix64, i: u64) -> (bool, Frame) {
    let is_batch = config.batch_every > 0 && i % config.batch_every == config.batch_every - 1;
    let frame = if is_batch {
        let span = config.batch_len.min(config.object_blocks).max(1);
        let first = rng.next_u64() % config.object_blocks.saturating_sub(span - 1).max(1);
        Frame::LocateBatch {
            object: 0,
            blocks: (first..first + span).collect(),
        }
    } else {
        Frame::Locate {
            object: 0,
            block: rng.next_u64() % config.object_blocks,
        }
    };
    (is_batch, frame)
}

fn run_client(
    addr: SocketAddr,
    config: &LoadConfig,
    client_index: usize,
    progress: &AtomicU64,
    histograms: &[Histogram; 2],
) -> ClientOutcome {
    let client = NetClient::with_config(
        addr,
        ClientConfig {
            max_pool: 2,
            ..ClientConfig::default()
        },
    );
    let mut rng = SplitMix64::from_seed(
        config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client_index as u64 + 1)),
    );
    let mut outcome = ClientOutcome {
        requests: 0,
        errors: 0,
        protocol_errors: 0,
        consistency_violations: 0,
        epoch_mask: 0,
    };
    if let LoopMode::Pipelined { window } = config.mode {
        run_client_pipelined(
            &client,
            config,
            window.max(1),
            &mut rng,
            &mut outcome,
            progress,
            histograms,
        );
        return outcome;
    }
    let start = Instant::now();
    let interval = match config.mode {
        LoopMode::Closed | LoopMode::Pipelined { .. } => None,
        LoopMode::Open { rps } => (rps > 0.0).then(|| Duration::from_secs_f64(1.0 / rps)),
    };
    for i in 0..config.requests_per_client {
        let scheduled = interval.map(|iv| {
            let at = start + iv * i as u32;
            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            at
        });
        let is_batch = config.batch_every > 0 && i % config.batch_every == config.batch_every - 1;
        let t0 = scheduled.unwrap_or_else(Instant::now);
        let result = if is_batch {
            let span = config.batch_len.min(config.object_blocks).max(1);
            let first = rng.next_u64() % config.object_blocks.saturating_sub(span - 1).max(1);
            let blocks: Vec<u64> = (first..first + span).collect();
            client
                .locate_batch(0, &blocks)
                .map(|(epoch, disks, locations)| {
                    let torn = locations.iter().filter(|d| **d >= disks as u64).count();
                    (epoch, torn as u64)
                })
        } else {
            let block = rng.next_u64() % config.object_blocks;
            client
                .locate(0, block)
                .map(|(epoch, disks, disk)| (epoch, u64::from(disk >= disks as u64)))
        };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match result {
            Ok((epoch, torn)) => {
                outcome.requests += 1;
                outcome.consistency_violations += torn;
                outcome.epoch_mask |= 1u64 << (epoch % 64);
                histograms[if is_batch { BATCH_LAT } else { LOCATE_LAT }].record(ns);
            }
            Err(e) => {
                let (errs, proto) = classify(&e);
                outcome.errors += errs;
                outcome.protocol_errors += proto;
            }
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
    outcome
}

/// The pipelined discipline: windows of requests written back-to-back
/// on one connection, responses validated in order. Per-request latency
/// is amortized (window wall / window size); server `Error` frames
/// count as request errors in-band, a failed pipeline write/read
/// condemns the rest of its window.
fn run_client_pipelined(
    client: &NetClient,
    config: &LoadConfig,
    window: usize,
    rng: &mut SplitMix64,
    outcome: &mut ClientOutcome,
    progress: &AtomicU64,
    histograms: &[Histogram; 2],
) {
    let mut issued = 0u64;
    while issued < config.requests_per_client {
        let n = (config.requests_per_client - issued).min(window as u64) as usize;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let (_is_batch, frame) = next_request(config, rng, issued);
            frames.push(frame);
            issued += 1;
        }
        let t0 = Instant::now();
        match client.pipeline(&frames) {
            Ok(responses) => {
                let per_request_ns =
                    (t0.elapsed().as_nanos() / n as u128).min(u64::MAX as u128) as u64;
                for response in &responses {
                    match response {
                        Frame::Located { epoch, disks, disk } => {
                            outcome.requests += 1;
                            outcome.consistency_violations += u64::from(*disk >= u64::from(*disks));
                            outcome.epoch_mask |= 1u64 << (epoch % 64);
                            histograms[LOCATE_LAT].record(per_request_ns);
                        }
                        Frame::BatchLocated {
                            epoch,
                            disks,
                            locations,
                        } => {
                            outcome.requests += 1;
                            outcome.consistency_violations += locations
                                .iter()
                                .filter(|d| **d >= u64::from(*disks))
                                .count()
                                as u64;
                            outcome.epoch_mask |= 1u64 << (epoch % 64);
                            histograms[BATCH_LAT].record(per_request_ns);
                        }
                        Frame::Error { .. } => outcome.errors += 1,
                        _ => outcome.protocol_errors += 1,
                    }
                }
            }
            Err(e) => {
                let (errs, proto) = classify(&e);
                outcome.errors += errs * n as u64;
                outcome.protocol_errors += proto * n as u64;
            }
        }
        progress.fetch_add(n as u64, Ordering::Relaxed);
    }
}

const LOCATE_LAT: usize = 0;
const BATCH_LAT: usize = 1;

/// Runs the operator loop: `scale_ops` alternating add/remove commits
/// spread across the client run, each drained with `Tick`.
fn run_operator(addr: SocketAddr, config: &LoadConfig, progress: &AtomicU64, total: u64) {
    if config.scale_ops == 0 {
        return;
    }
    let client = NetClient::connect(addr);
    let mut disks = match client.ping().and_then(|_| client.locate(0, 0)) {
        Ok((_, disks, _)) => disks,
        Err(_) => return,
    };
    for op_index in 0..config.scale_ops {
        // Wait until the clients are (op_index+1)/(scale_ops+1) through
        // their run, so every commit lands mid-traffic.
        let threshold = total * (op_index as u64 + 1) / (config.scale_ops as u64 + 1);
        while progress.load(Ordering::Relaxed) < threshold {
            std::thread::yield_now();
        }
        let op = if op_index % 2 == 0 || disks <= 2 {
            ScalingOp::Add { count: 1 }
        } else {
            ScalingOp::Remove {
                disks: vec![disks - 1],
            }
        };
        match client.scale(op) {
            Ok((_, new_disks, _)) => {
                disks = new_disks;
                while client.tick(1_000).map(|b| b > 0).unwrap_or(false) {}
            }
            Err(_) => return,
        }
    }
}

/// Drives the server at `addr` with the configured workload and
/// returns the measured report.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let progress = AtomicU64::new(0);
    let total = config.clients as u64 * config.requests_per_client;
    let histograms = [Histogram::new(), Histogram::new()];
    let start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let operator = scope.spawn(|| run_operator(addr, config, &progress, total));
        let handles: Vec<_> = (0..config.clients)
            .map(|index| {
                let progress = &progress;
                let histograms = &histograms;
                scope.spawn(move || run_client(addr, config, index, progress, histograms))
            })
            .collect();
        let outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        operator.join().expect("operator thread");
        outcomes
    });
    let elapsed = start.elapsed();
    let requests: u64 = outcomes.iter().map(|o| o.requests).sum();
    let epoch_mask = outcomes.iter().fold(0u64, |m, o| m | o.epoch_mask);
    LoadReport {
        requests,
        errors: outcomes.iter().map(|o| o.errors).sum(),
        protocol_errors: outcomes.iter().map(|o| o.protocol_errors).sum(),
        consistency_violations: outcomes.iter().map(|o| o.consistency_violations).sum(),
        epochs_observed: epoch_mask.count_ones() as u64,
        elapsed,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        locate: LatencySummary::from_histogram(&histograms[LOCATE_LAT]),
        locate_batch: LatencySummary::from_histogram(&histograms[BATCH_LAT]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServerConfig, Scaddard};
    use cmsim::{CmServer, ServerConfig, SharedServer};
    use scaddar_obs::{MonotonicClock, Registry, Tracer};
    use std::sync::Arc;

    fn boot(blocks: u64) -> Scaddard {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(21)).unwrap();
        server.add_object(blocks).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .unwrap()
    }

    #[test]
    fn closed_loop_run_is_clean_and_observes_scaling() {
        let daemon = boot(10_000);
        let config = LoadConfig {
            clients: 4,
            requests_per_client: 100,
            object_blocks: 10_000,
            scale_ops: 1,
            ..LoadConfig::default()
        };
        let report = run_load(daemon.local_addr(), &config);
        assert_eq!(report.requests, 400);
        assert_eq!(report.errors, 0);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.epochs_observed >= 1);
        assert!(report.locate.count > 0);
        assert!(report.locate_batch.count > 0);
        assert!(report.locate.p50 > 0);
        assert!(report.locate.p999 >= report.locate.p99);
        assert!(report.throughput_rps > 0.0);
        daemon.shutdown();
    }

    #[test]
    fn open_loop_paces_requests() {
        let daemon = boot(1_000);
        let config = LoadConfig {
            clients: 2,
            requests_per_client: 20,
            object_blocks: 1_000,
            scale_ops: 0,
            batch_every: 0,
            mode: LoopMode::Open { rps: 200.0 },
            ..LoadConfig::default()
        };
        let report = run_load(daemon.local_addr(), &config);
        assert_eq!(report.requests, 40);
        assert_eq!(report.errors + report.protocol_errors, 0);
        // 20 requests at 200/s per client is ≥ ~95ms of pacing.
        assert!(report.elapsed >= Duration::from_millis(90), "{report:?}");
        daemon.shutdown();
    }

    #[test]
    fn pipelined_run_is_clean_and_fills_the_window() {
        let daemon = boot(10_000);
        let config = LoadConfig {
            clients: 4,
            requests_per_client: 250,
            object_blocks: 10_000,
            scale_ops: 1,
            mode: LoopMode::Pipelined { window: 32 },
            ..LoadConfig::default()
        };
        let report = run_load(daemon.local_addr(), &config);
        assert_eq!(report.requests, 1_000);
        assert_eq!(report.errors, 0);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.locate.count > 0);
        assert!(report.locate_batch.count > 0);
        assert!(report.throughput_rps > 0.0);
        daemon.shutdown();
    }

    #[test]
    fn seeded_runs_issue_identical_request_sequences() {
        // Determinism of the *sequence*: two runs against fresh servers
        // with the same seed produce the same request/consistency
        // counts (latency, of course, differs).
        let config = LoadConfig {
            clients: 2,
            requests_per_client: 50,
            object_blocks: 5_000,
            scale_ops: 0,
            ..LoadConfig::default()
        };
        let d1 = boot(5_000);
        let r1 = run_load(d1.local_addr(), &config);
        d1.shutdown();
        let d2 = boot(5_000);
        let r2 = run_load(d2.local_addr(), &config);
        d2.shutdown();
        assert_eq!(r1.requests, r2.requests);
        assert_eq!(r1.locate.count, r2.locate.count);
        assert_eq!(r1.locate_batch.count, r2.locate_batch.count);
        assert_eq!(
            (r1.errors, r1.protocol_errors, r1.consistency_violations),
            (0, 0, 0)
        );
        assert_eq!(
            (r2.errors, r2.protocol_errors, r2.consistency_violations),
            (0, 0, 0)
        );
    }
}
