//! `scaddard`: the serving daemon, in either of two cores.
//!
//! [`ServerMode::EventLoop`] (the default) drives nonblocking sockets
//! from a few readiness-polled worker threads — see [`crate::reactor`].
//! [`ServerMode::Threaded`] is the PR 5 reference core kept for A/B
//! benchmarking and differential testing: one accept thread, one
//! handler thread per connection. Both share a [`cmsim::SharedServer`]
//! — reads take its shared lock, `Scale`/`Tick` its exclusive lock, so
//! the epoch-consistency guarantee the in-process tests pin down holds
//! unchanged for remote clients in either mode.
//!
//! Backpressure and robustness policy:
//!
//! * **Bounded accept**: at most
//!   [`max_connections`](NetServerConfig::max_connections) handler
//!   threads; a connection over the limit receives one
//!   `Error{Busy}` frame and is closed (counted in
//!   `net_server_connections_rejected_total`).
//! * **Per-request deadlines**: once the first byte of a request
//!   arrives, the rest must arrive within
//!   [`read_timeout`](NetServerConfig::read_timeout); responses must
//!   flush within [`write_timeout`](NetServerConfig::write_timeout).
//!   Idle connections may sit forever (they poll the shutdown flag).
//! * **Graceful drain**: [`Scaddard::shutdown`] stops the accept loop,
//!   lets in-flight requests finish, and joins every handler; idle
//!   handlers notice the flag within one poll tick.
//! * **Hostile input**: an undecodable frame earns a typed
//!   `Error{Protocol}` reply (best effort) and a close — the decoder
//!   never panics, so neither does the server.

use crate::cluster::{RouteDecision, ShardRuntime};
use crate::wire::{
    decode_frame_traced, ErrorCode, Frame, FrameError, StatsFormat, FRAME_HEADER_LEN,
};
use cmsim::SharedServer;
use scaddar_compact::CompactionController;
use scaddar_monitor::{HealthMonitor, MonitorConfig, Severity};
use scaddar_obs::{
    Counter, Gauge, Histogram, Profiler, Registry, StateHandle, TraceContext, Tracer,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads wake to poll the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Which serving core drives accepted connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// Readiness-based event loop: a sharded acceptor feeding a few
    /// poller-driven worker threads (epoll on Linux, poll(2) elsewhere)
    /// with cross-connection request coalescing. The default.
    #[default]
    EventLoop,
    /// One handler thread per connection — the PR 5 reference core,
    /// kept for A/B benchmarking and differential testing.
    Threaded,
}

/// Tuning knobs for [`Scaddard`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Serving core; see [`ServerMode`].
    pub mode: ServerMode,
    /// Event-loop worker threads; `0` means one per available core.
    /// Ignored in [`ServerMode::Threaded`].
    pub workers: usize,
    /// Pin event-loop worker `i` to CPU `i mod cores` (Linux only,
    /// best effort) so a worker's connection states stay cache-local.
    /// Ignored in [`ServerMode::Threaded`].
    pub pin_workers: bool,
    /// Connection ceiling (handler threads in [`ServerMode::Threaded`],
    /// registered sockets in [`ServerMode::EventLoop`]); connections
    /// beyond it are rejected with `Error{Busy}`.
    pub max_connections: usize,
    /// Deadline for the remainder of a request once its first byte has
    /// arrived.
    pub read_timeout: Duration,
    /// Deadline for flushing a response.
    pub write_timeout: Duration,
    /// Largest accepted frame (both directions).
    pub max_frame_len: u32,
    /// When false, per-request histograms/spans are skipped — the bare
    /// baseline the `BENCH_net.json` overhead ratio divides by.
    pub instrument: bool,
    /// Phase-decomposition sampling mask: a request's lifecycle phases
    /// are clock-timed when a weak counter increment ANDed with this
    /// mask is zero — `0` times every request, `63` one in 64 (the
    /// default, keeping the 1.10× overhead gate comfortable). The
    /// phase *state words* the profiler samples are always published;
    /// only the nanosecond histograms are sampled. Ignored when
    /// `instrument` is false.
    pub phase_sample_mask: u64,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            mode: ServerMode::default(),
            workers: 0,
            pin_workers: true,
            max_connections: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame_len: 1 << 20,
            instrument: true,
            phase_sample_mask: 63,
        }
    }
}

impl NetServerConfig {
    /// This config with the given serving core.
    pub fn with_mode(mut self, mode: ServerMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Per-endpoint request counters/latency histograms plus the
/// connection- and byte-level counters, all registered against the
/// composition root's [`Registry`] (`net_server_*` namespace).
#[derive(Debug)]
pub struct NetStats {
    requests: BTreeMap<&'static str, Counter>,
    request_ns: BTreeMap<&'static str, Histogram>,
    /// Requests answered with an `Error` frame.
    pub errors: Counter,
    /// Frames that failed to decode (connection then closed).
    pub protocol_errors: Counter,
    /// Connections accepted into a handler thread.
    pub conns_opened: Counter,
    /// Connections turned away by the backpressure limit.
    pub conns_rejected: Counter,
    /// Handler threads exited (peer close, error, or drain).
    pub conns_closed: Counter,
    /// Live handler threads.
    pub connections: Gauge,
    /// Request bytes read off sockets.
    pub bytes_rx: Counter,
    /// Response bytes written to sockets.
    pub bytes_tx: Counter,
}

/// The endpoints with dedicated request counters/histograms.
pub const ENDPOINTS: [&str; 11] = [
    "locate",
    "locate-batch",
    "scale",
    "tick",
    "health",
    "stats",
    "ping",
    "fetch-map",
    "scrape-stats",
    "profile",
    "compact",
];

impl NetStats {
    /// Registers every `net_server_*` metric against `registry`.
    pub fn register(registry: &Registry) -> Arc<NetStats> {
        let mut requests = BTreeMap::new();
        let mut request_ns = BTreeMap::new();
        for ep in ENDPOINTS {
            requests.insert(
                ep,
                registry.counter(
                    &format!("net_server_requests_total{{endpoint=\"{ep}\"}}"),
                    "Requests served, by endpoint",
                ),
            );
            request_ns.insert(
                ep,
                registry.histogram(
                    &format!("net_server_request_ns{{endpoint=\"{ep}\"}}"),
                    "Server-side request handling latency, by endpoint",
                ),
            );
        }
        Arc::new(NetStats {
            requests,
            request_ns,
            errors: registry.counter(
                "net_server_errors_total",
                "Requests answered with an Error frame",
            ),
            protocol_errors: registry.counter(
                "net_server_protocol_errors_total",
                "Frames that failed to decode",
            ),
            conns_opened: registry.counter(
                "net_server_connections_opened_total",
                "Connections accepted into a handler thread",
            ),
            conns_rejected: registry.counter(
                "net_server_connections_rejected_total",
                "Connections rejected by the backpressure limit",
            ),
            conns_closed: registry.counter(
                "net_server_connections_closed_total",
                "Handler threads exited",
            ),
            connections: registry.gauge("net_server_connections", "Live handler threads"),
            bytes_rx: registry.counter("net_server_bytes_rx_total", "Request bytes read"),
            bytes_tx: registry.counter("net_server_bytes_tx_total", "Response bytes written"),
        })
    }

    pub(crate) fn record(&self, endpoint: &str, ns: u64, instrument: bool) {
        if let Some(c) = self.requests.get(endpoint) {
            c.inc();
        }
        if instrument {
            if let Some(h) = self.request_ns.get(endpoint) {
                h.record(ns);
            }
        }
    }
}

/// REMAP chain-depth label values for the `engine` phase histogram:
/// the engine epoch *is* the worst-case chain length a lookup may
/// walk, so residency is bucketed by it.
pub const ENGINE_DEPTH_BUCKETS: [&str; 4] = ["0", "1-4", "5-16", "17+"];

/// The [`ENGINE_DEPTH_BUCKETS`] index for an engine epoch.
pub fn depth_bucket(epoch: u64) -> usize {
    match epoch {
        0 => 0,
        1..=4 => 1,
        5..=16 => 2,
        _ => 3,
    }
}

/// Request-lifecycle phase histograms (`net_phase_ns{phase=...}`),
/// one log-scale [`Histogram`] per phase of the reactor's anatomy:
///
/// | phase | covers |
/// |---|---|
/// | `decode` | socket readable → frame decoded |
/// | `coalesce-wait` | decoded → lookup wave dispatched |
/// | `lock-wait` | wave dispatched → engine read lock held |
/// | `engine` | lock held → answers computed (labelled by REMAP chain depth) |
/// | `encode` | answers → response frames in the write buffer |
/// | `write-flush` | write buffer → kernel accepted the bytes |
///
/// Recording is sampled 1-in-N ([`NetServerConfig::phase_sample_mask`])
/// via the weak-counter idiom so the instrumented path stays inside
/// the 1.10× overhead gate.
pub struct PhaseStats {
    /// Weak 1-in-N decision counter; its running value drives the
    /// mask, so it counts *decisions*, not hits.
    sample: Counter,
    mask: u64,
    /// Socket readable → frame decoded.
    pub decode: Histogram,
    /// Frame decoded → its lookup wave dispatched.
    pub coalesce_wait: Histogram,
    /// Wave dispatched → engine read lock acquired.
    pub lock_wait: Histogram,
    /// Lock held → answers computed, by [`ENGINE_DEPTH_BUCKETS`].
    pub engine: [Histogram; 4],
    /// Answers computed → responses encoded.
    pub encode: Histogram,
    /// One connection's buffered responses → kernel took the bytes.
    pub write_flush: Histogram,
}

impl PhaseStats {
    /// Registers the `net_phase_ns` family against `registry`.
    pub fn register(registry: &Registry, mask: u64) -> Arc<PhaseStats> {
        let phase = |name: &str| {
            registry.histogram(
                &format!("net_phase_ns{{phase=\"{name}\"}}"),
                "Request lifecycle phase latency",
            )
        };
        Arc::new(PhaseStats {
            sample: registry.counter(
                "net_phase_decisions_total",
                "Phase-sampling decisions taken (1 in mask+1 of them time the phases)",
            ),
            mask,
            decode: phase("decode"),
            coalesce_wait: phase("coalesce-wait"),
            lock_wait: phase("lock-wait"),
            engine: ENGINE_DEPTH_BUCKETS.map(|depth| {
                registry.histogram(
                    &format!("net_phase_ns{{phase=\"engine\",depth=\"{depth}\"}}"),
                    "Engine execute phase latency, by REMAP chain depth",
                )
            }),
            encode: phase("encode"),
            write_flush: phase("write-flush"),
        })
    }

    /// One 1-in-N sampling decision: true when this request's (or
    /// flush's) phases should pay for clock reads.
    pub(crate) fn sample_hit(&self) -> bool {
        self.sample.inc_weak() & self.mask == 0
    }
}

/// Everything the serving threads share, in either mode.
pub(crate) struct Shared {
    pub(crate) server: Arc<SharedServer>,
    pub(crate) config: NetServerConfig,
    pub(crate) stats: Arc<NetStats>,
    pub(crate) tracer: Tracer,
    pub(crate) monitor: Mutex<HealthMonitor>,
    /// The generation manager: fires the engine-config auto-compaction
    /// policy on the tick path and serves manual `Compact` requests.
    pub(crate) controller: Mutex<CompactionController>,
    pub(crate) registry: Registry,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    /// Cluster-mode routing state; `None` for a standalone daemon.
    pub(crate) shard: Option<Arc<ShardRuntime>>,
    /// Request-lifecycle phase histograms (sampled 1-in-N).
    pub(crate) phases: Arc<PhaseStats>,
    /// The always-on cooperative profiler; reactor workers and offload
    /// threads register state words against it, `ProfileDump` reads it.
    pub(crate) profiler: Arc<Profiler>,
    /// Shared state word for the short-lived `scaddard-op` offload
    /// threads (one row; concurrent ops share it, which is the
    /// documented approximation).
    pub(crate) op_state: StateHandle,
}

/// The `scaddard` daemon: a bound listener plus its accept thread.
///
/// ```no_run
/// use std::sync::Arc;
/// use cmsim::{CmServer, ServerConfig, SharedServer};
/// use scaddar_net::{NetServerConfig, Scaddard};
/// use scaddar_obs::{MonotonicClock, Registry, Tracer};
///
/// let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(7)).unwrap();
/// server.add_object(100_000).unwrap();
/// let registry = Registry::new();
/// let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 256);
/// let daemon = Scaddard::bind(
///     "127.0.0.1:0",
///     Arc::new(SharedServer::new(server)),
///     NetServerConfig::default(),
///     &registry,
///     tracer,
/// )
/// .unwrap();
/// println!("serving on {}", daemon.local_addr());
/// daemon.shutdown();
/// ```
pub struct Scaddard {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    core: Core,
    /// Stops the `obs-sampler` thread on shutdown.
    sampler_shutdown: Arc<AtomicBool>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

/// Mode-specific serving machinery behind a bound [`Scaddard`].
enum Core {
    Threaded {
        accept_handle: Option<std::thread::JoinHandle<()>>,
        conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    },
    EventLoop(crate::reactor::Reactor),
}

impl std::fmt::Debug for Scaddard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scaddard")
            .field("local_addr", &self.local_addr)
            .field("active", &self.shared.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl Scaddard {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and
    /// starts the accept loop. The health monitor is seeded from the
    /// engine's current state and mirrored into `registry` alongside
    /// the `net_server_*` metrics.
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Arc<SharedServer>,
        config: NetServerConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> std::io::Result<Scaddard> {
        Scaddard::bind_inner(addr, server, config, registry, tracer, None)
    }

    /// Binds a **cluster shard**: identical to [`bind`](Self::bind),
    /// plus a [`ShardRuntime`] every `Locate`/`LocateBatch` consults
    /// before touching the engine. Requests for objects the map routes
    /// elsewhere answer `WrongShard`; requests landing on a drained
    /// shard answer `StaleMap`; `FetchMap` serves the shard's current
    /// map.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        server: Arc<SharedServer>,
        config: NetServerConfig,
        registry: &Registry,
        tracer: Tracer,
        shard: Arc<ShardRuntime>,
    ) -> std::io::Result<Scaddard> {
        Scaddard::bind_inner(addr, server, config, registry, tracer, Some(shard))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        server: Arc<SharedServer>,
        config: NetServerConfig,
        registry: &Registry,
        tracer: Tracer,
        shard: Option<Arc<ShardRuntime>>,
    ) -> std::io::Result<Scaddard> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let monitor = server.with_read(|s| {
            let mut m = HealthMonitor::for_engine(
                MonitorConfig::default(),
                tracer.clock().clone(),
                s.engine(),
            );
            m.attach_registry(registry);
            m.evaluate_budget();
            m
        });
        let controller = server.with_read(|s| CompactionController::from_config(s.config()));
        let stats = NetStats::register(registry);
        // Stamp the bucket-layout fingerprint so fleet aggregation can
        // refuse to merge histograms from a peer built with different
        // bucket boundaries.
        registry.mark_bucket_layout();
        let phases = PhaseStats::register(registry, config.phase_sample_mask);
        let profiler = Profiler::new(tracer.clock().clone());
        let op_state = profiler.register("scaddard-op");
        let shared = Arc::new(Shared {
            server,
            config,
            stats,
            tracer,
            monitor: Mutex::new(monitor),
            controller: Mutex::new(controller),
            registry: registry.clone(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            shard,
            phases,
            profiler: Arc::clone(&profiler),
            op_state,
        });
        let core = match shared.config.mode {
            ServerMode::Threaded => {
                let conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
                    Arc::new(Mutex::new(Vec::new()));
                let accept_shared = Arc::clone(&shared);
                let accept_conns = Arc::clone(&conn_handles);
                let accept_handle = std::thread::Builder::new()
                    .name("scaddard-accept".into())
                    .spawn(move || accept_loop(listener, accept_shared, accept_conns))
                    .expect("spawn accept thread");
                Core::Threaded {
                    accept_handle: Some(accept_handle),
                    conn_handles,
                }
            }
            ServerMode::EventLoop => Core::EventLoop(crate::reactor::Reactor::start(
                listener,
                Arc::clone(&shared),
            )?),
        };
        // ~1 kHz wall-clock sampler; tests and the harness that need
        // determinism drive `Profiler::sample_once` directly instead.
        let sampler_shutdown = Arc::new(AtomicBool::new(false));
        let sampler =
            profiler.spawn_sampler(Duration::from_millis(1), Arc::clone(&sampler_shutdown));
        Ok(Scaddard {
            local_addr,
            shared,
            core,
            sampler_shutdown,
            sampler: Some(sampler),
        })
    }

    /// The bound address (the ephemeral port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live handler threads right now.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// The server's metric handles (benches read these directly).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.shared.stats
    }

    /// The daemon's cooperative profiler (tests and benches sample or
    /// snapshot it directly; remote callers use `ProfileDump`).
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.shared.profiler
    }

    /// The shard routing state, when bound via
    /// [`bind_sharded`](Self::bind_sharded).
    pub fn shard_runtime(&self) -> Option<&Arc<ShardRuntime>> {
        self.shared.shard.as_ref()
    }

    /// Severity of the server's current health report — what
    /// `serve --check` maps to an exit code.
    pub fn health_verdict(&self) -> Severity {
        let mut monitor = self
            .shared
            .monitor
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.shared.server.with_read(|s| {
            monitor.observe_engine(s.engine());
            monitor.observe_census(&s.load_census());
        });
        monitor.report().verdict()
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// join every thread. Idempotent-by-construction (consumes self).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        match &mut self.core {
            Core::Threaded {
                accept_handle,
                conn_handles,
            } => {
                if let Some(handle) = accept_handle.take() {
                    let _ = handle.join();
                }
                let handles: Vec<_> = {
                    let mut guard = conn_handles.lock().unwrap_or_else(|e| e.into_inner());
                    guard.drain(..).collect()
                };
                for handle in handles {
                    let _ = handle.join();
                }
            }
            Core::EventLoop(reactor) => reactor.shutdown(),
        }
        self.sampler_shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
    }

    fn is_shut_down(&self) -> bool {
        match &self.core {
            Core::Threaded { accept_handle, .. } => accept_handle.is_none(),
            Core::EventLoop(reactor) => reactor.is_shut_down(),
        }
    }
}

impl Drop for Scaddard {
    fn drop(&mut self) {
        if !self.is_shut_down() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival during drain).
            let _ = reply(
                &stream,
                &shared,
                &Frame::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "draining".into(),
                },
            );
            return;
        }
        if shared.active.load(Ordering::Relaxed) >= shared.config.max_connections {
            shared.stats.conns_rejected.inc();
            let _ = reply(
                &stream,
                &shared,
                &Frame::Error {
                    code: ErrorCode::Busy,
                    message: format!("{} connections", shared.config.max_connections),
                },
            );
            continue;
        }
        shared.active.fetch_add(1, Ordering::Relaxed);
        shared.stats.conns_opened.inc();
        shared.stats.connections.add(1);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("scaddard-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                conn_shared.stats.conns_closed.inc();
                conn_shared.stats.connections.add(-1);
            })
            .expect("spawn handler thread");
        conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        // Opportunistically reap finished handlers so a long-lived
        // daemon doesn't accumulate unbounded JoinHandles.
        let mut guard = conn_handles.lock().unwrap_or_else(|e| e.into_inner());
        guard.retain(|h| !h.is_finished());
    }
}

/// Encodes and writes one frame, counting the bytes.
pub(crate) fn reply(mut stream: &TcpStream, shared: &Shared, frame: &Frame) -> std::io::Result<()> {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let bytes = frame.to_bytes();
    stream.write_all(&bytes)?;
    shared.stats.bytes_tx.add(bytes.len() as u64);
    Ok(())
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let instrument = shared.config.instrument;
    let mut span = instrument.then(|| shared.tracer.span("net.conn"));
    let mut served = 0u64;
    let mut buf: Vec<u8> = Vec::with_capacity(FRAME_HEADER_LEN + 64);
    let mut chunk = [0u8; 4096];
    // Deadline for completing the frame currently being read; armed by
    // its first byte, disarmed when the buffer empties.
    let mut frame_deadline: Option<Instant> = None;
    let mut out = Vec::with_capacity(256);
    loop {
        // Drain every complete frame already buffered (pipelining:
        // responses for all of them go out in one write).
        out.clear();
        loop {
            match decode_frame_traced(&buf, shared.config.max_frame_len) {
                Ok((frame, ctx, used)) => {
                    buf.drain(..used);
                    if !handle_request(frame, shared, &mut out, instrument, ctx) {
                        flush(&stream, shared, &out);
                        return;
                    }
                    served += 1;
                }
                Err(FrameError::Incomplete { .. }) => break,
                Err(err) => {
                    shared.stats.protocol_errors.inc();
                    Frame::Error {
                        code: ErrorCode::Protocol,
                        message: err.to_string(),
                    }
                    .encode(&mut out);
                    flush(&stream, shared, &out);
                    if let Some(span) = span.as_mut() {
                        span.event("protocol-error", err);
                    }
                    return;
                }
            }
        }
        if !out.is_empty() && !flush(&stream, shared, &out) {
            return;
        }
        frame_deadline = if buf.is_empty() {
            None
        } else {
            // A partial frame is pending; (re-)arm the deadline when it
            // first appears.
            Some(frame_deadline.unwrap_or_else(|| Instant::now() + shared.config.read_timeout))
        };
        // Read more, waking every POLL_TICK to check shutdown/deadline.
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                shared.stats.bytes_rx.add(n as u64);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
                    break; // idle connection during drain
                }
                if let Some(deadline) = frame_deadline {
                    if Instant::now() >= deadline {
                        let mut err = Vec::new();
                        Frame::Error {
                            code: ErrorCode::BadRequest,
                            message: "request read deadline exceeded".into(),
                        }
                        .encode(&mut err);
                        flush(&stream, shared, &err);
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    if let Some(span) = span.as_mut() {
        span.event("requests", served);
    }
}

/// Writes the buffered responses; false on failure (connection dead).
fn flush(mut stream: &TcpStream, shared: &Shared, out: &[u8]) -> bool {
    if out.is_empty() {
        return true;
    }
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    if stream.write_all(out).is_err() {
        return false;
    }
    shared.stats.bytes_tx.add(out.len() as u64);
    true
}

/// Dispatches one request, appending the response to `out`. Returns
/// false when the connection must close (a response frame arrived where
/// a request belongs — direction violation).
///
/// When the request carried a sampled [`TraceContext`], the handler
/// continues the distributed trace: a child span (salted with the
/// shard id, so sibling shards touched by one client hop stay
/// distinct) is recorded in this process's flight recorder, parented
/// to the client's span, with routing verdicts attached as events.
pub(crate) fn handle_request(
    frame: Frame,
    shared: &Shared,
    out: &mut Vec<u8>,
    instrument: bool,
    ctx: Option<TraceContext>,
) -> bool {
    if !frame.is_request() {
        shared.stats.protocol_errors.inc();
        Frame::Error {
            code: ErrorCode::BadRequest,
            message: format!("{} is a response frame", frame.endpoint()),
        }
        .encode(out);
        return false;
    }
    let endpoint = frame.endpoint();
    let mut span = match &ctx {
        Some(c) if instrument && c.sampled => {
            let salt = shared.shard.as_ref().map_or(0, |s| u64::from(s.self_id()));
            let child = c.child(salt);
            Some(
                shared
                    .tracer
                    .span_in(&format!("serve.{endpoint}"), &child, c.span_id),
            )
        }
        _ => None,
    };
    let start = instrument.then(|| shared.tracer.clock().now_ns());
    let response = dispatch(frame, shared, instrument);
    let ns = start.map_or(0, |s| shared.tracer.clock().now_ns().saturating_sub(s));
    shared.stats.record(endpoint, ns, instrument);
    if matches!(response, Frame::Error { .. }) {
        shared.stats.errors.inc();
    }
    if let Some(span) = span.as_mut() {
        // The per-request critical-path record: sampled traces carry
        // the server-side dispatch cost alongside the phase histograms'
        // aggregate view.
        span.event("critical-path-ns", ns);
        match &response {
            Frame::WrongShard { owner, .. } => span.event("wrong-shard", owner),
            Frame::StaleMap { map_version } => span.event("stale-map", map_version),
            Frame::Error { code, .. } => span.event("error", code.label()),
            _ => {}
        }
    }
    response.encode(out);
    true
}

pub(crate) fn engine_error(e: impl std::fmt::Display) -> Frame {
    Frame::Error {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }
}

/// Cluster routing gate: `Ok` carries the engine-facing object id (the
/// shard-local translation in cluster mode, the wire id standalone);
/// `Err` is the routing response that must go back instead of touching
/// the engine.
fn shard_gate(shared: &Shared, object: u64) -> Result<u64, Frame> {
    let Some(shard) = &shared.shard else {
        return Ok(object);
    };
    match shard.decide(object) {
        RouteDecision::Serve(local) => Ok(local),
        RouteDecision::WrongShard { map_version, owner } => {
            Err(Frame::WrongShard { map_version, owner })
        }
        RouteDecision::StaleMap { map_version } => Err(Frame::StaleMap { map_version }),
        RouteDecision::UnknownObject => Err(engine_error(format!(
            "unknown object {object} (owned by this shard)"
        ))),
    }
}

fn dispatch(frame: Frame, shared: &Shared, instrument: bool) -> Frame {
    match frame {
        Frame::Locate { object, block } => {
            let local = match shard_gate(shared, object) {
                Ok(local) => local,
                Err(response) => return response,
            };
            match shared.server.locate(scaddar_core::ObjectId(local), block) {
                Ok(read) => Frame::Located {
                    epoch: read.epoch as u64,
                    disks: read.disks,
                    disk: read.disk.0 as u64,
                },
                Err(e) => engine_error(e),
            }
        }
        Frame::LocateBatch { object, blocks } => {
            if blocks.is_empty() {
                return Frame::Error {
                    code: ErrorCode::BadRequest,
                    message: "empty batch".into(),
                };
            }
            let local = match shard_gate(shared, object) {
                Ok(local) => local,
                Err(response) => return response,
            };
            match shared
                .server
                .locate_batch_read(scaddar_core::ObjectId(local), &blocks)
            {
                Ok(read) => Frame::BatchLocated {
                    epoch: read.epoch as u64,
                    disks: read.disks,
                    locations: read.locations.into_iter().map(|d| d.0).collect(),
                },
                Err(e) => engine_error(e),
            }
        }
        Frame::Scale { op } => {
            let mut span = instrument.then(|| shared.tracer.span("net.scale"));
            let result = shared.server.scale_read(op);
            match result {
                Ok((epoch, disks, queued)) => {
                    if let Some(span) = span.as_mut() {
                        span.event("epoch", epoch);
                        span.event("queued", queued);
                    }
                    // Feed the monitor the op's movement data (RO1 +
                    // budget probes). The census is deliberately NOT
                    // observed here: redistribution is asynchronous, so
                    // the post-commit census is transiently unbalanced
                    // by design — it is sampled when an operator asks
                    // for `Health`, where it reflects current reality.
                    let mut monitor = shared.monitor.lock().unwrap_or_else(|e| e.into_inner());
                    shared
                        .server
                        .with_read(|s| monitor.observe_engine(s.engine()));
                    Frame::Scaled {
                        epoch: epoch as u64,
                        disks,
                        queued,
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Frame::Tick { rounds } => {
            for _ in 0..rounds {
                shared.server.tick();
            }
            // The generation manager rides the tick path: it syncs the
            // monitor's budget probe, fires the engine-config auto
            // policy when the §4.3 budget runs dry, and notes the
            // compaction-complete event after a flip.
            {
                let mut monitor = shared.monitor.lock().unwrap_or_else(|e| e.into_inner());
                let mut controller = shared.controller.lock().unwrap_or_else(|e| e.into_inner());
                controller.step_shared(&shared.server, &mut monitor);
            }
            Frame::Ticked {
                rounds,
                backlog: shared.server.backlog(),
            }
        }
        Frame::Compact => {
            let mut monitor = shared.monitor.lock().unwrap_or_else(|e| e.into_inner());
            let mut controller = shared.controller.lock().unwrap_or_else(|e| e.into_inner());
            // Re-issuing `compact` mid-migration joins the in-flight
            // compaction (answers its progress) instead of queueing a
            // second one behind it.
            if !shared.server.with_read(|s| s.compaction_active()) {
                controller.request();
            }
            let events = controller.step_shared(&shared.server, &mut monitor);
            let deferred = events.iter().find_map(|e| match e {
                scaddar_compact::ControllerEvent::Deferred { reason } => Some(reason.clone()),
                _ => None,
            });
            if let Some(reason) = deferred {
                return engine_error(reason);
            }
            shared.server.with_read(|s| match s.compaction_progress() {
                Some(p) => Frame::CompactStatus {
                    active: 1,
                    generation: p.from_generation,
                    target_generation: p.to_generation,
                    migrated: p.migrated_blocks,
                    total: p.total_blocks,
                    backlog: p.backlog,
                },
                None => Frame::CompactStatus {
                    active: 0,
                    generation: s.generation(),
                    target_generation: s.generation(),
                    migrated: 0,
                    total: 0,
                    backlog: 0,
                },
            })
        }
        Frame::Health => {
            let mut monitor = shared.monitor.lock().unwrap_or_else(|e| e.into_inner());
            shared.server.with_read(|s| {
                monitor.observe_engine(s.engine());
                monitor.observe_census(&s.load_census());
            });
            let report = monitor.report();
            Frame::HealthStatus {
                verdict: match report.verdict() {
                    Severity::Ok => 0,
                    Severity::Warn => 1,
                    Severity::Crit => 2,
                },
                alerts: monitor.alerts_emitted() as u64,
                report: report.render(),
            }
        }
        Frame::Stats { format } => Frame::StatsText {
            format,
            text: match format {
                StatsFormat::Prometheus => shared.registry.render_prometheus(),
                StatsFormat::Json => shared.registry.snapshot_json(),
            },
        },
        Frame::Ping => Frame::Pong {
            epoch: shared.server.epoch_view().0 as u64,
        },
        Frame::ScrapeStats => {
            // One RPC carries everything the fleet aggregator needs:
            // the structured registry snapshot plus the epoch and the
            // health verdict it would otherwise fetch separately.
            let verdict = {
                let mut monitor = shared.monitor.lock().unwrap_or_else(|e| e.into_inner());
                shared.server.with_read(|s| {
                    monitor.observe_engine(s.engine());
                    monitor.observe_census(&s.load_census());
                });
                match monitor.report().verdict() {
                    Severity::Ok => 0,
                    Severity::Warn => 1,
                    Severity::Crit => 2,
                }
            };
            Frame::StatsReply {
                epoch: shared.server.epoch_view().0 as u64,
                verdict,
                snapshot: shared.registry.snapshot(),
            }
        }
        Frame::ProfileDump => {
            // Mirror the tallies into the registry (so plain scrapes
            // see them too), then ship the structured snapshot.
            shared.profiler.publish(&shared.registry);
            Frame::ProfileReply {
                profile: shared.profiler.snapshot(),
            }
        }
        Frame::FetchMap { have_version: _ } => match &shared.shard {
            Some(shard) => shard.map().to_frame(),
            None => Frame::Error {
                code: ErrorCode::BadRequest,
                message: "standalone daemon: no cluster map".into(),
            },
        },
        // is_request() filtered responses out before dispatch.
        _ => unreachable!("dispatch only sees request frames"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmsim::{CmServer, ServerConfig};
    use scaddar_core::ScalingOp;
    use scaddar_obs::MonotonicClock;

    fn boot(blocks: u64) -> (Scaddard, Registry) {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(11)).unwrap();
        server.add_object(blocks).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig::default(),
            &registry,
            tracer,
        )
        .unwrap();
        (daemon, registry)
    }

    fn roundtrip(addr: SocketAddr, request: &Frame) -> Frame {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&request.to_bytes()).unwrap();
        read_one(&mut stream)
    }

    fn read_one(stream: &mut TcpStream) -> Frame {
        read_buffered(stream, &mut Vec::new())
    }

    /// Reads one frame, keeping bytes past it in `buf` — pipelined
    /// responses can land in a single `read`, so the buffer must
    /// persist across calls.
    fn read_buffered(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Frame {
        let mut chunk = [0u8; 1024];
        loop {
            match crate::wire::decode_frame(buf) {
                Ok((frame, used)) => {
                    buf.drain(..used);
                    return frame;
                }
                Err(FrameError::Incomplete { .. }) => {
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "server closed mid-frame");
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => panic!("bad response: {e}"),
            }
        }
    }

    #[test]
    fn locate_scale_tick_health_roundtrip() {
        let (daemon, _registry) = boot(5_000);
        let addr = daemon.local_addr();

        let located = roundtrip(
            addr,
            &Frame::Locate {
                object: 0,
                block: 7,
            },
        );
        let Frame::Located { epoch, disks, disk } = located else {
            panic!("expected Located, got {located:?}");
        };
        assert_eq!((epoch, disks), (0, 4));
        assert!(disk < 4);

        let scaled = roundtrip(
            addr,
            &Frame::Scale {
                op: ScalingOp::Add { count: 2 },
            },
        );
        let Frame::Scaled { epoch, disks, .. } = scaled else {
            panic!("expected Scaled, got {scaled:?}");
        };
        assert_eq!((epoch, disks), (1, 6));

        let ticked = roundtrip(addr, &Frame::Tick { rounds: 1_000 });
        assert!(matches!(ticked, Frame::Ticked { backlog: 0, .. }));

        let health = roundtrip(addr, &Frame::Health);
        let Frame::HealthStatus {
            verdict, report, ..
        } = health
        else {
            panic!("expected HealthStatus, got {health:?}");
        };
        assert_eq!(verdict, 0, "{report}");
        assert!(report.starts_with("health: OK"), "{report}");
        daemon.shutdown();
    }

    #[test]
    fn batches_are_served_at_one_epoch_and_stats_render() {
        let (daemon, _registry) = boot(2_000);
        let addr = daemon.local_addr();
        let batch = roundtrip(
            addr,
            &Frame::LocateBatch {
                object: 0,
                blocks: (0..64).collect(),
            },
        );
        let Frame::BatchLocated {
            epoch,
            disks,
            locations,
        } = batch
        else {
            panic!("expected BatchLocated, got {batch:?}");
        };
        assert_eq!(epoch, 0);
        assert_eq!(locations.len(), 64);
        assert!(locations.iter().all(|d| *d < disks as u64));

        let stats = roundtrip(
            addr,
            &Frame::Stats {
                format: StatsFormat::Prometheus,
            },
        );
        let Frame::StatsText { text, .. } = stats else {
            panic!("expected StatsText, got {stats:?}");
        };
        assert!(text.contains("net_server_requests_total{endpoint=\"locate-batch\"} 1"));
        assert!(text.contains("# TYPE net_server_connections gauge"));
        daemon.shutdown();
    }

    #[test]
    fn garbage_earns_a_protocol_error_and_a_close() {
        let (daemon, registry) = boot(100);
        let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
        // A valid header claiming an unknown tag.
        stream.write_all(&[4, 0, 0, 0, 1, 0x42, 0, 0]).unwrap();
        let response = read_one(&mut stream);
        assert!(
            matches!(
                &response,
                Frame::Error { code: ErrorCode::Protocol, message } if message.contains("0x42")
            ),
            "{response:?}"
        );
        // Connection is closed afterwards.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty());
        daemon.shutdown();
        assert!(matches!(
            registry.value("net_server_protocol_errors_total"),
            Some(scaddar_obs::MetricValue::Counter(1))
        ));
    }

    #[test]
    fn empty_batches_and_bad_objects_are_typed_errors() {
        let (daemon, _registry) = boot(100);
        let addr = daemon.local_addr();
        let empty = roundtrip(
            addr,
            &Frame::LocateBatch {
                object: 0,
                blocks: vec![],
            },
        );
        assert!(matches!(
            empty,
            Frame::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        let missing = roundtrip(
            addr,
            &Frame::Locate {
                object: 99,
                block: 0,
            },
        );
        assert!(matches!(
            missing,
            Frame::Error {
                code: ErrorCode::Engine,
                ..
            }
        ));
        daemon.shutdown();
    }

    #[test]
    fn connection_limit_rejects_with_busy() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(3)).unwrap();
        server.add_object(100).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 16);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig {
                max_connections: 1,
                ..NetServerConfig::default()
            },
            &registry,
            tracer,
        )
        .unwrap();
        let addr = daemon.local_addr();
        // First connection occupies the only slot...
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(&Frame::Ping.to_bytes()).unwrap();
        assert!(matches!(read_one(&mut first), Frame::Pong { .. }));
        // ...so the second is turned away with Busy.
        let mut second = TcpStream::connect(addr).unwrap();
        let rejection = read_one(&mut second);
        assert!(
            matches!(
                rejection,
                Frame::Error {
                    code: ErrorCode::Busy,
                    ..
                }
            ),
            "{rejection:?}"
        );
        drop(first);
        drop(second);
        daemon.shutdown();
    }

    #[test]
    fn pipelined_requests_get_ordered_responses() {
        let (daemon, _registry) = boot(1_000);
        let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut batch = Vec::new();
        for block in [1u64, 2, 3] {
            Frame::Locate { object: 0, block }.encode(&mut batch);
        }
        Frame::Ping.encode(&mut batch);
        stream.write_all(&batch).unwrap();
        let mut buf = Vec::new();
        for _ in 0..3 {
            assert!(matches!(
                read_buffered(&mut stream, &mut buf),
                Frame::Located { .. }
            ));
        }
        assert!(matches!(
            read_buffered(&mut stream, &mut buf),
            Frame::Pong { epoch: 0 }
        ));
        daemon.shutdown();
    }

    #[test]
    fn profile_dump_and_phase_histograms_cover_the_anatomy() {
        let mut server = CmServer::new(ServerConfig::new(4).with_catalog_seed(11)).unwrap();
        server.add_object(5_000).unwrap();
        let registry = Registry::new();
        let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 64);
        let daemon = Scaddard::bind(
            "127.0.0.1:0",
            Arc::new(SharedServer::new(server)),
            NetServerConfig {
                // Time every request's phases — no sampling noise.
                phase_sample_mask: 0,
                ..NetServerConfig::default()
            },
            &registry,
            tracer,
        )
        .unwrap();
        let addr = daemon.local_addr();
        // Pipelined lookups so coalescing waves form and every phase
        // of the anatomy fires.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut buf = Vec::new();
        for round in 0..50u64 {
            let mut batch = Vec::new();
            for block in 0..8u64 {
                Frame::Locate {
                    object: 0,
                    block: round * 8 + block,
                }
                .encode(&mut batch);
            }
            stream.write_all(&batch).unwrap();
            for _ in 0..8 {
                assert!(matches!(
                    read_buffered(&mut stream, &mut buf),
                    Frame::Located { .. }
                ));
            }
        }
        // ProfileDump over the wire: worker rows present, conservation
        // invariant exact, and the ~1 kHz sampler has run.
        let mut profile = None;
        for _ in 0..200 {
            let reply = roundtrip(addr, &Frame::ProfileDump);
            let Frame::ProfileReply { profile: p } = reply else {
                panic!("expected ProfileReply, got {reply:?}");
            };
            if p.rounds > 0 {
                profile = Some(p);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let profile = profile.expect("sampler never ran");
        assert!(profile
            .threads
            .iter()
            .any(|t| t.name.starts_with("scaddard-worker-")));
        assert!(profile.threads.iter().any(|t| t.name == "scaddard-op"));
        assert!(profile.threads.iter().all(|t| t.conserves()), "{profile:?}");
        // The dump also mirrored the tallies into the registry.
        assert!(registry
            .render_prometheus()
            .contains("# TYPE profiler_rounds gauge"));
        daemon.shutdown();
        let snap = registry.snapshot();
        let phase = |name: &str| {
            snap.histogram(&format!("net_phase_ns{{phase=\"{name}\"}}"))
                .unwrap_or_else(|| panic!("missing phase histogram {name}"))
        };
        for name in [
            "decode",
            "coalesce-wait",
            "lock-wait",
            "encode",
            "write-flush",
        ] {
            assert!(phase(name).count > 0, "phase {name} never recorded");
        }
        let engine = snap
            .histogram("net_phase_ns{phase=\"engine\",depth=\"0\"}")
            .expect("missing engine depth-0 histogram");
        assert!(engine.count > 0, "engine phase never recorded");
        // Sum-consistency: medians are not additive across distinct
        // histograms, but the serve-side phases (lock-wait + engine +
        // encode, which together span one wave) cannot collectively
        // dwarf the end-to-end latency. The envelope is deliberately
        // generous — 10× the per-request p50 (a wave of up to 8 frames
        // splits its wall time 8 ways) plus 100 µs of scheduling noise
        // and log-bucket overshoot.
        let e2e = snap
            .histogram("net_server_request_ns{endpoint=\"locate\"}")
            .expect("missing locate histogram");
        let phase_sum = phase("lock-wait").quantile(0.5).unwrap()
            + engine.quantile(0.5).unwrap()
            + phase("encode").quantile(0.5).unwrap();
        let envelope = 10 * e2e.quantile(0.5).unwrap() + 100_000;
        assert!(
            phase_sum <= envelope,
            "phase p50 sum {phase_sum}ns exceeds envelope {envelope}ns"
        );
    }

    #[test]
    fn shutdown_drains_idle_connections() {
        let (daemon, registry) = boot(100);
        let stream = TcpStream::connect(daemon.local_addr()).unwrap();
        // Give the accept loop a moment to hand the connection off.
        while daemon.active_connections() == 0 {
            std::thread::yield_now();
        }
        daemon.shutdown(); // joins the idle handler within a poll tick
        drop(stream);
        assert!(matches!(
            registry.value("net_server_connections"),
            Some(scaddar_obs::MetricValue::Gauge(0))
        ));
    }
}
